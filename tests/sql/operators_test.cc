// Operator-level regression tests for the parallel join/sort paths and
// the correctness holes they sit on:
//
//   * FULL OUTER / LEFT pads follow the *actual* build side. The planner
//     only swaps the build side when estimates favour it, so both
//     orientations are constructed directly here (the pre-fix code
//     hard-coded build = right and padded the wrong side under
//     build_left).
//   * FinishBuildPads reports eof directly when every build row matched
//     (the pre-fix code emitted an empty non-eof batch first).
//   * ORDER BY items resolve their evaluation side once: an item whose
//     primary side errors on only some rows must not mix key values
//     from two schemas (alias shadowing a pre-projection column).
//   * The partitioned join, sharded sort and parallel materialisation
//     produce byte-identical output at parallelism 1 vs 4, and record
//     their fan-out in ExecStats.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sql/executor.h"
#include "sql/operators/hash_join.h"
#include "sql/operators/scan.h"
#include "sql/parser.h"

namespace explainit::sql {
namespace {

using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

class OperatorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    functions_ = FunctionRegistry::Builtins();

    Table l(Schema{{{"k", DataType::kString}, {"a", DataType::kInt64}}});
    l.AppendRow({Value::String("one"), Value::Int(1)});
    l.AppendRow({Value::String("two"), Value::Int(2)});
    l.AppendRow({Value::String("three"), Value::Int(3)});
    catalog_.RegisterTable("l", std::move(l));

    Table r(Schema{{{"k", DataType::kString}, {"b", DataType::kInt64}}});
    r.AppendRow({Value::String("two"), Value::Int(20)});
    r.AppendRow({Value::String("four"), Value::Int(40)});
    catalog_.RegisterTable("r", std::move(r));
  }

  /// Builds `l <type> JOIN r ON l.k = r.k` directly so both build
  /// orientations are reachable (the planner only swaps on estimates).
  std::unique_ptr<HashJoinOperator> MakeJoin(JoinType type,
                                             bool build_left) {
    join_.type = type;
    auto cond = ParseExpression("l.k = r.k");
    EXPECT_TRUE(cond.ok());
    join_.condition = std::move(cond).value();
    auto left = std::make_unique<CatalogScanOperator>(
        &catalog_, "l", tsdb::ScanHints{}, "l", std::nullopt);
    auto right = std::make_unique<CatalogScanOperator>(
        &catalog_, "r", tsdb::ScanHints{}, "r", std::nullopt);
    return std::make_unique<HashJoinOperator>(
        std::move(left), std::move(right), &join_, &functions_, build_left,
        nullptr);
  }

  /// Drains `op`, asserting every non-eof batch carries rows (the eof
  /// fast-path regression), and returns the materialised result.
  Table DrainAll(Operator* op) {
    EXPECT_TRUE(op->Open().ok());
    Table out(op->output_schema());
    bool eof = false;
    while (true) {
      auto batch = op->Next(&eof);
      EXPECT_TRUE(batch.ok()) << batch.status().ToString();
      if (!batch.ok() || eof) break;
      EXPECT_GT(batch->num_rows(), 0u)
          << "empty non-eof batch (wasted Next round-trip)";
      batch->AppendTo(&out);
    }
    return out;
  }

  /// Text rendering of one row for order-insensitive comparison.
  static std::vector<std::string> RowStrings(const Table& t) {
    std::vector<std::string> rows;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      std::string s;
      for (size_t c = 0; c < t.num_columns(); ++c) {
        s += t.At(r, c).is_null() ? "·" : t.At(r, c).ToString();
        s += "|";
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  Catalog catalog_;
  FunctionRegistry functions_;
  JoinClause join_;
};

// The FULL OUTER row set is orientation-independent: matched (two),
// left-only (one, three) padded on the right columns, right-only (four)
// padded on the left columns.
const std::vector<std::string> kFullOuterRows = {
    "one|1|·|·|", "three|3|·|·|", "two|2|two|20|", "·|·|four|40|"};

TEST_F(OperatorsTest, FullOuterBuildRightPadsCorrectSides) {
  auto op = MakeJoin(JoinType::kFullOuter, /*build_left=*/false);
  Table out = DrainAll(op.get());
  EXPECT_EQ(RowStrings(out), kFullOuterRows);
}

TEST_F(OperatorsTest, FullOuterBuildLeftPadsCorrectSides) {
  // Pre-fix, FinishFullOuter hard-coded build = right: with build_left
  // the unmatched *left* build rows came out with their values on the
  // right columns and nulls on the left.
  auto op = MakeJoin(JoinType::kFullOuter, /*build_left=*/true);
  Table out = DrainAll(op.get());
  EXPECT_EQ(RowStrings(out), kFullOuterRows);
}

TEST_F(OperatorsTest, LeftJoinBuildLeftPadsUnmatchedLeftRows) {
  // LEFT JOIN built on the left side: unmatched build (= left) rows pad
  // after the probe; unmatched right rows are dropped.
  auto op = MakeJoin(JoinType::kLeft, /*build_left=*/true);
  Table out = DrainAll(op.get());
  const std::vector<std::string> want = {"one|1|·|·|", "three|3|·|·|",
                                         "two|2|two|20|"};
  EXPECT_EQ(RowStrings(out), want);
}

TEST_F(OperatorsTest, LeftJoinBuildRightMatchesSeedShape) {
  auto op = MakeJoin(JoinType::kLeft, /*build_left=*/false);
  Table out = DrainAll(op.get());
  const std::vector<std::string> want = {"one|1|·|·|", "three|3|·|·|",
                                         "two|2|two|20|"};
  EXPECT_EQ(RowStrings(out), want);
}

TEST_F(OperatorsTest, FullOuterAllBuildRowsMatchedReportsEofDirectly) {
  // A right table whose every row matches: zero build pads. DrainAll
  // asserts no empty non-eof batch is emitted on the way out (the
  // pre-fix code burned one Next round-trip on exactly that).
  Table r2(Schema{{{"k", DataType::kString}, {"b", DataType::kInt64}}});
  r2.AppendRow({Value::String("one"), Value::Int(10)});
  r2.AppendRow({Value::String("two"), Value::Int(20)});
  r2.AppendRow({Value::String("three"), Value::Int(30)});
  catalog_.RegisterTable("r", std::move(r2));
  for (const bool build_left : {false, true}) {
    auto op = MakeJoin(JoinType::kFullOuter, build_left);
    Table out = DrainAll(op.get());
    const std::vector<std::string> want = {
        "one|1|one|10|", "three|3|three|30|", "two|2|two|20|"};
    EXPECT_EQ(RowStrings(out), want) << "build_left=" << build_left;
  }
}

TEST_F(OperatorsTest, BuildPadsEmitInBatchSizedChunks) {
  // 3500 unmatched build rows must not materialise as one giant pad
  // batch: FinishBuildPads keeps a cursor and emits kDefaultBatchRows at
  // a time, like every other operator.
  constexpr size_t kBuildRows = 3500;
  Table l2(Schema{{{"k", DataType::kString}, {"a", DataType::kInt64}}});
  for (size_t i = 0; i < kBuildRows; ++i) {
    l2.AppendRow({Value::String("L" + std::to_string(i)),
                  Value::Int(static_cast<int64_t>(i))});
  }
  l2.AppendRow({Value::String("two"), Value::Int(-1)});  // the one match
  catalog_.RegisterTable("l", std::move(l2));

  auto op = MakeJoin(JoinType::kFullOuter, /*build_left=*/true);
  ASSERT_TRUE(op->Open().ok());
  size_t total = 0, pad_batches = 0, max_batch = 0;
  bool eof = false;
  while (true) {
    auto batch = op->Next(&eof);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (eof) break;
    ASSERT_GT(batch->num_rows(), 0u);
    max_batch = std::max(max_batch, batch->num_rows());
    // A pad batch carries nulls in the probe (right) columns.
    if (batch->At(0, 2).is_null()) {
      ++pad_batches;
    }
    total += batch->num_rows();
  }
  // matched (two) + kBuildRows unmatched build + unmatched probe (four).
  EXPECT_EQ(total, kBuildRows + 2);
  EXPECT_LE(max_batch, table::kDefaultBatchRows);
  // ceil(3500 / 1024) = 4 chunks of build pads.
  EXPECT_GE(pad_batches, 4u);
}

// ---------------------------------------------------------------------------
// ORDER BY side resolution
// ---------------------------------------------------------------------------

TEST_F(OperatorsTest, OrderByResolvesEvaluationSideOncePerItem) {
  // The output alias m (a map column) shadows the pre-projection column
  // m, whose row 1 holds an int: `m['k']` evaluates fine against the
  // pre-projection rows 0 and 2 but errors on row 1. Pre-fix, the
  // per-row fallback mixed keys from both schemas (pre values 0 and 5
  // for rows 0/2, output value 1 for row 1 -> id order 10,20,30);
  // post-fix the whole item falls back to the output schema (keys
  // 9,1,9 -> id order 20,10,30).
  Table t(Schema{{{"m", DataType::kNull},
                  {"m2", DataType::kNull},
                  {"id", DataType::kInt64}}});
  table::ValueMap a0, a2, b0, b1, b2;
  a0["k"] = Value::Int(0);
  a2["k"] = Value::Int(5);
  b0["k"] = Value::Int(9);
  b1["k"] = Value::Int(1);
  b2["k"] = Value::Int(9);
  t.AppendRow({Value::Map(a0), Value::Map(b0), Value::Int(10)});
  t.AppendRow({Value::Int(7), Value::Map(b1), Value::Int(20)});
  t.AppendRow({Value::Map(a2), Value::Map(b2), Value::Int(30)});
  catalog_.RegisterTable("t", std::move(t));

  for (const size_t parallelism : {size_t{1}, size_t{4}}) {
    Executor exec(&catalog_, &functions_, parallelism);
    auto res = exec.Query("SELECT m2 AS m, id FROM t ORDER BY m['k']");
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res->num_rows(), 3u);
    EXPECT_EQ(res->At(0, 1).AsInt(), 20) << "parallelism " << parallelism;
    EXPECT_EQ(res->At(1, 1).AsInt(), 10) << "parallelism " << parallelism;
    EXPECT_EQ(res->At(2, 1).AsInt(), 30) << "parallelism " << parallelism;
  }
}

TEST_F(OperatorsTest, OrderByAliasShadowingStillPrefersPreProjection) {
  // When the pre-projection side evaluates cleanly on *every* row the
  // fix changes nothing: `id * 1` is no output column reference, so it
  // keys off the retained pre-projection rows exactly as the seed
  // interpreter does — even though `a AS id` shadows the name.
  Table t(Schema{{{"id", DataType::kInt64}, {"a", DataType::kInt64}}});
  t.AppendRow({Value::Int(3), Value::Int(100)});
  t.AppendRow({Value::Int(1), Value::Int(200)});
  t.AppendRow({Value::Int(2), Value::Int(300)});
  catalog_.RegisterTable("t", std::move(t));
  Executor exec(&catalog_, &functions_, 1);
  auto res = exec.Query("SELECT a AS id FROM t ORDER BY id * 1");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->num_rows(), 3u);
  // Sorted by pre-projection id (3,1,2) -> a values 200,300,100.
  EXPECT_EQ(res->At(0, 0).AsInt(), 200);
  EXPECT_EQ(res->At(1, 0).AsInt(), 300);
  EXPECT_EQ(res->At(2, 0).AsInt(), 100);
}

// ---------------------------------------------------------------------------
// Parallel join/sort/materialisation: byte-identical output + ExecStats
// ---------------------------------------------------------------------------

TEST_F(OperatorsTest, ParallelJoinSortMaterialiseByteIdentical) {
  // Big enough that the build partitions, the probe shards, the sort
  // shards and the chunked materialisation all actually engage
  // (ShardRows grain is 1024 rows).
  constexpr int kRows = 6000;
  Table big(Schema{{{"k", DataType::kInt64},
                    {"v", DataType::kDouble},
                    {"id", DataType::kInt64}}});
  Table dim(Schema{{{"k", DataType::kInt64}, {"w", DataType::kDouble}}});
  for (int i = 0; i < kRows; ++i) {
    big.AppendRow({Value::Int(i % 2048), Value::Double((i * 37) % 211),
                   Value::Int(i)});
  }
  for (int i = 0; i < 4096; ++i) {
    dim.AppendRow({Value::Int(i), Value::Double(i * 0.5)});
  }
  catalog_.RegisterTable("big", std::move(big));
  catalog_.RegisterTable("dim", std::move(dim));

  const std::string query =
      "SELECT big.id AS id, big.v + dim.w AS s FROM big "
      "JOIN dim ON big.k = dim.k ORDER BY s DESC, id LIMIT 500";
  Executor serial(&catalog_, &functions_, 1);
  Executor parallel(&catalog_, &functions_, 4);
  auto r1 = serial.Query(query);
  auto r4 = parallel.Query(query);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r4.ok()) << r4.status().ToString();
  ASSERT_EQ(r1->num_rows(), 500u);
  ASSERT_EQ(r1->num_rows(), r4->num_rows());
  for (size_t r = 0; r < r1->num_rows(); ++r) {
    for (size_t c = 0; c < r1->num_columns(); ++c) {
      ASSERT_TRUE(r1->At(r, c).Equals(r4->At(r, c)))
          << "row " << r << " col " << c;
    }
  }
  // The parallel run actually took the parallel paths.
  const ExecStats& stats = parallel.last_stats();
  EXPECT_GE(stats.join_build_partitions, 2u);
  EXPECT_GE(stats.sort_shards, 2u);
  EXPECT_EQ(serial.last_stats().join_build_partitions, 1u);
  EXPECT_EQ(serial.last_stats().sort_shards, 1u);
}

TEST_F(OperatorsTest, ParallelMaterialisationAssemblesChunks) {
  constexpr int kRows = 5000;
  Table big(Schema{{{"id", DataType::kInt64}, {"v", DataType::kDouble}}});
  for (int i = 0; i < kRows; ++i) {
    big.AppendRow({Value::Int(i), Value::Double(i * 0.25)});
  }
  catalog_.RegisterTable("big", std::move(big));

  const std::string query = "SELECT id, v * 2 AS w FROM big WHERE id >= 0";
  Executor serial(&catalog_, &functions_, 1);
  Executor parallel(&catalog_, &functions_, 4);
  auto r1 = serial.Query(query);
  auto r4 = parallel.Query(query);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r4.ok()) << r4.status().ToString();
  ASSERT_EQ(r1->num_rows(), static_cast<size_t>(kRows));
  ASSERT_EQ(r4->num_rows(), static_cast<size_t>(kRows));
  for (size_t r = 0; r < r1->num_rows(); ++r) {
    for (size_t c = 0; c < r1->num_columns(); ++c) {
      ASSERT_TRUE(r1->At(r, c).Equals(r4->At(r, c)))
          << "row " << r << " col " << c;
    }
  }
  EXPECT_GE(parallel.last_stats().materialize_chunks, 2u);
  EXPECT_EQ(serial.last_stats().materialize_chunks, 1u);
}

}  // namespace
}  // namespace explainit::sql
