// Differential SQL harness: a golden corpus of queries executed through
// the preserved seed row-at-a-time interpreter (bench/seed_executor.h)
// AND the planner + vectorised operator pipeline at parallelism 1 and N,
// asserting sorted row-set equality with floating-point tolerance.
//
// This is the correctness lock on the morsel-parallel operators: the
// parallel partial-aggregation path may re-associate floating-point sums
// (hence the tolerance), but every row, group, join match and NULL must
// agree with the seed semantics at every parallelism level.
//
// Adding corpus queries: append to kCorpus below. Queries must be valid
// against the fixture (tsdb / hosts / nums tables, see SetUp); invalid
// queries belong in fuzz_roundtrip_test.cc's smoke loop instead.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench/seed_executor.h"
#include "sql/executor.h"
#include "tsdb/store.h"

namespace explainit::sql {
namespace {

using table::Table;
using table::Value;

constexpr size_t kParallelism = 4;
constexpr int64_t kPoints = 30;  // per series, one per minute
const TimeRange kRange{0, kPoints * 60};

const char* const kCorpus[] = {
    // --- plain scans and filters -----------------------------------------
    "SELECT * FROM tsdb",
    "SELECT timestamp, value FROM tsdb",
    "SELECT value FROM tsdb WHERE metric_name = 'cpu' "
    "AND timestamp BETWEEN 300 AND 900 AND tag['host'] = 'h1'",
    "SELECT timestamp, value FROM tsdb "
    "WHERE tag['host'] IN ('h0', 'h2') OR value > 25",
    "SELECT timestamp, CASE WHEN value > 10 THEN 'hi' ELSE 'lo' END AS b "
    "FROM tsdb WHERE metric_name = 'cpu'",
    "SELECT timestamp FROM tsdb "
    "WHERE metric_name LIKE 'c%' AND timestamp BETWEEN 120 AND 240",
    "SELECT value FROM tsdb LIMIT 10",
    "SELECT -value AS neg, NOT value > 20 AS small FROM tsdb "
    "WHERE metric_name = 'mem' AND tag['dc'] = 'd1'",
    // --- aggregation ------------------------------------------------------
    "SELECT tag['host'] AS host, AVG(value) AS v FROM tsdb "
    "WHERE metric_name = 'cpu' GROUP BY tag['host']",
    "SELECT tag['dc'] AS dc, tag['host'] AS h, COUNT(*) AS n, "
    "SUM(value) AS s, MIN(value) AS mn, MAX(value) AS mx "
    "FROM tsdb GROUP BY tag['dc'], tag['host']",
    "SELECT COUNT(*) AS n, AVG(value) AS a FROM tsdb",
    "SELECT COUNT(*) AS n, AVG(value) AS a FROM tsdb WHERE value > 99999",
    "SELECT tag['host'] AS h, AVG(value) AS v FROM tsdb "
    "WHERE metric_name = 'cpu' GROUP BY tag['host'] HAVING AVG(value) > 10",
    "SELECT AVG(value) / MAX(value) AS r, COUNT(*) + 1 AS c FROM tsdb "
    "WHERE metric_name = 'mem'",
    "SELECT tag['host'] AS h, STDDEV(value) AS sd, "
    "PERCENTILE(value, 0.9) AS p FROM tsdb "
    "WHERE metric_name = 'cpu' GROUP BY tag['host']",
    "SELECT timestamp AS ts, AVG(value) AS v FROM tsdb "
    "WHERE metric_name = 'cpu' GROUP BY timestamp",
    "SELECT tag['host'] AS h FROM tsdb WHERE metric_name = 'cpu' "
    "GROUP BY tag['host'] HAVING MAX(value) > 20",
    "SELECT SUM(value * 2) AS s2, MIN(value + 1) AS m1 FROM tsdb "
    "WHERE metric_name = 'mem'",
    "SELECT timestamp % 120 AS bucket, AVG(value) AS v FROM tsdb "
    "WHERE metric_name = 'cpu' GROUP BY timestamp % 120",
    "SELECT CONCAT(tag['host'], '-x') AS k, AVG(value) AS v FROM tsdb "
    "GROUP BY CONCAT(tag['host'], '-x')",
    // NULL-skipping aggregates over the nums fixture (b's SUM is NULL).
    "SELECT h, COUNT(v) AS c, COUNT(*) AS cs, SUM(v) AS s "
    "FROM nums GROUP BY h",
    "SELECT h, v FROM nums WHERE v IS NULL",
    // --- joins ------------------------------------------------------------
    "SELECT COUNT(*) AS n, AVG(l.v + r.v) AS s FROM "
    "(SELECT timestamp AS ts, AVG(value) AS v FROM tsdb "
    " WHERE metric_name = 'cpu' GROUP BY timestamp) l "
    "JOIN "
    "(SELECT timestamp AS ts, AVG(value) AS v FROM tsdb "
    " WHERE metric_name = 'mem' GROUP BY timestamp) r "
    "ON l.ts = r.ts",
    "SELECT t.timestamp, t.value, hosts.grp FROM tsdb t "
    "JOIN hosts ON t.tag['host'] = hosts.host "
    "WHERE t.metric_name = 'cpu' AND t.timestamp < 600",
    "SELECT hosts.host, n.v FROM hosts LEFT JOIN nums n ON hosts.host = n.h",
    "SELECT hosts.host, n.v FROM hosts FULL OUTER JOIN nums n "
    "ON hosts.host = n.h",
    // Outer joins at both build orientations: hosts (4 rows) < dims
    // (12 rows) makes the planner build on the *left* side, nums (4
    // rows) keeps build = right; pads must follow the actual build side.
    "SELECT hosts.host, dims.v FROM hosts LEFT JOIN dims "
    "ON hosts.host = dims.h",
    "SELECT hosts.host, dims.v FROM hosts FULL OUTER JOIN dims "
    "ON hosts.host = dims.h",
    "SELECT dims.h, dims.v, hosts.grp FROM dims LEFT JOIN hosts "
    "ON dims.h = hosts.host",
    "SELECT dims.h, hosts.host FROM dims FULL OUTER JOIN hosts "
    "ON dims.h = hosts.host ORDER BY dims.h, hosts.host",
    // ORDER BY + LIMIT over join outputs: the keys cover every selected
    // column, so tied rows are identical and the LIMIT cut is a
    // well-defined multiset on both engines.
    "SELECT hosts.host AS hh, n.v AS vv FROM hosts LEFT JOIN nums n "
    "ON hosts.host = n.h ORDER BY hh DESC, vv LIMIT 3",
    "SELECT hosts.host AS hh, n.v AS vv FROM hosts FULL OUTER JOIN nums n "
    "ON hosts.host = n.h ORDER BY hh, vv DESC LIMIT 5",
    "SELECT timestamp, value FROM tsdb WHERE metric_name = 'mem' "
    "ORDER BY value DESC, timestamp LIMIT 11",
    "SELECT t.timestamp AS ts, t.value AS v, hosts.grp AS g FROM tsdb t "
    "JOIN hosts ON t.tag['host'] = hosts.host WHERE t.metric_name = 'cpu' "
    "ORDER BY v DESC, ts, g LIMIT 9",
    "SELECT a.host, b.grp FROM hosts a CROSS JOIN hosts b",
    "SELECT a.host, b.host FROM hosts a JOIN hosts b ON a.host < b.host",
    // Join-aware pushdown: per-side conjuncts narrow both tsdb scans.
    "SELECT COUNT(*) AS n FROM tsdb l JOIN tsdb r "
    "ON l.timestamp = r.timestamp "
    "WHERE l.metric_name = 'cpu' AND l.tag['host'] = 'h0' "
    "AND r.metric_name = 'mem' AND r.tag['host'] = 'h1' "
    "AND l.timestamp BETWEEN 0 AND 600",
    // Pushdown into the nullable side of an outer join: the conjuncts
    // are NULL-rejecting, so narrowing the scan must not change results.
    "SELECT h.host, t.value FROM hosts h "
    "LEFT JOIN tsdb t ON h.host = t.tag['host'] "
    "WHERE t.metric_name = 'cpu' AND t.timestamp < 180",
    // Duplicated alias: "binds to this input" is ambiguous, so the
    // planner must not push q.* conjuncts into either scan (the seed
    // resolves q.metric_name against the left input only).
    "SELECT COUNT(*) AS n FROM tsdb q JOIN tsdb q "
    "ON q.timestamp = q.timestamp "
    "WHERE q.metric_name = 'cpu' AND q.timestamp < 180",
    // --- LAG (stays serial at every parallelism) --------------------------
    "SELECT timestamp, value - LAG(value, 1) AS d FROM tsdb "
    "WHERE metric_name = 'cpu' AND tag['host'] = 'h0'",
    "SELECT timestamp FROM tsdb WHERE metric_name = 'cpu' "
    "AND tag['host'] = 'h0' AND LAG(value, 1) < value",
    // --- UNION ALL / ORDER BY / LIMIT / subqueries ------------------------
    "SELECT 'cpu' AS m, AVG(value) AS v FROM tsdb WHERE metric_name = 'cpu' "
    "UNION ALL "
    "SELECT 'mem' AS m, AVG(value) AS v FROM tsdb WHERE metric_name = 'mem'",
    "SELECT timestamp, value FROM tsdb WHERE metric_name = 'cpu' "
    "ORDER BY value DESC LIMIT 7",
    "SELECT value FROM tsdb WHERE metric_name = 'cpu' "
    "AND tag['host'] = 'h0' ORDER BY timestamp DESC LIMIT 5",
    "SELECT tag['host'] AS h, AVG(value) AS v FROM tsdb "
    "WHERE metric_name = 'cpu' GROUP BY tag['host'] ORDER BY v DESC LIMIT 2",
    "SELECT s.v + 1 AS w FROM (SELECT AVG(value) AS v FROM tsdb "
    "GROUP BY tag['host']) s WHERE s.v > 5",
    // --- rollup-aware resolution hints ------------------------------------
    // The fixture store is tiered (sealed segments + dirty heads), so
    // these run partly from pre-aggregated rollup tiers in the pipeline
    // while the seed recombines raw rows — parity locks the equivalence.
    "SELECT DATE_TRUNC('minute', timestamp) AS m, SUM(value) AS s "
    "FROM tsdb WHERE metric_name = 'cpu' "
    "GROUP BY DATE_TRUNC('minute', timestamp)",
    "SELECT DATE_TRUNC('hour', timestamp) AS h, MAX(value) AS mx "
    "FROM tsdb GROUP BY DATE_TRUNC('hour', timestamp)",
    "SELECT tag['host'] AS h, DATE_TRUNC('hour', timestamp) AS hh, "
    "MIN(value) AS lo FROM tsdb WHERE metric_name = 'mem' "
    "GROUP BY tag['host'], DATE_TRUNC('hour', timestamp)",
    // The `ts - ts % k` grid form with tier-aligned WHERE bounds.
    "SELECT timestamp - timestamp % 60 AS b, SUM(value) AS s FROM tsdb "
    "WHERE metric_name = 'cpu' AND timestamp >= 60 AND timestamp < 1200 "
    "GROUP BY timestamp - timestamp % 60",
    // No hint derivable (AVG / unaligned bound) — still must agree.
    "SELECT DATE_TRUNC('minute', timestamp) AS m, AVG(value) AS a "
    "FROM tsdb WHERE metric_name = 'cpu' "
    "GROUP BY DATE_TRUNC('minute', timestamp)",
    "SELECT DATE_TRUNC('minute', timestamp) AS m, SUM(value) AS s "
    "FROM tsdb WHERE metric_name = 'cpu' AND timestamp > 90 "
    "GROUP BY DATE_TRUNC('minute', timestamp)",
    // DATE_TRUNC as a plain scalar (no aggregation shape at all).
    "SELECT DATE_TRUNC('hour', timestamp) AS h, value FROM tsdb "
    "WHERE metric_name = 'sparse'",
    // --- cost-based planner: join reordering ------------------------------
    // Star joins in worst-case statement order (dimensions cross-joined
    // first, the big tsdb relation last): the planner reorders, the seed
    // runs statement order — parity proves order independence.
    "SELECT hosts.grp AS g, SUM(t.value) AS s "
    "FROM hosts CROSS JOIN nums n JOIN tsdb t ON t.tag['host'] = hosts.host "
    "GROUP BY hosts.grp ORDER BY g",
    "SELECT d.v AS dv, hosts.grp AS g, COUNT(*) AS n "
    "FROM dims d CROSS JOIN hosts JOIN nums m ON m.h = d.h "
    "GROUP BY d.v, hosts.grp ORDER BY dv, g",
    // --- cost-based planner: aggregate pushdown below joins ---------------
    "SELECT hosts.grp AS g, COUNT(*) AS n FROM tsdb t "
    "JOIN hosts ON t.tag['host'] = hosts.host GROUP BY hosts.grp",
    "SELECT hosts.host AS h, AVG(t.value) AS a, MIN(t.value) AS lo "
    "FROM tsdb t JOIN hosts ON t.tag['host'] = hosts.host "
    "WHERE t.metric_name = 'cpu' GROUP BY hosts.host ORDER BY h",
    // HAVING above the pushed partial aggregate.
    "SELECT hosts.host AS h, SUM(t.value) AS s FROM tsdb t "
    "JOIN hosts ON t.tag['host'] = hosts.host GROUP BY hosts.host "
    "HAVING SUM(t.value) > 100 ORDER BY h",
    // Global aggregate over a join (partial keys come from the join
    // condition alone).
    "SELECT COUNT(*) AS n, MAX(t.value) AS mx FROM tsdb t "
    "JOIN hosts ON t.tag['host'] = hosts.host WHERE t.metric_name = 'mem'",
    // R-only WHERE conjuncts move below the partial aggregate; the
    // hosts-side conjunct stays above it.
    "SELECT hosts.grp AS g, MAX(t.value) AS mx, MIN(t.value) AS mn "
    "FROM tsdb t JOIN hosts ON t.tag['host'] = hosts.host "
    "WHERE t.metric_name = 'cpu' AND t.timestamp < 900 GROUP BY hosts.grp",
    "SELECT hosts.host AS h, SUM(t.value) AS s FROM tsdb t "
    "JOIN hosts ON t.tag['host'] = hosts.host "
    "WHERE t.metric_name = 'cpu' AND hosts.grp = 'edge' "
    "GROUP BY hosts.host ORDER BY h",
    // Duplicate keys in R (dims has h0/h5 twice): join multiplicity
    // depends only on the partial group key, the invariant pushdown
    // relies on.
    "SELECT hosts.grp AS g, SUM(d.v) AS s FROM dims d "
    "JOIN hosts ON d.h = hosts.host JOIN nums m ON m.h = d.h "
    "GROUP BY hosts.grp ORDER BY g",
    // Per-branch optimisation under UNION ALL.
    "SELECT hosts.grp AS g, SUM(t.value) AS s FROM tsdb t "
    "JOIN hosts ON t.tag['host'] = hosts.host WHERE t.metric_name = 'cpu' "
    "GROUP BY hosts.grp "
    "UNION ALL "
    "SELECT hosts.grp AS g, SUM(t.value) AS s FROM tsdb t "
    "JOIN hosts ON t.tag['host'] = hosts.host WHERE t.metric_name = 'mem' "
    "GROUP BY hosts.grp",
    // Outer joins must keep statement order (and COUNT over the padded
    // side counts NULLs vs rows differently — both engines must agree).
    "SELECT hosts.host AS h, COUNT(n.v) AS c FROM hosts "
    "LEFT JOIN nums n ON hosts.host = n.h GROUP BY hosts.host ORDER BY h",
    "SELECT COUNT(*) AS n FROM hosts FULL OUTER JOIN dims "
    "ON hosts.host = dims.h",
    // --- cost-based planner: COUNT rollup routing --------------------------
    // The tiered fixture serves sealed segments from count tiers and the
    // dirty heads from raw decodes with value = 1.0 substituted.
    "SELECT DATE_TRUNC('minute', timestamp) AS m, COUNT(*) AS n FROM tsdb "
    "WHERE metric_name = 'cpu' GROUP BY DATE_TRUNC('minute', timestamp)",
    "SELECT DATE_TRUNC('hour', timestamp) AS h, COUNT(value) AS c "
    "FROM tsdb GROUP BY DATE_TRUNC('hour', timestamp)",
};

bool NumericType(const Value& v) {
  switch (v.type()) {
    case table::DataType::kDouble:
    case table::DataType::kInt64:
    case table::DataType::kTimestamp:
      return true;
    default:
      return false;
  }
}

/// Cell equality with relative tolerance on numerics (the parallel
/// partial-aggregation merge may re-associate floating-point sums).
bool CellsClose(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return a.is_null() && b.is_null();
  }
  if (NumericType(a) && NumericType(b)) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    if (std::isnan(x) || std::isnan(y)) return std::isnan(x) == std::isnan(y);
    return std::abs(x - y) <=
           1e-9 * std::max(1.0, std::max(std::abs(x), std::abs(y)));
  }
  return a.ToString() == b.ToString();
}

std::vector<std::vector<Value>> SortedRows(const Table& t) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) rows.push_back(t.Row(r));
  std::stable_sort(rows.begin(), rows.end(),
                   [](const std::vector<Value>& a,
                      const std::vector<Value>& b) {
                     for (size_t c = 0; c < a.size(); ++c) {
                       const int cmp = a[c].Compare(b[c]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  return rows;
}

/// Exact cell identity (Value::Equals is SQL equality, where NULL is
/// never equal to anything — including NULL).
bool SameCell(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  return a.Equals(b);
}

/// Asserts sorted row-set equality between two results.
void ExpectSameRowSet(const Table& expected, const Table& actual,
                      const std::string& query, const std::string& label) {
  ASSERT_EQ(expected.num_columns(), actual.num_columns())
      << label << ": " << query;
  for (size_t c = 0; c < expected.num_columns(); ++c) {
    EXPECT_EQ(expected.schema().field(c).name, actual.schema().field(c).name)
        << label << " column " << c << ": " << query;
  }
  ASSERT_EQ(expected.num_rows(), actual.num_rows()) << label << ": " << query;
  const auto exp = SortedRows(expected);
  const auto act = SortedRows(actual);
  for (size_t r = 0; r < exp.size(); ++r) {
    for (size_t c = 0; c < exp[r].size(); ++c) {
      EXPECT_TRUE(CellsClose(exp[r][c], act[r][c]))
          << label << " row " << r << " col " << c << ": "
          << exp[r][c].ToString() << " vs " << act[r][c].ToString()
          << "\n  query: " << query;
    }
  }
}

class DifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    functions_ = FunctionRegistry::Builtins();
    // A deliberately tiered store: sealing every 8 points leaves each
    // dense series with sealed segments (and their rollup tiers) plus a
    // dirty head, so rollup-hinted corpus queries exercise the
    // mixed-granularity recombination path against the seed's raw scan.
    tsdb::StoreOptions store_opts;
    store_opts.seal_max_points = 8;
    store_opts.background_seal = false;
    store_ = std::make_shared<tsdb::SeriesStore>(store_opts);
    // Two dense metrics over four hosts in two dcs (fractional values so
    // float summation order matters), plus a sparse one.
    for (int host = 0; host < 4; ++host) {
      const tsdb::TagSet tags{{"host", "h" + std::to_string(host)},
                              {"dc", host < 2 ? "d0" : "d1"}};
      for (int64_t i = 0; i < kPoints; ++i) {
        ASSERT_TRUE(store_
                        ->Write("cpu", tags, i * 60,
                                host * 7.5 + static_cast<double>(i) * 0.25)
                        .ok());
        ASSERT_TRUE(store_
                        ->Write("mem", tags, i * 60,
                                host * 3.0 + static_cast<double>(i))
                        .ok());
      }
    }
    ASSERT_TRUE(store_
                    ->Write("sparse", tsdb::TagSet{{"host", "h0"}}, 120, 1.5)
                    .ok());
    // Engine-style registration: live row estimate for the cost-based
    // planner and exact_rollups so grid COUNT queries route onto count
    // tiers (the seed recombines raw rows either way — parity locks the
    // rewrite).
    auto store = store_;
    HintedProviderOptions provider_options;
    provider_options.estimated_rows = [store] { return store->num_points(); };
    provider_options.exact_rollups = true;
    catalog_.RegisterHintedProvider(
        "tsdb",
        [store](const tsdb::ScanHints& hints) -> Result<table::Table> {
          tsdb::ScanRequest req;
          req.range = kRange;
          req.hints = hints;
          return store->ScanToTable(req);
        },
        provider_options);

    table::Table hosts(table::Schema{{{"host", table::DataType::kString},
                                      {"grp", table::DataType::kString}}});
    hosts.AppendRow({Value::String("h0"), Value::String("edge")});
    hosts.AppendRow({Value::String("h1"), Value::String("edge")});
    hosts.AppendRow({Value::String("h2"), Value::String("core")});
    hosts.AppendRow({Value::String("h3"), Value::String("core")});
    catalog_.RegisterTable("hosts", std::move(hosts));

    table::Table nums(table::Schema{{{"h", table::DataType::kString},
                                     {"v", table::DataType::kDouble}}});
    nums.AppendRow({Value::String("h0"), Value::Double(1.0)});
    nums.AppendRow({Value::String("h0"), Value::Null()});
    nums.AppendRow({Value::String("h1"), Value::Null()});
    nums.AppendRow({Value::String("h9"), Value::Double(3.0)});
    catalog_.RegisterTable("nums", std::move(nums));

    // Larger than hosts (so outer joins against hosts build left),
    // duplicate keys (multi-match enumeration order) and keys matching
    // nothing (pad rows on either side).
    table::Table dims(table::Schema{{{"h", table::DataType::kString},
                                     {"v", table::DataType::kDouble}}});
    const char* const keys[] = {"h0", "h0", "h1", "h3", "h4", "h5",
                                "h5", "h6", "h7", "h8", "h9", "hX"};
    for (size_t i = 0; i < 12; ++i) {
      dims.AppendRow({Value::String(keys[i]),
                      Value::Double(0.5 + static_cast<double>(i))});
    }
    catalog_.RegisterTable("dims", std::move(dims));
  }

  FunctionRegistry functions_;
  std::shared_ptr<tsdb::SeriesStore> store_;
  Catalog catalog_;
};

TEST_F(DifferentialTest, CorpusMatchesSeedAtEveryParallelism) {
  bench::SeedExecutor seed(&catalog_, &functions_);
  Executor serial(&catalog_, &functions_, /*parallelism=*/1);
  Executor parallel(&catalog_, &functions_, kParallelism);
  ASSERT_EQ(parallel.parallelism(), kParallelism);

  size_t count = 0;
  for (const char* query : kCorpus) {
    SCOPED_TRACE(query);
    auto expected = seed.Query(query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto got1 = serial.Query(query);
    ASSERT_TRUE(got1.ok()) << got1.status().ToString();
    auto gotN = parallel.Query(query);
    ASSERT_TRUE(gotN.ok()) << gotN.status().ToString();
    ExpectSameRowSet(*expected, *got1, query, "pipeline@1 vs seed");
    ExpectSameRowSet(*expected, *gotN, query, "pipeline@N vs seed");
    EXPECT_EQ(parallel.last_stats().parallelism, kParallelism);
    ++count;
  }
  // The harness promises a corpus of at least 25 queries.
  EXPECT_GE(count, 25u);
}

TEST_F(DifferentialTest, CorpusAgreesAcrossOptimizerModes) {
  // Every corpus query with the cost-based optimizer off must match the
  // optimized plan's rows at parallelism 1 and kParallelism: plan shape
  // (join order, partial aggregates, rollup routing) is never allowed to
  // change an answer.
  PlannerOptions off;
  off.enabled = false;
  Executor optimized(&catalog_, &functions_, /*parallelism=*/1);
  Executor off_serial(&catalog_, &functions_, /*parallelism=*/1);
  off_serial.set_optimizer(off);
  Executor off_parallel(&catalog_, &functions_, kParallelism);
  off_parallel.set_optimizer(off);

  size_t rewritten = 0;
  for (const char* query : kCorpus) {
    SCOPED_TRACE(query);
    auto expected = optimized.Query(query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    const ExecStats& st = optimized.last_stats();
    rewritten += st.joins_reordered + st.agg_pushdowns +
                 st.count_rollup_rewrites;
    auto got1 = off_serial.Query(query);
    ASSERT_TRUE(got1.ok()) << got1.status().ToString();
    auto gotN = off_parallel.Query(query);
    ASSERT_TRUE(gotN.ok()) << gotN.status().ToString();
    EXPECT_EQ(off_serial.last_stats().joins_reordered, 0u);
    EXPECT_EQ(off_serial.last_stats().agg_pushdowns, 0u);
    EXPECT_EQ(off_serial.last_stats().count_rollup_rewrites, 0u);
    ExpectSameRowSet(*expected, *got1, query, "optimizer off@1 vs on");
    ExpectSameRowSet(*expected, *gotN, query, "optimizer off@N vs on");
  }
  // The corpus genuinely exercises the rewrites (several queries reorder
  // joins, push aggregates below joins, or route COUNT onto rollups).
  EXPECT_GE(rewritten, 10u);
}

TEST_F(DifferentialTest, JoinSortPathsByteIdenticalAcrossParallelism) {
  // The partitioned join, sharded sort and parallel materialisation
  // must be *byte-identical* across parallelism levels — same rows in
  // the same order — not just row-set equal. (Float re-association is
  // confined to the parallel partial-aggregation path, so the corpus
  // here uses only exact operations; COUNT is integral.)
  static const char* const kOrdered[] = {
      "SELECT hosts.host AS hh, dims.v AS vv FROM hosts LEFT JOIN dims "
      "ON hosts.host = dims.h ORDER BY hh, vv",
      "SELECT hosts.host AS hh, dims.v AS vv FROM hosts FULL OUTER JOIN "
      "dims ON hosts.host = dims.h ORDER BY vv DESC, hh LIMIT 7",
      "SELECT dims.h AS h, hosts.grp AS g FROM dims LEFT JOIN hosts "
      "ON dims.h = hosts.host ORDER BY h DESC, g LIMIT 6",
      "SELECT t.timestamp AS ts, t.value AS v FROM tsdb t "
      "JOIN hosts ON t.tag['host'] = hosts.host "
      "WHERE t.metric_name = 'cpu' ORDER BY v DESC, ts LIMIT 20",
      "SELECT h, COUNT(*) AS c FROM dims GROUP BY h ORDER BY c DESC, h",
  };
  Executor serial(&catalog_, &functions_, 1);
  Executor parallel(&catalog_, &functions_, kParallelism);
  for (const char* query : kOrdered) {
    SCOPED_TRACE(query);
    auto r1 = serial.Query(query);
    auto rN = parallel.Query(query);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(rN.ok()) << rN.status().ToString();
    ASSERT_EQ(r1->num_rows(), rN->num_rows());
    ASSERT_EQ(r1->num_columns(), rN->num_columns());
    for (size_t r = 0; r < r1->num_rows(); ++r) {
      for (size_t c = 0; c < r1->num_columns(); ++c) {
        EXPECT_TRUE(SameCell(r1->At(r, c), rN->At(r, c)))
            << "row " << r << " col " << c << ": "
            << r1->At(r, c).ToString() << " vs " << rN->At(r, c).ToString();
      }
    }
  }
}

TEST_F(DifferentialTest, ParallelismIsDeterministic) {
  // Two runs at the same parallelism produce bit-identical results (the
  // shard layout depends only on the row count and the knob).
  Executor a(&catalog_, &functions_, kParallelism);
  Executor b(&catalog_, &functions_, kParallelism);
  const char* query =
      "SELECT tag['host'] AS h, SUM(value) AS s, AVG(value) AS a "
      "FROM tsdb GROUP BY tag['host']";
  auto ra = a.Query(query);
  auto rb = b.Query(query);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->num_rows(), rb->num_rows());
  for (size_t r = 0; r < ra->num_rows(); ++r) {
    for (size_t c = 0; c < ra->num_columns(); ++c) {
      EXPECT_TRUE(ra->At(r, c).Equals(rb->At(r, c))) << r << "," << c;
    }
  }
}

TEST_F(DifferentialTest, ChangingParallelismMidStreamIsSafe) {
  Executor exec(&catalog_, &functions_, 1);
  const char* query = "SELECT COUNT(*) AS n FROM tsdb";
  auto r1 = exec.Query(query);
  ASSERT_TRUE(r1.ok());
  exec.set_parallelism(kParallelism);
  auto rN = exec.Query(query);
  ASSERT_TRUE(rN.ok());
  EXPECT_EQ(r1->At(0, 0).AsInt(), rN->At(0, 0).AsInt());
  exec.set_parallelism(0);  // hardware concurrency
  EXPECT_GE(exec.parallelism(), 1u);
}

}  // namespace
}  // namespace explainit::sql
