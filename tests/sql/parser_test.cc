#include "sql/parser.h"

#include <gtest/gtest.h>

namespace explainit::sql {
namespace {

TEST(ParserTest, MinimalSelect) {
  auto stmt = Parse("SELECT 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ((*stmt)->items.size(), 1u);
  EXPECT_FALSE((*stmt)->from.has_value());
}

TEST(ParserTest, SelectStarFrom) {
  auto stmt = Parse("SELECT * FROM tsdb");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->items[0].is_star);
  EXPECT_EQ((*stmt)->from->table_name, "tsdb");
}

TEST(ParserTest, AliasesExplicitAndImplicit) {
  auto stmt = Parse("SELECT a AS x, b y, c FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].alias, "x");
  EXPECT_EQ((*stmt)->items[1].alias, "y");
  EXPECT_TRUE((*stmt)->items[2].alias.empty());
}

TEST(ParserTest, PaperTargetMetricQuery) {
  // Listing 1 from Appendix C.
  auto stmt = Parse(R"(
    SELECT timestamp, tag['pipeline_name'], AVG(value) as runtime_sec
    FROM tsdb
    WHERE metric_name = 'pipeline_runtime'
      AND timestamp BETWEEN 100 and 200
    GROUP BY timestamp, tag['pipeline_name']
    ORDER BY timestamp ASC)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStatement& s = **stmt;
  ASSERT_EQ(s.items.size(), 3u);
  EXPECT_EQ(s.items[2].alias, "runtime_sec");
  EXPECT_TRUE(s.items[2].expr->ContainsAggregate());
  EXPECT_EQ(s.items[1].expr->kind, ExprKind::kSubscript);
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->binary_op, BinaryOp::kAnd);
  ASSERT_EQ(s.group_by.size(), 2u);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].ascending);
}

TEST(ParserTest, PaperProcessQueryWithInAndSplit) {
  // Listing 3 shape.
  auto stmt = Parse(R"(
    SELECT timestamp,
           CONCAT(service_name, SPLIT(hostname, '-')[0]),
           AVG(stime + utime) as cpu
    FROM processes
    WHERE SPLIT(hostname, '-')[0] IN ('web', 'app', 'db', 'pipeline')
      AND timestamp BETWEEN 0 AND 100
    GROUP BY timestamp, CONCAT(service_name, SPLIT(hostname, '-')[0])
    ORDER BY timestamp ASC)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStatement& s = **stmt;
  EXPECT_EQ(s.items[1].expr->kind, ExprKind::kFunction);
  EXPECT_EQ(s.items[1].expr->function_name, "CONCAT");
}

TEST(ParserTest, PaperHypothesisJoinQuery) {
  // Listing 5 shape: UNION subquery + two FULL OUTER JOINs.
  auto stmt = Parse(R"(
    SELECT timestamp, x, y, z
    FROM (SELECT * FROM FF_1 UNION SELECT * FROM FF_2) FF
    FULL OUTER JOIN Target ON (FF.timestamp = Target.timestamp)
    FULL OUTER JOIN Condition ON
      Target.timestamp = Condition.timestamp AND
      Target.pipeline_name = Condition.pipeline_name
    ORDER BY timestamp ASC)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStatement& s = **stmt;
  ASSERT_TRUE(s.from.has_value());
  ASSERT_NE(s.from->subquery, nullptr);
  EXPECT_EQ(s.from->alias, "FF");
  EXPECT_EQ(s.from->subquery->union_all.size(), 1u);
  ASSERT_EQ(s.joins.size(), 2u);
  EXPECT_EQ(s.joins[0].type, JoinType::kFullOuter);
  EXPECT_EQ(s.joins[0].right.table_name, "Target");
  ASSERT_NE(s.joins[1].condition, nullptr);
}

TEST(ParserTest, JoinVariants) {
  for (const char* q : {
           "SELECT * FROM a JOIN b ON a.x = b.x",
           "SELECT * FROM a INNER JOIN b ON a.x = b.x",
           "SELECT * FROM a LEFT JOIN b ON a.x = b.x",
           "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x",
           "SELECT * FROM a CROSS JOIN b",
       }) {
    auto stmt = Parse(q);
    EXPECT_TRUE(stmt.ok()) << q << ": " << stmt.status().ToString();
  }
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(1 + (2 * 3))");
  e = ParseExpression("a OR b AND NOT c = 1");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(a OR (b AND NOT (c = 1)))");
}

TEST(ParserTest, UnaryMinus) {
  auto e = ParseExpression("-x + 1");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(-x + 1)");
}

TEST(ParserTest, BetweenNotBetween) {
  auto e = ParseExpression("t BETWEEN 1 AND 5");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kBetween);
  e = ParseExpression("t NOT BETWEEN 1 AND 5");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->negated);
}

TEST(ParserTest, InListAndNotIn) {
  auto e = ParseExpression("h IN ('a', 'b')");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->list.size(), 2u);
  e = ParseExpression("h NOT IN (1, 2, 3)");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->negated);
  EXPECT_EQ((*e)->list.size(), 3u);
}

TEST(ParserTest, IsNullIsNotNull) {
  auto e = ParseExpression("x IS NULL");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kIsNull);
  e = ParseExpression("x IS NOT NULL");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->negated);
}

TEST(ParserTest, LikeExpression) {
  auto e = ParseExpression("name LIKE 'disk%'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->binary_op, BinaryOp::kLike);
}

TEST(ParserTest, CaseWhen) {
  auto e = ParseExpression(
      "CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kCase);
  EXPECT_EQ((*e)->case_branches.size(), 2u);
  ASSERT_NE((*e)->case_else, nullptr);
}

TEST(ParserTest, CountStar) {
  auto stmt = Parse("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].expr->args[0]->kind, ExprKind::kStar);
}

TEST(ParserTest, LimitAndUnion) {
  auto stmt = Parse("SELECT a FROM t LIMIT 20");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->limit, 20);
  stmt = Parse("SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM v");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->union_all.size(), 2u);
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto stmt = Parse("SELECT FROM");
  ASSERT_FALSE(stmt.ok());
  EXPECT_TRUE(stmt.status().IsParseError());
  EXPECT_NE(stmt.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse("SELECT 1 garbage garbage").ok());
  EXPECT_FALSE(ParseExpression("1 + 2 extra").ok());
}

// ---------------------------------------------------------------------------
// EXPLAIN statements
// ---------------------------------------------------------------------------

TEST(ParserTest, ExplainAllClauses) {
  auto stmt = ParseStatement(
      "EXPLAIN SELECT ts, v FROM target_q "
      "GIVEN SELECT ts, z FROM cond_q "
      "USING SELECT ts, name, v FROM ff "
      "SCORE BY 'L2' TOP 5 BETWEEN 100 AND 200");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ((*stmt)->kind(), StatementKind::kExplain);
  const auto& e = static_cast<const ExplainStatement&>(**stmt);
  ASSERT_NE(e.target, nullptr);
  EXPECT_EQ(e.target->from->table_name, "target_q");
  ASSERT_NE(e.given, nullptr);
  EXPECT_FALSE(e.given_pseudocause);
  ASSERT_NE(e.search_space, nullptr);
  EXPECT_EQ(e.search_space->from->table_name, "ff");
  EXPECT_EQ(e.scorer, "L2");
  EXPECT_EQ(e.top_k, 5);
  EXPECT_EQ(e.between_start, 100);
  EXPECT_EQ(e.between_end, 200);
}

TEST(ParserTest, ExplainMinimalAndPseudocause) {
  auto stmt = ParseStatement(
      "EXPLAIN SELECT ts, v FROM t GIVEN PSEUDOCAUSE "
      "USING SELECT ts, name, v FROM ff");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& e = static_cast<const ExplainStatement&>(**stmt);
  EXPECT_TRUE(e.given_pseudocause);
  EXPECT_EQ(e.given, nullptr);
  EXPECT_TRUE(e.scorer.empty());
  EXPECT_FALSE(e.top_k.has_value());
  EXPECT_FALSE(e.between_start.has_value());
}

TEST(ParserTest, ExplainParenthesisedSubselects) {
  // Parentheses are optional on input and canonical on output; a trailing
  // ORDER BY inside parens cannot swallow the statement-level BETWEEN.
  auto stmt = ParseStatement(
      "EXPLAIN (SELECT ts, v FROM t) "
      "USING (SELECT ts, name, v FROM ff ORDER BY v DESC) "
      "BETWEEN 0 AND 60");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& e = static_cast<const ExplainStatement&>(**stmt);
  ASSERT_EQ(e.search_space->order_by.size(), 1u);
  EXPECT_EQ(e.between_start, 0);
  EXPECT_EQ(e.between_end, 60);
}

TEST(ParserTest, ExplainPrintsToFixpoint) {
  const char* kStatements[] = {
      "EXPLAIN (SELECT ts, v FROM t) USING (SELECT ts, name, v FROM ff)",
      "EXPLAIN (SELECT ts, v FROM t) GIVEN PSEUDOCAUSE "
      "USING (SELECT ts, name, v FROM ff) SCORE BY 'CorrMax' TOP 3",
      "EXPLAIN (SELECT ts, AVG(v) AS y FROM t GROUP BY ts) "
      "GIVEN (SELECT ts, z FROM c) "
      "USING (SELECT ts, name, v FROM ff UNION ALL "
      "SELECT ts, name, v FROM ff2) "
      "SCORE BY 'L2' TOP 20 BETWEEN 100 AND 200",
  };
  for (const char* text : kStatements) {
    SCOPED_TRACE(text);
    auto stmt = ParseStatement(text);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    const std::string sql = ToSql(**stmt);
    auto reparsed = ParseStatement(sql);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(ToSql(**reparsed), sql);
  }
}

TEST(ParserTest, ExplainRequiresUsing) {
  auto stmt = ParseStatement("EXPLAIN SELECT ts, v FROM t");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("USING"), std::string::npos);
}

TEST(ParserTest, MalformedExplainUsingPointsAtClause) {
  // The offending clause and its position (line/column) are in the error.
  auto stmt = ParseStatement(
      "EXPLAIN SELECT ts, v FROM t\n"
      "USING 42");
  ASSERT_FALSE(stmt.ok());
  const std::string msg = stmt.status().message();
  EXPECT_NE(msg.find("USING clause"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 7"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'42'"), std::string::npos) << msg;
}

TEST(ParserTest, ExplainRejectsBadClauseOperands) {
  EXPECT_FALSE(ParseStatement("EXPLAIN SELECT v FROM t USING SELECT v "
                              "FROM ff SCORE BY L2")
                   .ok());  // scorer must be quoted
  EXPECT_FALSE(ParseStatement("EXPLAIN SELECT v FROM t USING SELECT v "
                              "FROM ff TOP 0")
                   .ok());  // positive count
  EXPECT_FALSE(ParseStatement("EXPLAIN SELECT v FROM t USING SELECT v "
                              "FROM ff BETWEEN 200 AND 100")
                   .ok());  // empty window
  EXPECT_FALSE(ParseStatement("EXPLAIN SELECT v FROM t").ok());
}

TEST(ParserTest, ErrorsCarryLineAndColumn) {
  auto stmt = Parse("SELECT a,\n  FROM t");
  ASSERT_FALSE(stmt.ok());
  const std::string msg = stmt.status().message();
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 3"), std::string::npos) << msg;
}

TEST(ParserTest, SoftKeywordsRemainUsableAsColumns) {
  // The Score Table's own columns (score, ...) stay addressable even
  // though SCORE/TOP/... are reserved at statement level.
  auto stmt = Parse(
      "SELECT family, score FROM scores WHERE score > 0.5 "
      "ORDER BY score DESC");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->items[1].expr->column, "score");
  EXPECT_EQ((*stmt)->items[1].expr->ToString(), "score");

  auto aliased = Parse("SELECT v AS score, s.top FROM s");
  ASSERT_TRUE(aliased.ok()) << aliased.status().ToString();
  EXPECT_EQ((*aliased)->items[0].alias, "score");
  EXPECT_EQ((*aliased)->items[1].expr->column, "top");

  // Statement-level dispatch still wins at the start of the input.
  EXPECT_TRUE(Parse("SELECT explain FROM t").ok());

  // ... and as table names: a Score Table registered as `score` stays
  // queryable.
  auto from_soft = Parse("SELECT family FROM score");
  ASSERT_TRUE(from_soft.ok()) << from_soft.status().ToString();
  EXPECT_EQ((*from_soft)->from->table_name, "score");
}

TEST(ParserTest, StatementIntegersRejectOverflow) {
  // An out-of-range literal must error, not silently truncate to 0.
  EXPECT_FALSE(ParseStatement("EXPLAIN SELECT v FROM t USING SELECT v "
                              "FROM ff BETWEEN 99999999999999999999 AND 5")
                   .ok());
  EXPECT_FALSE(ParseStatement("EXPLAIN SELECT v FROM t USING SELECT v "
                              "FROM ff TOP 99999999999999999999")
                   .ok());
  // The INT64_MAX edge itself parses (and executes without overflow).
  EXPECT_TRUE(ParseStatement("EXPLAIN SELECT v FROM t USING SELECT v "
                             "FROM ff BETWEEN 0 AND 9223372036854775807")
                  .ok());
}

TEST(ParserTest, ParseRejectsExplainWithPointer) {
  auto stmt = Parse("EXPLAIN SELECT v FROM t USING SELECT v FROM ff");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("statement"), std::string::npos);
}

TEST(ParserTest, HugeDoubleLiteralIsParseErrorWithPosition) {
  // 1e999 overflows double: std::stod throws std::out_of_range, which
  // must surface as a ParseError pointing at the literal — never as an
  // uncaught exception crossing the library boundary.
  auto stmt = Parse("SELECT\n  1e999");
  ASSERT_FALSE(stmt.ok());
  EXPECT_TRUE(stmt.status().IsParseError()) << stmt.status().ToString();
  const std::string msg = stmt.status().message();
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 3"), std::string::npos) << msg;
}

TEST(ParserTest, HugeIntegerLiteralIsParseError) {
  // 20 nines exceed int64: the old unchecked from_chars left the value 0
  // and parsed on — a silently wrong literal in WHERE clauses.
  auto stmt = Parse("SELECT * FROM t WHERE a = 99999999999999999999");
  ASSERT_FALSE(stmt.ok());
  EXPECT_TRUE(stmt.status().IsParseError()) << stmt.status().ToString();
  EXPECT_NE(stmt.status().message().find("out of range"), std::string::npos)
      << stmt.status().message();
}

TEST(ParserTest, Int64EdgeLiteralsParse) {
  auto stmt = Parse("SELECT 9223372036854775807");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  // One past INT64_MAX must be rejected, not wrapped.
  EXPECT_FALSE(Parse("SELECT 9223372036854775808").ok());
}

TEST(ParserTest, LargeButFiniteDoubleLiteralsParse) {
  EXPECT_TRUE(Parse("SELECT 1e308").ok());
  EXPECT_TRUE(Parse("SELECT 1.7976931348623157e308").ok());
  EXPECT_FALSE(Parse("SELECT 1.8e308").ok());  // past DBL_MAX
}

TEST(ParserTest, HugeLimitIsParseError) {
  // Same bug class at the LIMIT clause: out-of-range must not become
  // a silent LIMIT 0.
  auto stmt = Parse("SELECT a FROM t LIMIT 99999999999999999999");
  ASSERT_FALSE(stmt.ok());
  EXPECT_TRUE(stmt.status().IsParseError()) << stmt.status().ToString();
  EXPECT_TRUE(Parse("SELECT a FROM t LIMIT 10").ok());
}

TEST(ParserTest, ExprCloneDeepCopies) {
  auto e = ParseExpression("AVG(a + b['k']) / 2");
  ASSERT_TRUE(e.ok());
  ExprPtr clone = (*e)->Clone();
  EXPECT_EQ(clone->ToString(), (*e)->ToString());
  EXPECT_NE(clone.get(), e->get());
}

// ---------------------------------------------------------------------------
// Standing-query (monitor) grammar
// ---------------------------------------------------------------------------

TEST(ParserTest, ExplainMonitorClauses) {
  auto stmt = ParseStatement(
      "EXPLAIN SELECT ts, v FROM t "
      "USING SELECT ts, name, v FROM ff "
      "BETWEEN 0 AND 3599 EVERY 10m TRIGGERED INTO hist");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ((*stmt)->kind(), StatementKind::kExplain);
  const auto& e = static_cast<const ExplainStatement&>(**stmt);
  ASSERT_TRUE(e.every_seconds.has_value());
  EXPECT_EQ(*e.every_seconds, 600);
  EXPECT_TRUE(e.triggered);
  EXPECT_EQ(e.into_table, "hist");
  EXPECT_TRUE(e.is_monitor());
}

TEST(ParserTest, ExplainWithoutMonitorClausesIsNotMonitor) {
  auto stmt = ParseStatement(
      "EXPLAIN SELECT ts, v FROM t USING SELECT ts, name, v FROM ff");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& e = static_cast<const ExplainStatement&>(**stmt);
  EXPECT_FALSE(e.every_seconds.has_value());
  EXPECT_FALSE(e.triggered);
  EXPECT_TRUE(e.into_table.empty());
  EXPECT_FALSE(e.is_monitor());
}

TEST(ParserTest, EveryAcceptsBareIntegerSeconds) {
  auto stmt = ParseStatement(
      "EXPLAIN SELECT ts, v FROM t USING SELECT ts, name, v FROM ff "
      "EVERY 45");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& e = static_cast<const ExplainStatement&>(**stmt);
  EXPECT_EQ(e.every_seconds, 45);
}

TEST(ParserTest, MonitorClausesPrintToFixpoint) {
  // FormatDuration canonicalises the interval (600s -> 10m), then the
  // printed statement must reparse to the identical string.
  const char* kStatements[] = {
      "EXPLAIN (SELECT ts, v FROM t) USING (SELECT ts, name, v FROM ff) "
      "BETWEEN 0 AND 3599 EVERY 600 INTO hist",
      "EXPLAIN (SELECT ts, v FROM t) USING (SELECT ts, name, v FROM ff) "
      "BETWEEN 0 AND 59 TRIGGERED INTO alert_hist",
      "EXPLAIN (SELECT ts, v FROM t) USING (SELECT ts, name, v FROM ff) "
      "EVERY 2d",
  };
  for (const char* text : kStatements) {
    SCOPED_TRACE(text);
    auto stmt = ParseStatement(text);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    const std::string sql = ToSql(**stmt);
    auto reparsed = ParseStatement(sql);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(ToSql(**reparsed), sql);
  }
  auto stmt = ParseStatement(
      "EXPLAIN SELECT ts, v FROM t USING SELECT ts, name, v FROM ff "
      "EVERY 600");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(ToSql(**stmt).find("EVERY 10m"), std::string::npos)
      << ToSql(**stmt);
}

TEST(ParserTest, MonitorClauseErrors) {
  auto zero = ParseStatement(
      "EXPLAIN SELECT v FROM t USING SELECT v FROM ff EVERY 0");
  ASSERT_FALSE(zero.ok());
  EXPECT_NE(zero.status().message().find("positive interval"),
            std::string::npos)
      << zero.status().message();
  auto bare_into = ParseStatement(
      "EXPLAIN SELECT v FROM t USING SELECT v FROM ff INTO hist");
  ASSERT_FALSE(bare_into.ok());
  EXPECT_NE(bare_into.status().message().find("INTO requires EVERY"),
            std::string::npos)
      << bare_into.status().message();
  // Monitor clauses only attach to EXPLAIN, never plain SELECT.
  EXPECT_FALSE(ParseStatement("SELECT v FROM t EVERY 30s").ok());
}

TEST(ParserTest, DropMonitorStatement) {
  auto stmt = ParseStatement("DROP MONITOR lat_watch");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ((*stmt)->kind(), StatementKind::kDropMonitor);
  const auto& d = static_cast<const DropMonitorStatement&>(**stmt);
  EXPECT_EQ(d.name, "lat_watch");
  EXPECT_EQ(ToSql(d), "DROP MONITOR lat_watch");
  EXPECT_FALSE(ParseStatement("DROP MONITOR").ok());
  EXPECT_FALSE(ParseStatement("DROP MONITOR a b").ok());
}

TEST(ParserTest, ShowMonitorsStatement) {
  auto stmt = ParseStatement("SHOW MONITORS");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ((*stmt)->kind(), StatementKind::kShowMonitors);
  EXPECT_EQ(ToSql(static_cast<const ShowMonitorsStatement&>(**stmt)),
            "SHOW MONITORS");
  EXPECT_FALSE(ParseStatement("SHOW MONITORS please").ok());
}

TEST(ParserTest, DurationLiteralUsableInExpressions) {
  // A duration token is an integer literal (seconds) anywhere an
  // expression wants one, e.g. bucketing: ts - ts % 5m.
  auto e = ParseExpression("ts - ts % 5m");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_NE((*e)->ToString().find("300"), std::string::npos)
      << (*e)->ToString();
}

}  // namespace
}  // namespace explainit::sql
