#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace explainit::sql {
namespace {

TEST(LexerTest, KeywordsNormalisedUpper) {
  auto tokens = Tokenize("select From WHERE");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // 3 + end
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
  EXPECT_EQ((*tokens)[3].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersPreserveCase) {
  auto tokens = Tokenize("Pipeline_Runtime tsdb");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "Pipeline_Runtime");
  EXPECT_EQ((*tokens)[1].text, "tsdb");
}

TEST(LexerTest, StringsUnquoted) {
  auto tokens = Tokenize("'pipeline_runtime'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "pipeline_runtime");
}

TEST(LexerTest, EscapedQuoteInString) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto tokens = Tokenize("'oops");
  EXPECT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsParseError());
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("42 3.5 .25 1e6 2.5E-3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].text, "3.5");
  EXPECT_EQ((*tokens)[2].text, ".25");
  EXPECT_EQ((*tokens)[3].text, "1e6");
  EXPECT_EQ((*tokens)[4].text, "2.5E-3");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kNumber);
  }
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  auto tokens = Tokenize("= != <= >= <> [ ] ( ) , .");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsOperator("="));
  EXPECT_TRUE((*tokens)[1].IsOperator("!="));
  EXPECT_TRUE((*tokens)[2].IsOperator("<="));
  EXPECT_TRUE((*tokens)[3].IsOperator(">="));
  EXPECT_TRUE((*tokens)[4].IsOperator("!="));  // <> normalised
  EXPECT_TRUE((*tokens)[5].IsOperator("["));
}

TEST(LexerTest, MapSubscriptShape) {
  auto tokens = Tokenize("tag['pipeline_name']");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "tag");
  EXPECT_TRUE((*tokens)[1].IsOperator("["));
  EXPECT_EQ((*tokens)[2].type, TokenType::kString);
  EXPECT_TRUE((*tokens)[3].IsOperator("]"));
}

TEST(LexerTest, LineComments) {
  auto tokens = Tokenize("SELECT -- this is a comment\n 1");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].text, "1");
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto tokens = Tokenize("SELECT @");
  EXPECT_FALSE(tokens.ok());
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = Tokenize("SELECT x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 7u);
}

TEST(LexerTest, DurationLiterals) {
  auto tokens = Tokenize("30s 5m 1h 2d 90S");
  ASSERT_TRUE(tokens.ok());
  const int64_t want[] = {30, 5 * 60, 3600, 2 * 86400, 90};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kDuration) << i;
    EXPECT_EQ((*tokens)[i].seconds, want[i]) << i;
  }
  // Original spelling survives in text (ToSql re-canonicalises).
  EXPECT_EQ((*tokens)[0].text, "30s");
  EXPECT_EQ((*tokens)[4].text, "90S");
}

TEST(LexerTest, DurationDoesNotSwallowExpressionContexts) {
  // An identifier starting right after a number that is NOT a unit is a
  // malformed duration, never silently two tokens.
  auto tokens = Tokenize("30x");
  ASSERT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsParseError());
  EXPECT_NE(tokens.status().message().find("duration unit"),
            std::string::npos)
      << tokens.status().message();
  // Scientific notation still lexes as a plain number.
  auto sci = Tokenize("1e6 2.5E-3");
  ASSERT_TRUE(sci.ok());
  EXPECT_EQ((*sci)[0].type, TokenType::kNumber);
  EXPECT_EQ((*sci)[1].type, TokenType::kNumber);
}

TEST(LexerTest, FractionalDurationFailsWithPosition) {
  auto tokens = Tokenize("SELECT 1\n1.5h");
  ASSERT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsParseError());
  EXPECT_NE(tokens.status().message().find("line 2"), std::string::npos)
      << tokens.status().message();
}

TEST(LexerTest, DurationOverflowFails) {
  auto tokens = Tokenize("99999999999999999999d");
  ASSERT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsParseError());
}

}  // namespace
}  // namespace explainit::sql
