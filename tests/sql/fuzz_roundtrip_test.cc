// Fuzz round-trip harness for the SQL front end.
//
// Part 1 — printer/parser fixpoint: a deterministic-seed random AST
// generator builds statements level-by-level along the parser's
// precedence grammar (so the printed text is unambiguous), prints them
// with ToSql(), parses the text back, and asserts the reparse prints to
// the *same* text. Catches printer/parser drift (precedence, keywords,
// negation forms) without hand-written goldens.
//
// Part 2 — execution smoke: random generated queries over a small
// fixture run through the pipeline at parallelism 1 and N. Errors are
// fine (the generator does not type-check); crashes, sanitizer findings,
// ok-ness divergence or result divergence between parallelism levels are
// failures.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "core/engine.h"
#include "sql/ast.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "tsdb/store.h"

namespace explainit::sql {
namespace {

using table::DataType;
using table::Value;

class AstGenerator {
 public:
  explicit AstGenerator(uint64_t seed) : rng_(seed) {}

  std::unique_ptr<SelectStatement> Statement(int depth) {
    auto stmt = std::make_unique<SelectStatement>();
    const size_t items = 1 + Pick(3);
    for (size_t i = 0; i < items; ++i) {
      SelectItem item;
      if (i == 0 && Chance(10)) {
        item.is_star = true;
      } else {
        item.expr = Chance(25) ? Aggregate(depth) : Arith(depth);
        if (Chance(50)) item.alias = Identifier();
      }
      stmt->items.push_back(std::move(item));
    }
    if (Chance(90)) {
      stmt->from = TableRefNode(depth);
      const size_t joins = depth > 0 ? Pick(3) : 0;
      for (size_t j = 0; j < joins; ++j) {
        JoinClause join;
        join.type = static_cast<JoinType>(Pick(4));
        join.right = TableRefNode(depth - 1);
        if (join.type != JoinType::kCross) join.condition = Bool(depth);
        stmt->joins.push_back(std::move(join));
      }
    }
    if (Chance(60)) stmt->where = Bool(depth);
    const size_t groups = Chance(40) ? 1 + Pick(2) : 0;
    for (size_t g = 0; g < groups; ++g) stmt->group_by.push_back(Arith(depth));
    if (groups > 0 && Chance(40)) stmt->having = Bool(depth);
    const size_t orders = Chance(40) ? 1 + Pick(2) : 0;
    for (size_t o = 0; o < orders; ++o) {
      OrderByItem item;
      item.expr = Arith(depth);
      item.ascending = Chance(50);
      stmt->order_by.push_back(std::move(item));
    }
    if (Chance(30)) stmt->limit = static_cast<int64_t>(Pick(20));
    if (depth > 0 && Chance(20)) {
      stmt->union_all.push_back(Statement(depth - 1));
    }
    return stmt;
  }

  std::unique_ptr<ExplainStatement> Explain(int depth) {
    auto e = std::make_unique<ExplainStatement>();
    e->target = Statement(depth);
    if (Chance(25)) {
      e->given_pseudocause = true;
    } else if (Chance(40)) {
      e->given = Statement(depth);
    }
    e->search_space = Statement(depth);
    if (Chance(50)) {
      static const char* const kScorers[] = {"CorrMax", "CorrMean", "L2",
                                             "L2-P50"};
      e->scorer = kScorers[Pick(4)];
    }
    if (Chance(40)) e->top_k = static_cast<int64_t>(1 + Pick(20));
    if (Chance(40)) {
      const int64_t lo = static_cast<int64_t>(Pick(500));
      e->between_start = lo;
      e->between_end = lo + static_cast<int64_t>(Pick(500));
    }
    return e;
  }

 private:
  bool Chance(int percent) {
    return static_cast<int>(Pick(100)) < percent;
  }
  size_t Pick(size_t n) { return rng_() % n; }

  std::string Identifier() {
    static const char* const kNames[] = {"a", "b", "c", "d", "m",
                                         "v0", "v1", "x", "y"};
    return kNames[Pick(sizeof(kNames) / sizeof(kNames[0]))];
  }
  std::string TableName() {
    static const char* const kTables[] = {"t0", "t1"};
    return kTables[Pick(2)];
  }

  TableRef TableRefNode(int depth) {
    TableRef ref;
    if (depth > 0 && Chance(20)) {
      ref.subquery = Statement(depth - 1);
      ref.alias = Identifier();  // subqueries need a name to be useful
    } else {
      ref.table_name = TableName();
      if (Chance(40)) ref.alias = Identifier();
    }
    return ref;
  }

  /// Literal whose printed form reparses to an identical print (%.6g on
  /// one- or two-decimal values is textually stable).
  ExprPtr Literal() {
    switch (Pick(4)) {
      case 0:
        return MakeLiteral(Value::Int(static_cast<int64_t>(Pick(1000))));
      case 1:
        return MakeLiteral(
            Value::Double(static_cast<double>(Pick(100)) * 0.25));
      case 2: {
        static const char* const kStrings[] = {"cpu", "mem", "h0", "h1",
                                               "edge", "core"};
        return MakeLiteral(Value::String(kStrings[Pick(6)]));
      }
      default:
        return MakeLiteral(Value::Null());
    }
  }

  /// Primary-level expression (never starts with NOT or a bare '-').
  ExprPtr Primary(int depth) {
    if (depth <= 0 || Chance(40)) {
      return Chance(50) ? Literal() : MakeColumnRef("", Identifier());
    }
    switch (Pick(4)) {
      case 0: {  // scalar function call
        std::vector<ExprPtr> args;
        args.push_back(Arith(depth - 1));
        args.push_back(Arith(depth - 1));
        return MakeFunction(Chance(50) ? "CONCAT" : "GREATEST",
                            std::move(args));
      }
      case 1:  // map subscript m['k']
        return MakeSubscript(MakeColumnRef("", "m"),
                             MakeLiteral(Value::String("k")));
      case 2: {  // CASE WHEN ... THEN ... [ELSE ...] END
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCase;
        const size_t branches = 1 + Pick(2);
        for (size_t i = 0; i < branches; ++i) {
          CaseBranch b;
          b.condition = Bool(depth - 1);
          b.result = Arith(depth - 1);
          e->case_branches.push_back(std::move(b));
        }
        if (Chance(60)) e->case_else = Arith(depth - 1);
        return e;
      }
      default:
        return MakeColumnRef(Chance(30) ? TableName() : "", Identifier());
    }
  }

  /// Arithmetic expression: additive/multiplicative over unary/postfix,
  /// mirroring the parser's precedence exactly.
  ExprPtr Arith(int depth) {
    ExprPtr e = Chance(25) && depth > 0
                    ? MakeUnary(UnaryOp::kNegate, Primary(depth))
                    : Primary(depth);
    const size_t ops = depth > 0 ? Pick(3) : 0;
    for (size_t i = 0; i < ops; ++i) {
      static const BinaryOp kOps[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                      BinaryOp::kMul, BinaryOp::kDiv,
                                      BinaryOp::kMod};
      e = MakeBinary(kOps[Pick(5)], std::move(e), Primary(depth - 1));
    }
    return e;
  }

  ExprPtr Aggregate(int depth) {
    static const char* const kAggs[] = {"COUNT", "SUM", "AVG",
                                        "MIN", "MAX", "STDDEV"};
    const char* name = kAggs[Pick(6)];
    std::vector<ExprPtr> args;
    if (std::string(name) == "COUNT" && Chance(40)) {
      args.push_back(MakeStar());
    } else {
      args.push_back(Arith(depth > 0 ? depth - 1 : 0));
    }
    return MakeFunction(name, std::move(args));
  }

  /// Comparison-level boolean atom.
  ExprPtr BoolAtom(int depth) {
    ExprPtr lhs = Arith(depth);
    switch (Pick(5)) {
      case 0: {
        static const BinaryOp kCmps[] = {BinaryOp::kEq, BinaryOp::kNe,
                                         BinaryOp::kLt, BinaryOp::kLe,
                                         BinaryOp::kGt, BinaryOp::kGe};
        return MakeBinary(kCmps[Pick(6)], std::move(lhs), Arith(depth));
      }
      case 1: {  // [NOT] BETWEEN
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kBetween;
        e->negated = Chance(25);
        e->left = std::move(lhs);
        e->between_lo = Arith(depth > 0 ? depth - 1 : 0);
        e->between_hi = Arith(depth > 0 ? depth - 1 : 0);
        return e;
      }
      case 2: {  // [NOT] IN (literals)
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kInList;
        e->negated = Chance(25);
        e->left = std::move(lhs);
        const size_t n = 1 + Pick(3);
        for (size_t i = 0; i < n; ++i) e->list.push_back(Literal());
        return e;
      }
      case 3: {  // IS [NOT] NULL
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIsNull;
        e->negated = Chance(50);
        e->left = std::move(lhs);
        return e;
      }
      default:  // LIKE
        return MakeBinary(BinaryOp::kLike, std::move(lhs),
                          MakeLiteral(Value::String(Chance(50) ? "c%"
                                                               : "h_")));
    }
  }

  /// Boolean expression: OR of ANDs of optionally negated atoms.
  ExprPtr Bool(int depth) {
    auto term = [&] {
      ExprPtr atom = BoolAtom(depth > 0 ? depth - 1 : 0);
      return Chance(15) ? MakeUnary(UnaryOp::kNot, std::move(atom))
                        : std::move(atom);
    };
    ExprPtr e = term();
    const size_t ops = depth > 0 ? Pick(3) : 0;
    for (size_t i = 0; i < ops; ++i) {
      e = MakeBinary(Chance(70) ? BinaryOp::kAnd : BinaryOp::kOr,
                     std::move(e), term());
    }
    return e;
  }

  std::mt19937_64 rng_;
};

TEST(FuzzRoundtripTest, PrinterParserFixpoint) {
  AstGenerator gen(0xE7541A);
  for (int i = 0; i < 400; ++i) {
    const auto stmt = gen.Statement(/*depth=*/3);
    const std::string sql = ToSql(*stmt);
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " + sql);
    auto reparsed = Parse(sql);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(ToSql(**reparsed), sql);
  }
}

TEST(FuzzRoundtripTest, ExpressionPrinterFixpoint) {
  AstGenerator gen(0xBADA55);
  // Statements double as expression factories via their WHERE clauses.
  for (int i = 0; i < 200; ++i) {
    const auto stmt = gen.Statement(/*depth=*/2);
    if (stmt->where == nullptr) continue;
    const std::string text = stmt->where->ToString();
    SCOPED_TRACE(text);
    auto reparsed = ParseExpression(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ((*reparsed)->ToString(), text);
  }
}

TEST(FuzzRoundtripTest, ExplainPrinterParserFixpoint) {
  AstGenerator gen(0xEC9A1B);
  for (int i = 0; i < 400; ++i) {
    const auto stmt = gen.Explain(/*depth=*/2);
    const std::string sql = ToSql(*stmt);
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " + sql);
    auto reparsed = ParseStatement(sql);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(ToSql(**reparsed), sql);
  }
}

// ---------------------------------------------------------------------------
// Execution smoke over a small fixture
// ---------------------------------------------------------------------------

table::Table FixtureT0() {
  table::Table t(table::Schema{{{"a", DataType::kInt64},
                                {"b", DataType::kDouble},
                                {"c", DataType::kString},
                                {"m", DataType::kMap}}});
  for (int i = 0; i < 24; ++i) {
    table::ValueMap m;
    m["k"] = Value::String(i % 2 == 0 ? "even" : "odd");
    t.AppendRow({Value::Int(i), Value::Double(i * 0.5),
                 Value::String(i % 3 == 0 ? "cpu" : "mem"),
                 Value::Map(std::move(m))});
  }
  return t;
}

table::Table FixtureT1() {
  table::Table t(table::Schema{{{"a", DataType::kInt64},
                                {"d", DataType::kDouble}}});
  for (int i = 0; i < 9; ++i) {
    t.AppendRow({Value::Int(i * 2), i % 3 == 0 ? Value::Null()
                                               : Value::Double(i * 1.5)});
  }
  return t;
}

TEST(FuzzRoundtripTest, RandomQueryExecutionSmoke) {
  Catalog catalog;
  catalog.RegisterTable("t0", FixtureT0());
  catalog.RegisterTable("t1", FixtureT1());
  FunctionRegistry functions = FunctionRegistry::Builtins();
  Executor serial(&catalog, &functions, 1);
  Executor parallel(&catalog, &functions, 4);

  AstGenerator gen(0x5EED);
  int executed = 0;
  for (int i = 0; i < 500; ++i) {
    const auto stmt = gen.Statement(/*depth=*/2);
    const std::string sql = ToSql(*stmt);
    SCOPED_TRACE(sql);
    auto r1 = serial.Query(sql);
    auto rN = parallel.Query(sql);
    // The generator does not type-check, so errors are expected — but
    // ok-ness must not depend on the parallelism level.
    ASSERT_EQ(r1.ok(), rN.ok())
        << (r1.ok() ? rN.status().ToString() : r1.status().ToString());
    if (!r1.ok()) continue;
    ++executed;
    ASSERT_EQ(r1->num_rows(), rN->num_rows());
    ASSERT_EQ(r1->num_columns(), rN->num_columns());
    // Sorted multiset comparison with float tolerance (partial
    // aggregation may re-associate sums).
    auto rows_of = [](const table::Table& t) {
      std::vector<std::vector<Value>> rows;
      for (size_t r = 0; r < t.num_rows(); ++r) rows.push_back(t.Row(r));
      std::stable_sort(rows.begin(), rows.end(),
                       [](const auto& a, const auto& b) {
                         for (size_t c = 0; c < a.size(); ++c) {
                           const int cmp = a[c].Compare(b[c]);
                           if (cmp != 0) return cmp < 0;
                         }
                         return false;
                       });
      return rows;
    };
    const auto rows1 = rows_of(*r1);
    const auto rowsN = rows_of(*rN);
    for (size_t r = 0; r < rows1.size(); ++r) {
      for (size_t c = 0; c < rows1[r].size(); ++c) {
        const Value& x = rows1[r][c];
        const Value& y = rowsN[r][c];
        if (x.is_null() || y.is_null()) {
          EXPECT_EQ(x.is_null(), y.is_null()) << r << "," << c;
          continue;
        }
        const bool num =
            x.type() == DataType::kDouble || x.type() == DataType::kInt64;
        if (num) {
          const double a = x.AsDouble();
          const double b = y.AsDouble();
          if (std::isnan(a) || std::isnan(b)) {
            EXPECT_EQ(std::isnan(a), std::isnan(b)) << r << "," << c;
          } else {
            EXPECT_LE(std::abs(a - b),
                      1e-9 * std::max(1.0, std::max(std::abs(a),
                                                    std::abs(b))))
                << r << "," << c;
          }
        } else {
          EXPECT_EQ(x.ToString(), y.ToString()) << r << "," << c;
        }
      }
    }
  }
  // The fixture is permissive enough that a healthy share of random
  // queries actually executes; guard against the smoke degenerating into
  // parse-error-only coverage.
  EXPECT_GE(executed, 20);
}

// ---------------------------------------------------------------------------
// Join/sort fuzz: random LEFT / FULL OUTER / INNER joins with ORDER BY
// (+ optional LIMIT) whose keys cover every selected column, so the
// result is a well-defined row *sequence*. The partitioned join, the
// sharded sort and the parallel materialisation must reproduce it
// byte-identically at parallelism 1 and 4 — exact ordered equality, no
// tolerance (the queries avoid re-associating aggregates).
// ---------------------------------------------------------------------------

TEST(FuzzRoundtripTest, OuterJoinOrderBySmokeByteIdentical) {
  Catalog catalog;
  catalog.RegisterTable("t0", FixtureT0());
  catalog.RegisterTable("t1", FixtureT1());
  FunctionRegistry functions = FunctionRegistry::Builtins();
  Executor serial(&catalog, &functions, 1);
  Executor parallel(&catalog, &functions, 4);

  static const char* const kJoins[] = {"JOIN", "LEFT JOIN",
                                       "FULL OUTER JOIN"};
  std::mt19937_64 rng(0x0C7A9E);
  for (int i = 0; i < 120; ++i) {
    const char* join = kJoins[rng() % 3];
    const bool asc1 = rng() % 2 == 0;
    const bool asc2 = rng() % 2 == 0;
    const bool residual = rng() % 3 == 0;  // extra non-equi conjunct
    std::string sql = std::string("SELECT t0.a AS x, t1.d AS y FROM t0 ") +
                      join + " t1 ON t0.a = t1.a";
    if (residual) sql += " AND t0.b < t1.d + 10";
    sql += std::string(" ORDER BY x") + (asc1 ? "" : " DESC") + ", y" +
           (asc2 ? "" : " DESC");
    if (rng() % 2 == 0) sql += " LIMIT " + std::to_string(1 + rng() % 12);
    SCOPED_TRACE(sql);
    auto r1 = serial.Query(sql);
    auto rN = parallel.Query(sql);
    ASSERT_EQ(r1.ok(), rN.ok())
        << (r1.ok() ? rN.status().ToString() : r1.status().ToString());
    if (!r1.ok()) continue;
    ASSERT_EQ(r1->num_rows(), rN->num_rows());
    ASSERT_EQ(r1->num_columns(), rN->num_columns());
    for (size_t r = 0; r < r1->num_rows(); ++r) {
      for (size_t c = 0; c < r1->num_columns(); ++c) {
        const Value& a = r1->At(r, c);
        const Value& b = rN->At(r, c);
        const bool same =
            a.is_null() || b.is_null() ? a.is_null() == b.is_null()
                                       : a.Equals(b);
        ASSERT_TRUE(same) << "row " << r << " col " << c << ": "
                          << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// EXPLAIN execution smoke: random statements assembled from a pool of
// type-correct sub-selects over a tiny tsdb world, executed through
// Engine::Query at parallelism 1 and 4. Errors are fine (not every
// combination forms families); crashes, ok-ness divergence, or ranking
// divergence between parallelism levels are failures.
// ---------------------------------------------------------------------------

TEST(FuzzRoundtripTest, ExplainExecutionSmokeAcrossParallelism) {
  auto store = std::make_shared<tsdb::SeriesStore>();
  const TimeRange range{0, 48 * 60};
  for (int h = 0; h < 6; ++h) {
    for (const char* metric : {"latency", "load"}) {
      const tsdb::TagSet tags{{"host", "h" + std::to_string(h)}};
      for (int i = 0; i < 48; ++i) {
        const double v =
            (metric[0] == 'l' && metric[1] == 'a')
                ? 10.0 + h + 3.0 * ((i * 13 + h * 7) % 5)
                : 5.0 + 0.5 * ((i * 11 + h * 3) % 7);
        ASSERT_TRUE(store->Write(metric, tags, i * 60, v).ok());
      }
    }
  }
  core::EngineOptions serial_opt;
  serial_opt.sql_parallelism = 1;
  core::EngineOptions parallel_opt;
  parallel_opt.sql_parallelism = 4;
  core::Engine serial(store, serial_opt);
  core::Engine parallel(store, parallel_opt);
  serial.RegisterStoreTable("tsdb", range);
  parallel.RegisterStoreTable("tsdb", range);

  static const char* const kTargets[] = {
      "SELECT timestamp, AVG(value) AS y FROM tsdb "
      "WHERE metric_name = 'latency' GROUP BY timestamp",
      "SELECT timestamp, MAX(value) AS y FROM tsdb "
      "WHERE metric_name = 'latency' AND timestamp BETWEEN 0 AND 2400 "
      "GROUP BY timestamp",
      "SELECT COUNT(*) AS n FROM tsdb",  // no families: must error cleanly
  };
  static const char* const kGivens[] = {
      "",  // marginal
      "GIVEN (SELECT timestamp, AVG(value) AS z FROM tsdb "
      "WHERE metric_name = 'load' GROUP BY timestamp) ",
      "GIVEN PSEUDOCAUSE ",
  };
  static const char* const kSpaces[] = {
      "SELECT timestamp, CONCAT('h-', tag['host']) AS family, "
      "AVG(value) AS v FROM tsdb WHERE metric_name = 'load' "
      "GROUP BY timestamp, CONCAT('h-', tag['host'])",
      "SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb "
      "GROUP BY timestamp, metric_name",
  };
  static const char* const kScorers[] = {"CorrMax", "CorrMean", "L2"};

  std::mt19937_64 rng(0x5C0FE);
  int executed = 0;
  for (int i = 0; i < 40; ++i) {
    // One named draw per clause: chained operator+ operands are
    // unsequenced, so inline rng() calls would make the corpus
    // compiler-dependent despite the fixed seed.
    const char* target = kTargets[rng() % 3];
    const char* given = kGivens[rng() % 3];
    const char* space = kSpaces[rng() % 2];
    const char* scorer = kScorers[rng() % 3];
    std::string stmt = std::string("EXPLAIN (") + target + ") " + given +
                       "USING (" + space + ")";
    stmt += std::string(" SCORE BY '") + scorer + "'";
    if (rng() % 2 == 0) stmt += " TOP " + std::to_string(1 + rng() % 8);
    if (rng() % 2 == 0) stmt += " BETWEEN 600 AND 1800";
    SCOPED_TRACE(stmt);
    auto r1 = serial.Query(stmt);
    auto rN = parallel.Query(stmt);
    ASSERT_EQ(r1.ok(), rN.ok())
        << (r1.ok() ? rN.status().ToString() : r1.status().ToString());
    if (!r1.ok()) continue;
    ++executed;
    ASSERT_TRUE(r1->score_table.has_value());
    ASSERT_TRUE(rN->score_table.has_value());
    const auto& rows1 = r1->score_table->rows;
    const auto& rowsN = rN->score_table->rows;
    ASSERT_EQ(rows1.size(), rowsN.size());
    for (size_t r = 0; r < rows1.size(); ++r) {
      EXPECT_EQ(rows1[r].family_name, rowsN[r].family_name) << "rank " << r;
      EXPECT_NEAR(rows1[r].score, rowsN[r].score,
                  1e-9 * (1.0 + std::abs(rows1[r].score)))
          << "rank " << r;
    }
  }
  // A healthy share of combinations must actually rank.
  EXPECT_GE(executed, 15);
}

TEST(FuzzRoundtripTest, HostileNumericLiteralCorpus) {
  // Regression corpus for the untrusted-literal bugs: every entry once
  // crossed the parser as an uncaught std::out_of_range (stod) or a
  // silently-zero integer (unchecked from_chars). Parsing must return a
  // clean Status — ok or ParseError — and never throw.
  static const char* const kCorpus[] = {
      "SELECT 1e999",
      "SELECT -1e999",
      "SELECT 1e99999999999999999999",
      "SELECT 99999999999999999999",
      "SELECT -99999999999999999999",
      "SELECT 9223372036854775808",
      "SELECT 18446744073709551616",
      "SELECT 1.8e308 + 1",
      "SELECT * FROM t WHERE a = 99999999999999999999",
      "SELECT a FROM t LIMIT 99999999999999999999",
      "SELECT a FROM t WHERE ts BETWEEN 1e999 AND 2e999",
      "EXPLAIN SELECT v FROM t USING (SELECT v FROM ff) TOP "
      "99999999999999999999",
      // The legitimate edges must keep parsing.
      "SELECT 9223372036854775807",
      "SELECT 1e308",
      "SELECT 0.000001",
  };
  for (const char* sql : kCorpus) {
    SCOPED_TRACE(sql);
    Result<std::unique_ptr<Statement>> stmt = [&] {
      return ParseStatement(sql);
    }();  // any exception escaping Parse fails the test via gtest
    if (!stmt.ok()) {
      EXPECT_TRUE(stmt.status().IsParseError()) << stmt.status().ToString();
      // Every parse error names the offending position.
      EXPECT_NE(stmt.status().message().find("line "), std::string::npos)
          << stmt.status().message();
    }
  }
}

}  // namespace
}  // namespace explainit::sql
