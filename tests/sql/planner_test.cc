// Planner tests: predicate/time-range pushdown into the tsdb store,
// projection pruning, join strategy and build-side selection, and the
// per-operator ExecStats counters of the vectorised pipeline.
#include "sql/planner.h"

#include <gtest/gtest.h>

#include "sql/executor.h"
#include "tsdb/store.h"

namespace explainit::sql {
namespace {

using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

constexpr int64_t kPoints = 100;  // per series, one per minute
const TimeRange kFullRange{0, kPoints * 60};

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    functions_ = FunctionRegistry::Builtins();
    store_ = std::make_shared<tsdb::SeriesStore>();
    for (int host = 0; host < 4; ++host) {
      const tsdb::TagSet tags{{"host", "h" + std::to_string(host)}};
      for (int64_t i = 0; i < kPoints; ++i) {
        ASSERT_TRUE(
            store_->Write("cpu", tags, i * 60, host * 100.0 + i).ok());
        ASSERT_TRUE(
            store_->Write("mem", tags, i * 60, host * 200.0 + i).ok());
      }
    }
    // The engine-style hinted provider: a store scan that honours hints.
    auto store = store_;
    catalog_.RegisterHintedProvider(
        "tsdb",
        [store](const tsdb::ScanHints& hints) -> Result<table::Table> {
          tsdb::ScanRequest req;
          req.range = kFullRange;
          req.hints = hints;
          return store->ScanToTable(req);
        });
    executor_ = std::make_unique<Executor>(&catalog_, &functions_);
  }

  Table MustQuery(const std::string& q) {
    auto res = executor_->Query(q);
    EXPECT_TRUE(res.ok()) << q << " -> " << res.status().ToString();
    return res.ok() ? std::move(res).value() : Table{};
  }

  const OperatorStats* FindOperator(const std::string& name) {
    for (const OperatorStats& op : executor_->last_stats().operators) {
      if (op.name == name) return &op;
    }
    return nullptr;
  }

  std::shared_ptr<tsdb::SeriesStore> store_;
  Catalog catalog_;
  FunctionRegistry functions_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(PlannerTest, TimeRangePushdownNarrowsStoreWindow) {
  // WHERE ts BETWEEN ... must shrink the ScanRequest window the store
  // sees: [120, 300] inclusive becomes the half-open [120, 301).
  Table t = MustQuery(
      "SELECT value FROM tsdb WHERE metric_name = 'cpu' "
      "AND timestamp BETWEEN 120 AND 300");
  const tsdb::ScanStats& st = store_->scan_stats();
  EXPECT_EQ(st.last_range.start, 120);
  EXPECT_EQ(st.last_range.end, 301);
  // Minutes 2,3,4,5 of 4 cpu series.
  EXPECT_EQ(t.num_rows(), 4u * 4u);
  // The store only decoded/returned the windowed points, and the scan
  // only matched the cpu series.
  EXPECT_EQ(st.series_matched, 4u);
  EXPECT_EQ(st.points_returned, 16u);
}

TEST_F(PlannerTest, ComparisonPushdownNarrowsStoreWindow) {
  Table t = MustQuery(
      "SELECT value FROM tsdb WHERE metric_name = 'cpu' "
      "AND timestamp >= 60 AND timestamp < 180");
  EXPECT_EQ(store_->scan_stats().last_range.start, 60);
  EXPECT_EQ(store_->scan_stats().last_range.end, 180);
  EXPECT_EQ(t.num_rows(), 4u * 2u);  // minutes 1 and 2
}

TEST_F(PlannerTest, MetricAndTagPushdown) {
  Table t = MustQuery(
      "SELECT value FROM tsdb WHERE metric_name = 'cpu' "
      "AND tag['host'] = 'h2'");
  EXPECT_EQ(store_->scan_stats().last_metric_glob, "cpu");
  EXPECT_EQ(store_->scan_stats().series_matched, 1u);
  EXPECT_EQ(t.num_rows(), static_cast<size_t>(kPoints));
  EXPECT_EQ(t.At(0, 0).AsDouble(), 200.0);
}

TEST_F(PlannerTest, PushdownMatchesUnpushedResults) {
  // The same query against a hinted provider and a plain materialised
  // copy must agree (the materialised path keeps the full filter).
  tsdb::ScanRequest all;
  all.range = kFullRange;
  auto full = store_->ScanToTable(all);
  ASSERT_TRUE(full.ok());
  catalog_.RegisterTable("tsdb_mat", std::move(full).value());
  const std::string where =
      " WHERE metric_name = 'mem' AND tag['host'] = 'h1' "
      "AND timestamp BETWEEN 300 AND 900";
  Table pushed = MustQuery("SELECT timestamp, value FROM tsdb" + where);
  Table plain = MustQuery("SELECT timestamp, value FROM tsdb_mat" + where);
  ASSERT_EQ(pushed.num_rows(), plain.num_rows());
  for (size_t r = 0; r < pushed.num_rows(); ++r) {
    EXPECT_EQ(pushed.At(r, 0).AsInt(), plain.At(r, 0).AsInt());
    EXPECT_EQ(pushed.At(r, 1).AsDouble(), plain.At(r, 1).AsDouble());
  }
  EXPECT_GT(pushed.num_rows(), 0u);
}

TEST_F(PlannerTest, ContradictoryRangeYieldsEmptyNotUnbounded) {
  // ts >= 600 AND ts < 300 must not degrade into an unbounded scan.
  Table t = MustQuery(
      "SELECT value FROM tsdb WHERE timestamp >= 600 AND timestamp < 300");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(PlannerTest, DegenerateHintWindowScansNothing) {
  // The hint [6000, MAX) intersected with the provider range [0, 6000)
  // degenerates to an empty window; the store's start == end sentinel
  // ("unbounded") must not resurrect it.
  Table t = MustQuery(
      "SELECT value FROM tsdb WHERE timestamp >= " +
      std::to_string(kFullRange.end));
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(PlannerTest, MisnamedTimeColumnStillErrors) {
  // The store table's time column is 'timestamp'; a WHERE over a
  // nonexistent 'ts' column must keep failing even though the planner
  // recognises 'ts' as a time-column name for hint extraction.
  auto res = executor_->Query("SELECT value FROM tsdb WHERE ts >= 0");
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsNotFound()) << res.status().ToString();
}

TEST_F(PlannerTest, GroupByLagSpansBatches) {
  // LAG in a GROUP BY key must see the whole input, not one 1024-row
  // batch at a time: with distinct values, LAG(v) keys give one group
  // per row plus the leading NULL group.
  Schema s({{"v", DataType::kInt64}});
  Table t(s);
  constexpr size_t kRows = 1030;  // spans two batches
  for (size_t i = 0; i < kRows; ++i) {
    t.AppendRow({Value::Int(static_cast<int64_t>(i))});
  }
  catalog_.RegisterTable("lagged", std::move(t));
  Table out = MustQuery(
      "SELECT LAG(v) AS prev, COUNT(*) AS n FROM lagged GROUP BY LAG(v)");
  EXPECT_EQ(out.num_rows(), kRows);  // NULL + 1029 distinct predecessors
}

TEST_F(PlannerTest, LagDisablesPushdown) {
  // LAG reads neighbouring rows, so the scanned row set must not shrink:
  // the first row inside the window still sees its true predecessor...
  // conservatively the planner keeps the whole filter unpushed.
  Table t = MustQuery(
      "SELECT value - LAG(value) AS d FROM tsdb "
      "WHERE metric_name = 'cpu' AND tag['host'] = 'h0' "
      "AND timestamp >= 0");
  ASSERT_EQ(t.num_rows(), static_cast<size_t>(kPoints));
  EXPECT_TRUE(t.At(0, 0).is_null());
  EXPECT_EQ(t.At(1, 0).AsDouble(), 1.0);
  // The scan saw the registered full range, not a narrowed hint window.
  EXPECT_EQ(store_->scan_stats().last_range, kFullRange);
}

TEST_F(PlannerTest, ProjectionPruningDropsUnusedColumns) {
  catalog_.RegisterTable("wide", [] {
    Schema s({{"a", DataType::kInt64},
              {"b", DataType::kInt64},
              {"c", DataType::kInt64},
              {"d", DataType::kInt64},
              {"e", DataType::kInt64}});
    Table t(s);
    for (int i = 0; i < 10; ++i) {
      t.AppendRow({Value::Int(i), Value::Int(i), Value::Int(i),
                   Value::Int(i), Value::Int(i)});
    }
    return t;
  }());
  Table t = MustQuery("SELECT a + b AS ab FROM wide WHERE c > 3");
  EXPECT_EQ(t.num_rows(), 6u);
  const OperatorStats* scan = FindOperator("Scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_NE(scan->detail.find("cols=3/5"), std::string::npos)
      << scan->detail;
}

TEST_F(PlannerTest, HashJoinBuildsOnSmallerSide) {
  Schema s({{"k", DataType::kInt64}});
  Table small(s), big(s);
  for (int i = 0; i < 3; ++i) small.AppendRow({Value::Int(i)});
  for (int i = 0; i < 50; ++i) big.AppendRow({Value::Int(i % 5)});
  catalog_.RegisterTable("small", std::move(small));
  catalog_.RegisterTable("big", std::move(big));

  // Small on the left: the planner should build (broadcast) the left.
  MustQuery("SELECT * FROM small JOIN big ON small.k = big.k");
  const OperatorStats* join = FindOperator("HashJoin");
  ASSERT_NE(join, nullptr);
  EXPECT_NE(join->detail.find("build=left"), std::string::npos)
      << join->detail;
  EXPECT_NE(join->detail.find("rows=3"), std::string::npos) << join->detail;

  // Small on the right: default right-side build already broadcasts it.
  MustQuery("SELECT * FROM big JOIN small ON small.k = big.k");
  join = FindOperator("HashJoin");
  ASSERT_NE(join, nullptr);
  EXPECT_NE(join->detail.find("build=right"), std::string::npos)
      << join->detail;
  EXPECT_NE(join->detail.find("rows=3"), std::string::npos) << join->detail;
  EXPECT_EQ(executor_->last_stats().hash_joins, 1u);
}

TEST_F(PlannerTest, NonEquiJoinPlansNestedLoop) {
  Schema s({{"v", DataType::kInt64}});
  Table ta(s), tb(s);
  ta.AppendRow({Value::Int(1)});
  ta.AppendRow({Value::Int(5)});
  tb.AppendRow({Value::Int(3)});
  catalog_.RegisterTable("na", std::move(ta));
  catalog_.RegisterTable("nb", std::move(tb));
  Table t = MustQuery("SELECT na.v, nb.v FROM na JOIN nb ON na.v < nb.v");
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(executor_->last_stats().nested_loop_joins, 1u);
  EXPECT_EQ(executor_->last_stats().hash_joins, 0u);
  EXPECT_NE(FindOperator("NestedLoopJoin"), nullptr);
}

TEST_F(PlannerTest, PerOperatorCountersReportRows) {
  Table t = MustQuery(
      "SELECT tag['host'] AS h, AVG(value) AS v FROM tsdb "
      "WHERE metric_name = 'cpu' GROUP BY tag['host']");
  EXPECT_EQ(t.num_rows(), 4u);
  const ExecStats& last = executor_->last_stats();
  EXPECT_EQ(last.rows_output, 4u);
  EXPECT_EQ(last.tables_scanned, 1u);
  // Pushdown restricted the scan to the cpu series.
  EXPECT_EQ(last.rows_scanned, 4u * kPoints);
  const OperatorStats* scan = FindOperator("Scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->rows_output, 4u * kPoints);
  EXPECT_GT(scan->batches_output, 0u);
  const OperatorStats* agg = FindOperator("HashAggregate");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->rows_output, 4u);
  EXPECT_NE(agg->detail.find("4 groups"), std::string::npos) << agg->detail;
}

TEST_F(PlannerTest, CumulativeVersusLastStats) {
  MustQuery("SELECT value FROM tsdb WHERE metric_name = 'cpu'");
  MustQuery("SELECT value FROM tsdb WHERE metric_name = 'mem'");
  EXPECT_EQ(executor_->last_stats().tables_scanned, 1u);
  EXPECT_EQ(executor_->stats().tables_scanned, 2u);
  EXPECT_EQ(executor_->stats().rows_output, 2u * 4u * kPoints);
}

TEST_F(PlannerTest, StreamingLimitStopsScanEarly) {
  Schema s({{"v", DataType::kInt64}});
  Table big(s);
  for (int i = 0; i < 5000; ++i) big.AppendRow({Value::Int(i)});
  catalog_.RegisterTable("big_limit", std::move(big));
  Table t = MustQuery("SELECT v FROM big_limit LIMIT 5");
  EXPECT_EQ(t.num_rows(), 5u);
  // 5000 rows are ~5 batches; LIMIT 5 must stop pulling after the first.
  const OperatorStats* scan = FindOperator("Scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->batches_output, 1u);
}

TEST_F(PlannerTest, MorselParallelScanMatchesSequential) {
  // Above the parallel threshold (64 series) the scan fans out across
  // the pool; results must be identical to the small sequential case in
  // per-series content and ordering.
  auto big_store = std::make_shared<tsdb::SeriesStore>();
  for (int i = 0; i < 200; ++i) {
    const tsdb::TagSet tags{{"host", "h" + std::to_string(i)}};
    for (int64_t p = 0; p < 10; ++p) {
      ASSERT_TRUE(big_store->Write("m", tags, p * 60, i * 1000.0 + p).ok());
    }
  }
  tsdb::ScanRequest req;
  req.range = TimeRange{0, 600};
  auto scan = big_store->Scan(req);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 200u);
  for (int i = 0; i < 200; ++i) {
    const auto& s = (*scan)[i];
    EXPECT_EQ(s.meta.tags.Get("host"), "h" + std::to_string(i));
    ASSERT_EQ(s.values.size(), 10u);
    EXPECT_EQ(s.values[3], i * 1000.0 + 3);
  }
}

TEST_F(PlannerTest, JoinPushdownNarrowsBothInputs) {
  // Two distinct stores behind two hinted providers: the WHERE conjuncts
  // qualified to each join input must narrow *that* store's scan window,
  // metric set and tag filter — not just single-table scans.
  auto left_store = std::make_shared<tsdb::SeriesStore>();
  auto right_store = std::make_shared<tsdb::SeriesStore>();
  for (int host = 0; host < 4; ++host) {
    const tsdb::TagSet tags{{"host", "h" + std::to_string(host)}};
    for (int64_t i = 0; i < kPoints; ++i) {
      ASSERT_TRUE(left_store->Write("cpu", tags, i * 60, host + 1.0).ok());
      ASSERT_TRUE(right_store->Write("mem", tags, i * 60, host + 2.0).ok());
    }
  }
  auto reg = [this](const char* name,
                    std::shared_ptr<tsdb::SeriesStore> store) {
    catalog_.RegisterHintedProvider(
        name,
        [store](const tsdb::ScanHints& hints) -> Result<table::Table> {
          tsdb::ScanRequest req;
          req.range = kFullRange;
          req.hints = hints;
          return store->ScanToTable(req);
        });
  };
  reg("tsdb_l", left_store);
  reg("tsdb_r", right_store);

  Table t = MustQuery(
      "SELECT l.timestamp, l.value, r.value FROM tsdb_l l "
      "JOIN tsdb_r r ON l.timestamp = r.timestamp "
      "AND l.tag['host'] = r.tag['host'] "
      "WHERE l.metric_name = 'cpu' AND l.tag['host'] = 'h1' "
      "AND l.timestamp >= 120 AND l.timestamp < 300 "
      "AND r.metric_name = 'mem' AND r.tag['host'] = 'h1' "
      "AND r.timestamp BETWEEN 120 AND 240");
  // Join window: l in [120, 300) ∩ r in [120, 241) -> minutes 2..4.
  EXPECT_EQ(t.num_rows(), 3u);

  // Both stores saw narrowed windows and a single matching series.
  const tsdb::ScanStats& ls = left_store->scan_stats();
  EXPECT_EQ(ls.last_range.start, 120);
  EXPECT_EQ(ls.last_range.end, 300);
  EXPECT_EQ(ls.last_metric_glob, "cpu");
  EXPECT_EQ(ls.series_matched, 1u);
  EXPECT_EQ(ls.points_returned, 3u);  // minutes 2,3,4 of one series

  const tsdb::ScanStats& rs = right_store->scan_stats();
  EXPECT_EQ(rs.last_range.start, 120);
  EXPECT_EQ(rs.last_range.end, 241);  // BETWEEN is inclusive
  EXPECT_EQ(rs.last_metric_glob, "mem");
  EXPECT_EQ(rs.series_matched, 1u);
  EXPECT_EQ(rs.points_returned, 3u);  // minutes 2,3,4
}

TEST_F(PlannerTest, JoinPushdownSkipsUnqualifiedAndForeignConjuncts) {
  // Unqualified conjuncts could bind to either side; conjuncts qualified
  // to the other input must not leak. Self-join over the fixture store:
  // only the r-qualified conjuncts may narrow the *second* scan (the
  // store records the most recent scan, which is the right input).
  Table t = MustQuery(
      "SELECT COUNT(*) AS n FROM tsdb l JOIN tsdb r "
      "ON l.timestamp = r.timestamp AND l.tag['host'] = r.tag['host'] "
      "WHERE l.metric_name = 'cpu' AND r.metric_name = 'mem' "
      "AND r.timestamp < 300");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0).AsInt(), 4 * 5);  // 4 hosts x minutes 0..4
  const tsdb::ScanStats& st = store_->scan_stats();
  EXPECT_EQ(st.last_metric_glob, "mem");
  EXPECT_EQ(st.last_range.start, kFullRange.start);
  EXPECT_EQ(st.last_range.end, 300);
  EXPECT_EQ(st.series_matched, 4u);  // the host conjunct joins, not filters
}

TEST_F(PlannerTest, ScanToTableHonoursProjectionHint) {
  // Columns the statement never references are not materialised by the
  // provider (the per-row tag maps dominate scan cost).
  Table t = MustQuery(
      "SELECT timestamp, value FROM tsdb WHERE metric_name = 'cpu'");
  EXPECT_EQ(t.num_rows(), 4u * kPoints);
  const OperatorStats* scan = FindOperator("Scan");
  ASSERT_NE(scan, nullptr);
  // The provider returned exactly the three referenced columns
  // (timestamp, metric_name, value) — no tag map.
  EXPECT_NE(scan->detail.find("cols=3/3"), std::string::npos)
      << scan->detail;

  // Referencing the tag column brings it back.
  Table t2 = MustQuery(
      "SELECT timestamp, value FROM tsdb "
      "WHERE metric_name = 'cpu' AND tag['host'] = 'h0'");
  EXPECT_EQ(t2.num_rows(), static_cast<size_t>(kPoints));
  scan = FindOperator("Scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_NE(scan->detail.find("cols=4/4"), std::string::npos)
      << scan->detail;
}

// ---------------------------------------------------------------------
// Rollup resolution hints: a GROUP BY whose grid is minute/hour-aligned
// and whose aggregates recombine exactly (SUM/MIN/MAX over bare `value`)
// lets the scan serve pre-aggregated rollup tiers. ExecStats counts such
// hinted scans; the store's ScanStats prove which tier actually served.
// ---------------------------------------------------------------------

TEST_F(PlannerTest, DateTruncGroupByDerivesRollupHint) {
  ASSERT_TRUE(store_->Flush().ok());  // seal so the minute tier exists
  store_->ResetScanStats();
  Table t = MustQuery(
      "SELECT DATE_TRUNC('minute', timestamp) AS m, SUM(value) AS s "
      "FROM tsdb WHERE metric_name = 'cpu' "
      "GROUP BY DATE_TRUNC('minute', timestamp) ORDER BY m");
  EXPECT_EQ(executor_->last_stats().rollup_hinted_scans, 1u);
  ASSERT_EQ(t.num_rows(), static_cast<size_t>(kPoints));
  // Minute i holds one point per host: sum = (0+100+200+300) + 4i.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(t.At(i, 0).AsInt(), static_cast<int64_t>(i) * 60);
    EXPECT_EQ(t.At(i, 1).AsDouble(), 600.0 + 4.0 * i);
  }
  // The sealed segments served from the minute tier: no raw decodes.
  const tsdb::ScanStats st = store_->scan_stats();
  EXPECT_GT(st.rollup_points_returned, 0u);
  EXPECT_EQ(st.segments_raw_fallback, 0u);
  EXPECT_EQ(st.points_decoded, 0u);
}

TEST_F(PlannerTest, ModuloGridDerivesRollupHint) {
  // The `ts - ts % k` grid idiom hints like DATE_TRUNC does.
  ASSERT_TRUE(store_->Flush().ok());
  Table t = MustQuery(
      "SELECT timestamp - timestamp % 3600 AS h, MAX(value) AS mx "
      "FROM tsdb WHERE metric_name = 'cpu' "
      "GROUP BY timestamp - timestamp % 3600 ORDER BY h");
  EXPECT_EQ(executor_->last_stats().rollup_hinted_scans, 1u);
  ASSERT_EQ(t.num_rows(), 2u);  // 100 minutes span two hours
  EXPECT_EQ(t.At(0, 1).AsDouble(), 359.0);  // host 3, minute 59
  EXPECT_EQ(t.At(1, 1).AsDouble(), 399.0);  // host 3, minute 99
}

TEST_F(PlannerTest, RollupHintedQueryMatchesMaterialisedBaseline) {
  // The rollup route is an optimisation, never an answer change: the
  // same aggregation over a plain materialised copy (which cannot take
  // hints) must produce identical rows.
  ASSERT_TRUE(store_->Flush().ok());
  tsdb::ScanRequest all;
  all.range = kFullRange;
  auto full = store_->ScanToTable(all);
  ASSERT_TRUE(full.ok());
  catalog_.RegisterTable("tsdb_mat", std::move(full).value());
  const std::string shape =
      "SELECT DATE_TRUNC('hour', timestamp) AS h, SUM(value) AS s FROM ";
  const std::string tail =
      " WHERE metric_name = 'mem' GROUP BY DATE_TRUNC('hour', timestamp) "
      "ORDER BY h";
  Table hinted = MustQuery(shape + "tsdb" + tail);
  EXPECT_EQ(executor_->last_stats().rollup_hinted_scans, 1u);
  Table plain = MustQuery(shape + "tsdb_mat" + tail);
  EXPECT_EQ(executor_->last_stats().rollup_hinted_scans, 0u);
  ASSERT_EQ(hinted.num_rows(), plain.num_rows());
  for (size_t r = 0; r < hinted.num_rows(); ++r) {
    EXPECT_EQ(hinted.At(r, 0).AsInt(), plain.At(r, 0).AsInt());
    EXPECT_EQ(hinted.At(r, 1).AsDouble(), plain.At(r, 1).AsDouble());
  }
  EXPECT_GT(hinted.num_rows(), 0u);
}

TEST_F(PlannerTest, AlignedTimeBoundsKeepRollupHint) {
  // [60, 180) is minute-aligned: whole buckets only, hint survives.
  Table t = MustQuery(
      "SELECT DATE_TRUNC('minute', timestamp) AS m, SUM(value) AS s "
      "FROM tsdb WHERE metric_name = 'cpu' "
      "AND timestamp >= 60 AND timestamp < 180 "
      "GROUP BY DATE_TRUNC('minute', timestamp)");
  EXPECT_EQ(executor_->last_stats().rollup_hinted_scans, 1u);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(PlannerTest, UnalignedTimeBoundRejectsRollupHint) {
  // ts >= 90 cuts minute-bucket 1 mid-way: a tier row for it would count
  // points the filter excludes, so no hint may be derived.
  Table t = MustQuery(
      "SELECT DATE_TRUNC('minute', timestamp) AS m, SUM(value) AS s "
      "FROM tsdb WHERE metric_name = 'cpu' AND timestamp >= 90 "
      "GROUP BY DATE_TRUNC('minute', timestamp)");
  EXPECT_EQ(executor_->last_stats().rollup_hinted_scans, 0u);
  // Points sit on minute marks, so ts >= 90 keeps minutes 2..99.
  EXPECT_EQ(t.num_rows(), static_cast<size_t>(kPoints) - 2);
}

TEST_F(PlannerTest, NonDecomposableAggregatesRejectRollupHint) {
  // AVG over mixed raw/rollup granularities does not recombine exactly —
  // no hint; the query still answers correctly from raw points.
  Table avg = MustQuery(
      "SELECT DATE_TRUNC('minute', timestamp) AS m, AVG(value) AS a "
      "FROM tsdb WHERE metric_name = 'cpu' "
      "GROUP BY DATE_TRUNC('minute', timestamp) ORDER BY m");
  EXPECT_EQ(executor_->last_stats().rollup_hinted_scans, 0u);
  ASSERT_EQ(avg.num_rows(), static_cast<size_t>(kPoints));
  EXPECT_EQ(avg.At(0, 1).AsDouble(), 150.0);  // (0+100+200+300)/4

  // Mixed aggregate kinds cannot share one rollup stream either.
  MustQuery(
      "SELECT DATE_TRUNC('minute', timestamp) AS m, SUM(value) AS s, "
      "MIN(value) AS lo FROM tsdb WHERE metric_name = 'cpu' "
      "GROUP BY DATE_TRUNC('minute', timestamp)");
  EXPECT_EQ(executor_->last_stats().rollup_hinted_scans, 0u);
}

TEST_F(PlannerTest, RawColumnReferencesRejectRollupHint) {
  // A bare `value` outside the aggregate (the HAVING-style filter below)
  // needs raw rows; serving rollups would change the answer.
  Table t = MustQuery(
      "SELECT DATE_TRUNC('minute', timestamp) AS m, SUM(value) AS s "
      "FROM tsdb WHERE metric_name = 'cpu' AND value >= 100 "
      "GROUP BY DATE_TRUNC('minute', timestamp)");
  EXPECT_EQ(executor_->last_stats().rollup_hinted_scans, 0u);

  // So does projecting the raw timestamp next to the grid.
  MustQuery(
      "SELECT timestamp, SUM(value) AS s FROM tsdb "
      "WHERE metric_name = 'cpu' GROUP BY timestamp");
  EXPECT_EQ(executor_->last_stats().rollup_hinted_scans, 0u);
}

TEST_F(PlannerTest, SubMinuteGridRejectsRollupHint) {
  // A 30s grid is finer than the finest maintained tier: no hint.
  MustQuery(
      "SELECT timestamp - timestamp % 30 AS b, SUM(value) AS s "
      "FROM tsdb WHERE metric_name = 'cpu' "
      "GROUP BY timestamp - timestamp % 30");
  EXPECT_EQ(executor_->last_stats().rollup_hinted_scans, 0u);
}

}  // namespace
}  // namespace explainit::sql
