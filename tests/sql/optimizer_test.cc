// Cost-based optimizer tests: golden plan shapes (ExecStats::plan_text),
// join reordering off statement order, partial-aggregate pushdown below
// joins (including the reduced-join-input acceptance check), COUNT rollup
// routing, live catalog estimates, and the fallbacks that must keep the
// statement-order plan byte-identical.
#include <gtest/gtest.h>

#include "sql/executor.h"
#include "sql/logical_plan.h"
#include "sql/planner.h"
#include "tsdb/store.h"

namespace explainit::sql {
namespace {

using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

constexpr int64_t kPoints = 100;  // per series, one per minute
const TimeRange kFullRange{0, kPoints * 60};

// A star join in worst-case statement order: both dimensions first
// (cross-joined), the 600-row fact table last. The planner should start
// from a dimension and join the fact table second.
const char kStarQuery[] =
    "SELECT d1.a AS a, SUM(f.v) AS s "
    "FROM d1 CROSS JOIN d2 JOIN fact f ON f.fk = d1.k AND f.dj = d2.j "
    "GROUP BY d1.a ORDER BY a";

// A fact-dimension join whose aggregates all read the fact side: the
// partial aggregate collapses 600 fact rows to 5 before the join.
const char kPushQuery[] =
    "SELECT d1.a AS a, SUM(f.v) AS s, COUNT(f.v) AS n, MIN(f.v) AS lo, "
    "MAX(f.v) AS hi, AVG(f.v) AS av "
    "FROM fact f JOIN d1 ON f.fk = d1.k GROUP BY d1.a ORDER BY a";

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    functions_ = FunctionRegistry::Builtins();
    store_ = std::make_shared<tsdb::SeriesStore>();
    for (int host = 0; host < 4; ++host) {
      const tsdb::TagSet tags{{"host", "h" + std::to_string(host)}};
      for (int64_t i = 0; i < kPoints; ++i) {
        ASSERT_TRUE(
            store_->Write("cpu", tags, i * 60, host * 100.0 + i).ok());
        ASSERT_TRUE(
            store_->Write("mem", tags, i * 60, host * 200.0 + i).ok());
      }
    }
    // Engine-style registration: hints forwarded verbatim, live row
    // estimate, count tiers usable (Engine::RegisterStoreTable mirrors
    // this).
    auto store = store_;
    HintedProviderOptions provider_options;
    provider_options.estimated_rows = [store] { return store->num_points(); };
    provider_options.exact_rollups = true;
    catalog_.RegisterHintedProvider(
        "tsdb",
        [store](const tsdb::ScanHints& hints) -> Result<table::Table> {
          tsdb::ScanRequest req;
          req.range = kFullRange;
          req.hints = hints;
          return store->ScanToTable(req);
        },
        provider_options);

    Table fact(Schema({{"fk", DataType::kInt64},
                       {"dj", DataType::kInt64},
                       {"v", DataType::kDouble}}));
    for (int64_t i = 0; i < 600; ++i) {
      fact.AppendRow({Value::Int(i % 5), Value::Int(i % 4),
                      Value::Double(static_cast<double>(i))});
    }
    catalog_.RegisterTable("fact", std::move(fact));

    Table d1(Schema({{"k", DataType::kInt64}, {"a", DataType::kString}}));
    for (int64_t k = 0; k < 5; ++k) {
      d1.AppendRow({Value::Int(k), Value::String("a" + std::to_string(k))});
    }
    catalog_.RegisterTable("d1", std::move(d1));

    Table d2(Schema({{"j", DataType::kInt64}, {"b", DataType::kString}}));
    for (int64_t j = 0; j < 4; ++j) {
      d2.AppendRow({Value::Int(j), Value::String("b" + std::to_string(j))});
    }
    catalog_.RegisterTable("d2", std::move(d2));

    executor_ = std::make_unique<Executor>(&catalog_, &functions_);
  }

  Table MustQuery(const std::string& q) {
    auto res = executor_->Query(q);
    EXPECT_TRUE(res.ok()) << q << " -> " << res.status().ToString();
    return res.ok() ? std::move(res).value() : Table{};
  }

  /// Runs `q` under `options`; returns the result table and leaves the
  /// per-query stats in executor_->last_stats().
  Table QueryWith(const PlannerOptions& options, const std::string& q) {
    executor_->set_optimizer(options);
    return MustQuery(q);
  }

  const OperatorStats* FindOperator(const std::string& name) {
    for (const OperatorStats& op : executor_->last_stats().operators) {
      if (op.name == name) return &op;
    }
    return nullptr;
  }

  static void ExpectSameTable(const Table& got, const Table& want) {
    ASSERT_EQ(got.num_rows(), want.num_rows());
    ASSERT_EQ(got.num_columns(), want.num_columns());
    for (size_t r = 0; r < got.num_rows(); ++r) {
      for (size_t c = 0; c < got.num_columns(); ++c) {
        EXPECT_EQ(got.At(r, c).ToString(), want.At(r, c).ToString())
            << "row " << r << " col " << c;
      }
    }
  }

  static PlannerOptions Off() {
    PlannerOptions off;
    off.enabled = false;
    return off;
  }

  std::shared_ptr<tsdb::SeriesStore> store_;
  Catalog catalog_;
  FunctionRegistry functions_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(OptimizerTest, OptimizerOffReproducesStatementOrderPlan) {
  Table t = QueryWith(Off(), kStarQuery);
  const ExecStats& st = executor_->last_stats();
  EXPECT_EQ(st.joins_reordered, 0u);
  EXPECT_EQ(st.agg_pushdowns, 0u);
  EXPECT_EQ(st.count_rollup_rewrites, 0u);
  ASSERT_FALSE(st.plan_text.empty());
  EXPECT_EQ(st.plan_text.find("[reordered]"), std::string::npos);
  EXPECT_EQ(st.plan_text.find("[partial below join]"), std::string::npos);
  // Leaves print in statement order: d1, d2, fact.
  const size_t p1 = st.plan_text.find("Scan d1");
  const size_t p2 = st.plan_text.find("Scan d2");
  const size_t pf = st.plan_text.find("Scan fact");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(pf, std::string::npos);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, pf);
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST_F(OptimizerTest, ReordersStarJoinOffStatementOrder) {
  PlannerOptions reorder_only;
  reorder_only.pushdown_aggregates = false;
  reorder_only.count_rollups = false;
  Table reordered = QueryWith(reorder_only, kStarQuery);
  const ExecStats st = executor_->last_stats();
  EXPECT_EQ(st.joins_reordered, 1u);
  EXPECT_NE(st.plan_text.find("[reordered]"), std::string::npos);
  // The planner starts from the small connected dimension and joins the
  // 600-row fact table into it, pushing d1 last: d2, fact, d1.
  const size_t p2 = st.plan_text.find("Scan d2");
  const size_t pf = st.plan_text.find("Scan fact");
  const size_t p1 = st.plan_text.find("Scan d1");
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(pf, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  EXPECT_LT(p2, pf);
  EXPECT_LT(pf, p1);

  Table baseline = QueryWith(Off(), kStarQuery);
  ExpectSameTable(reordered, baseline);
}

TEST_F(OptimizerTest, PushesAggregateBelowJoinAndShrinksJoinInput) {
  PlannerOptions pushdown_only;
  pushdown_only.reorder_joins = false;
  pushdown_only.count_rollups = false;
  Table pushed = QueryWith(pushdown_only, kPushQuery);
  const ExecStats st = executor_->last_stats();
  EXPECT_EQ(st.agg_pushdowns, 1u);
  EXPECT_NE(st.plan_text.find("[partial below join]"), std::string::npos);
  EXPECT_NE(st.plan_text.find("Subquery q=f"), std::string::npos);
  // Acceptance criterion: the partial aggregate collapses the 600 fact
  // rows to the 5 distinct join keys before they reach the join.
  const OperatorStats* join = FindOperator("HashJoin");
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->rows_output, 5u);

  Table baseline = QueryWith(Off(), kPushQuery);
  const OperatorStats* off_join = FindOperator("HashJoin");
  ASSERT_NE(off_join, nullptr);
  EXPECT_EQ(off_join->rows_output, 600u);
  ExpectSameTable(pushed, baseline);
}

TEST_F(OptimizerTest, ReorderAndPushdownCompose) {
  PlannerOptions all;  // defaults: everything on
  Table t = QueryWith(all, kStarQuery);
  const ExecStats st = executor_->last_stats();
  EXPECT_EQ(st.joins_reordered, 1u);
  EXPECT_EQ(st.agg_pushdowns, 1u);
  EXPECT_NE(st.plan_text.find("[reordered]"), std::string::npos);
  EXPECT_NE(st.plan_text.find("[partial below join]"), std::string::npos);
  ExpectSameTable(t, QueryWith(Off(), kStarQuery));
}

TEST_F(OptimizerTest, CountRollupServesCountTierOnSealedSegments) {
  ASSERT_TRUE(store_->Flush().ok());  // seal so the minute tier exists
  store_->ResetScanStats();
  const std::string q =
      "SELECT DATE_TRUNC('minute', timestamp) AS m, COUNT(*) AS n "
      "FROM tsdb WHERE metric_name = 'cpu' "
      "GROUP BY DATE_TRUNC('minute', timestamp) ORDER BY m";
  Table t = QueryWith(PlannerOptions{}, q);
  const ExecStats st = executor_->last_stats();
  EXPECT_EQ(st.count_rollup_rewrites, 1u);
  EXPECT_EQ(st.rollup_hinted_scans, 1u);
  EXPECT_NE(st.plan_text.find("rollup=count@60"), std::string::npos);
  // Sealed segments serve per-bucket point counts; nothing raw decodes.
  EXPECT_EQ(store_->scan_stats().points_decoded, 0u);
  ASSERT_EQ(t.num_rows(), static_cast<size_t>(kPoints));
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(t.At(i, 1).type(), DataType::kInt64);  // COUNT stays integral
    EXPECT_EQ(t.At(i, 1).AsInt(), 4);                // one point per host
  }

  // Identical to the unrewritten plan and to a materialised copy that
  // cannot take hints at all.
  Table unrewritten = QueryWith(Off(), q);
  EXPECT_EQ(executor_->last_stats().count_rollup_rewrites, 0u);
  ExpectSameTable(t, unrewritten);
  tsdb::ScanRequest all;
  all.range = kFullRange;
  auto full = store_->ScanToTable(all);
  ASSERT_TRUE(full.ok());
  catalog_.RegisterTable("tsdb_mat", std::move(full).value());
  const std::string mat_q =
      "SELECT DATE_TRUNC('minute', timestamp) AS m, COUNT(*) AS n "
      "FROM tsdb_mat WHERE metric_name = 'cpu' "
      "GROUP BY DATE_TRUNC('minute', timestamp) ORDER BY m";
  ExpectSameTable(t, QueryWith(PlannerOptions{}, mat_q));
}

TEST_F(OptimizerTest, CountRollupMutableHeadFallsBackToRawCorrectly) {
  // No Flush: every series still sits in its mutable head, so the count
  // hint is served by raw decodes with value = 1.0 substituted per point.
  store_->ResetScanStats();
  Table t = QueryWith(
      PlannerOptions{},
      "SELECT DATE_TRUNC('minute', timestamp) AS m, COUNT(value) AS n "
      "FROM tsdb WHERE metric_name = 'mem' "
      "GROUP BY DATE_TRUNC('minute', timestamp) ORDER BY m");
  EXPECT_EQ(executor_->last_stats().count_rollup_rewrites, 1u);
  EXPECT_GT(store_->scan_stats().points_decoded, 0u);
  ASSERT_EQ(t.num_rows(), static_cast<size_t>(kPoints));
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(t.At(i, 1).AsInt(), 4);
  }
}

TEST_F(OptimizerTest, EstimatedRowsAreLiveForStoreBackedTables) {
  // Materialised tables report exact counts; provider-backed tables go
  // through the live estimator on every call.
  EXPECT_EQ(catalog_.EstimatedRows("fact"), std::optional<size_t>(600));
  EXPECT_EQ(catalog_.EstimatedRows("tsdb"),
            std::optional<size_t>(store_->num_points()));
  const size_t before = *catalog_.EstimatedRows("tsdb");
  ASSERT_TRUE(store_->Write("cpu", tsdb::TagSet{{"host", "h9"}}, 0, 1.0).ok());
  EXPECT_EQ(*catalog_.EstimatedRows("tsdb"), before + 1);
  EXPECT_TRUE(catalog_.SupportsExactRollups("tsdb"));
  EXPECT_FALSE(catalog_.SupportsExactRollups("fact"));
}

TEST_F(OptimizerTest, OuterJoinsKeepStatementOrder) {
  Table t = QueryWith(
      PlannerOptions{},
      "SELECT d1.a AS a, SUM(f.v) AS s "
      "FROM d1 CROSS JOIN d2 LEFT JOIN fact f ON f.fk = d1.k AND f.dj = d2.j "
      "GROUP BY d1.a ORDER BY a");
  EXPECT_EQ(executor_->last_stats().joins_reordered, 0u);
  EXPECT_EQ(executor_->last_stats().agg_pushdowns, 0u);
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST_F(OptimizerTest, LimitWithoutOrderByKeepsStatementOrder) {
  Table t = QueryWith(
      PlannerOptions{},
      "SELECT d1.a AS a, SUM(f.v) AS s "
      "FROM d1 CROSS JOIN d2 JOIN fact f ON f.fk = d1.k AND f.dj = d2.j "
      "GROUP BY d1.a LIMIT 3");
  EXPECT_EQ(executor_->last_stats().joins_reordered, 0u);
  EXPECT_EQ(executor_->last_stats().agg_pushdowns, 0u);
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(OptimizerTest, UnqualifiedReferencesKeepStatementOrder) {
  // `a` binds positionally in the evaluator; rewrites must not move it.
  Table t = QueryWith(
      PlannerOptions{},
      "SELECT a, SUM(f.v) AS s "
      "FROM d1 CROSS JOIN d2 JOIN fact f ON f.fk = d1.k AND f.dj = d2.j "
      "GROUP BY a");
  EXPECT_EQ(executor_->last_stats().joins_reordered, 0u);
  EXPECT_EQ(executor_->last_stats().agg_pushdowns, 0u);
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST_F(OptimizerTest, RepresentativeRowItemsKeepStatementOrder) {
  // d2.b is not in GROUP BY: its value depends on which row represents
  // each group, so any plan rewrite could change the answer.
  Table t = QueryWith(
      PlannerOptions{},
      "SELECT d2.b AS b, SUM(f.v) AS s "
      "FROM d1 CROSS JOIN d2 JOIN fact f ON f.fk = d1.k AND f.dj = d2.j "
      "GROUP BY d1.a ORDER BY s");
  EXPECT_EQ(executor_->last_stats().joins_reordered, 0u);
  EXPECT_EQ(executor_->last_stats().agg_pushdowns, 0u);
  EXPECT_EQ(t.num_rows(), 5u);
}

}  // namespace
}  // namespace explainit::sql
