#include "sql/executor.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "tsdb/store.h"

namespace explainit::sql {
namespace {

using table::DataType;
using table::Field;
using table::Schema;
using table::Table;
using table::Value;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    functions_ = FunctionRegistry::Builtins();

    // A small metrics table mirroring the tsdb scan shape.
    Schema metric_schema({{"timestamp", DataType::kTimestamp},
                          {"metric_name", DataType::kString},
                          {"tag", DataType::kMap},
                          {"value", DataType::kDouble}});
    Table metrics(metric_schema);
    auto add = [&](int64_t ts, const std::string& name,
                   const std::string& pipeline, double v) {
      table::ValueMap m;
      m["pipeline_name"] = Value::String(pipeline);
      metrics.AppendRow({Value::Timestamp(ts), Value::String(name),
                         Value::Map(m), Value::Double(v)});
    };
    add(0, "pipeline_runtime", "p1", 10);
    add(0, "pipeline_runtime", "p2", 20);
    add(60, "pipeline_runtime", "p1", 12);
    add(60, "pipeline_runtime", "p2", 22);
    add(120, "pipeline_runtime", "p1", 14);
    add(0, "pipeline_input_rate", "p1", 100);
    add(60, "pipeline_input_rate", "p1", 110);
    catalog_.RegisterTable("tsdb", std::move(metrics));

    // Process table for the Listing 3 shape.
    Schema proc_schema({{"timestamp", DataType::kTimestamp},
                        {"hostname", DataType::kString},
                        {"service_name", DataType::kString},
                        {"stime", DataType::kDouble},
                        {"utime", DataType::kDouble}});
    Table procs(proc_schema);
    auto addp = [&](int64_t ts, const std::string& host,
                    const std::string& svc, double s, double u) {
      procs.AppendRow({Value::Timestamp(ts), Value::String(host),
                       Value::String(svc), Value::Double(s),
                       Value::Double(u)});
    };
    addp(0, "web-1", "nginx", 1, 2);
    addp(0, "web-2", "nginx", 2, 3);
    addp(0, "db-1", "postgres", 5, 5);
    addp(0, "gpu-1", "trainer", 9, 9);
    catalog_.RegisterTable("processes", std::move(procs));

    executor_ = std::make_unique<Executor>(&catalog_, &functions_);
  }

  Table MustQuery(const std::string& q) {
    auto res = executor_->Query(q);
    EXPECT_TRUE(res.ok()) << q << " -> " << res.status().ToString();
    return res.ok() ? std::move(res).value() : Table{};
  }

  Catalog catalog_;
  FunctionRegistry functions_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, SelectConstantNoFrom) {
  Table t = MustQuery("SELECT 1 + 2 AS three");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0).AsDouble(), 3.0);
  EXPECT_EQ(t.schema().field(0).name, "three");
}

TEST_F(ExecutorTest, SelectStar) {
  Table t = MustQuery("SELECT * FROM processes");
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_columns(), 5u);
}

TEST_F(ExecutorTest, WhereFilter) {
  Table t = MustQuery(
      "SELECT value FROM tsdb WHERE metric_name = 'pipeline_input_rate'");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.At(0, 0).AsDouble(), 100.0);
}

TEST_F(ExecutorTest, MapSubscriptProjection) {
  Table t = MustQuery(
      "SELECT tag['pipeline_name'] AS p FROM tsdb WHERE value = 14");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0).AsString(), "p1");
}

TEST_F(ExecutorTest, PaperListing1TargetQuery) {
  Table t = MustQuery(R"(
      SELECT timestamp, tag['pipeline_name'] AS pipeline_name,
             AVG(value) as runtime_sec
      FROM tsdb
      WHERE metric_name = 'pipeline_runtime'
        AND timestamp BETWEEN 0 AND 120
      GROUP BY timestamp, tag['pipeline_name']
      ORDER BY timestamp ASC)");
  ASSERT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.schema().field(2).name, "runtime_sec");
  // First two rows are timestamp 0 (p1, p2 insertion order).
  EXPECT_EQ(t.At(0, 0).AsTimestamp(), 0);
  EXPECT_EQ(t.At(0, 2).AsDouble(), 10.0);
  EXPECT_EQ(t.At(4, 0).AsTimestamp(), 120);
}

TEST_F(ExecutorTest, GroupByWithSplitAndIn) {
  Table t = MustQuery(R"(
      SELECT SPLIT(hostname, '-')[0] AS grp, AVG(stime + utime) AS cpu
      FROM processes
      WHERE SPLIT(hostname, '-')[0] IN ('web', 'db')
      GROUP BY SPLIT(hostname, '-')[0]
      ORDER BY grp ASC)");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.At(0, 0).AsString(), "db");
  EXPECT_EQ(t.At(0, 1).AsDouble(), 10.0);
  EXPECT_EQ(t.At(1, 0).AsString(), "web");
  EXPECT_EQ(t.At(1, 1).AsDouble(), 4.0);  // (3 + 5) / 2
}

TEST_F(ExecutorTest, GlobalAggregatesWithoutGroupBy) {
  Table t = MustQuery(
      "SELECT COUNT(*) AS n, MIN(value) AS lo, MAX(value) AS hi, "
      "SUM(value) AS total FROM tsdb");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0).AsInt(), 7);
  EXPECT_EQ(t.At(0, 1).AsDouble(), 10.0);
  EXPECT_EQ(t.At(0, 2).AsDouble(), 110.0);
  EXPECT_EQ(t.At(0, 3).AsDouble(), 288.0);
}

TEST_F(ExecutorTest, AggregateArithmetic) {
  Table t = MustQuery(
      "SELECT MAX(value) - MIN(value) AS spread FROM tsdb "
      "WHERE metric_name = 'pipeline_runtime'");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0).AsDouble(), 12.0);  // 22 - 10
}

TEST_F(ExecutorTest, PercentileAggregate) {
  Table t = MustQuery(
      "SELECT PERCENTILE(value, 50) AS p50 FROM tsdb "
      "WHERE metric_name = 'pipeline_runtime'");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0).AsDouble(), 14.0);  // median of 10,12,14,20,22
}

TEST_F(ExecutorTest, StddevAggregate) {
  Table t = MustQuery(
      "SELECT STDDEV(stime) AS sd FROM processes WHERE hostname LIKE 'web%'");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_NEAR(t.At(0, 0).AsDouble(), 0.5, 1e-12);
}

TEST_F(ExecutorTest, HavingFiltersGroups) {
  Table t = MustQuery(R"(
      SELECT tag['pipeline_name'] AS p, COUNT(*) AS n
      FROM tsdb WHERE metric_name = 'pipeline_runtime'
      GROUP BY tag['pipeline_name']
      HAVING COUNT(*) > 2)");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0).AsString(), "p1");
}

TEST_F(ExecutorTest, OrderByDescAndLimit) {
  Table t = MustQuery(
      "SELECT value FROM tsdb ORDER BY value DESC LIMIT 2");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.At(0, 0).AsDouble(), 110.0);
  EXPECT_EQ(t.At(1, 0).AsDouble(), 100.0);
}

TEST_F(ExecutorTest, OrderByUnprojectedColumn) {
  // ORDER BY references a column not in the select list.
  Table t = MustQuery(
      "SELECT metric_name FROM tsdb ORDER BY value DESC LIMIT 1");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0).AsString(), "pipeline_input_rate");
}

TEST_F(ExecutorTest, InnerJoinOnTimestamp) {
  // Join runtimes with input rates per timestamp.
  catalog_.RegisterTable(
      "runtimes",
      MustQuery("SELECT timestamp, AVG(value) AS runtime FROM tsdb "
                "WHERE metric_name = 'pipeline_runtime' GROUP BY timestamp"));
  catalog_.RegisterTable(
      "rates",
      MustQuery("SELECT timestamp, AVG(value) AS rate FROM tsdb "
                "WHERE metric_name = 'pipeline_input_rate' GROUP BY "
                "timestamp"));
  Table t = MustQuery(R"(
      SELECT r.timestamp, r.runtime, i.rate
      FROM runtimes r JOIN rates i ON r.timestamp = i.timestamp
      ORDER BY r.timestamp ASC)");
  ASSERT_EQ(t.num_rows(), 2u);  // rates only exist at ts 0, 60
  EXPECT_EQ(t.At(0, 1).AsDouble(), 15.0);
  EXPECT_EQ(t.At(0, 2).AsDouble(), 100.0);
}

TEST_F(ExecutorTest, FullOuterJoinPadsBothSides) {
  Schema sa({{"k", DataType::kInt64}, {"a", DataType::kString}});
  Table ta(sa);
  ta.AppendRow({Value::Int(1), Value::String("a1")});
  ta.AppendRow({Value::Int(2), Value::String("a2")});
  catalog_.RegisterTable("ta", std::move(ta));
  Schema sb({{"k", DataType::kInt64}, {"b", DataType::kString}});
  Table tb(sb);
  tb.AppendRow({Value::Int(2), Value::String("b2")});
  tb.AppendRow({Value::Int(3), Value::String("b3")});
  catalog_.RegisterTable("tb", std::move(tb));
  Table t = MustQuery(R"(
      SELECT ta.k, a, b FROM ta FULL OUTER JOIN tb ON ta.k = tb.k
      ORDER BY ta.k ASC)");
  ASSERT_EQ(t.num_rows(), 3u);
  // Unmatched right row has null left key and sorts first.
  EXPECT_TRUE(t.At(0, 0).is_null());
  EXPECT_EQ(t.At(0, 2).AsString(), "b3");
  EXPECT_EQ(t.At(1, 1).AsString(), "a1");
  EXPECT_TRUE(t.At(1, 2).is_null());
  EXPECT_EQ(t.At(2, 1).AsString(), "a2");
  EXPECT_EQ(t.At(2, 2).AsString(), "b2");
}

TEST_F(ExecutorTest, LeftJoinKeepsUnmatchedLeft) {
  Schema sa({{"k", DataType::kInt64}});
  Table ta(sa);
  ta.AppendRow({Value::Int(1)});
  ta.AppendRow({Value::Int(2)});
  catalog_.RegisterTable("la", std::move(ta));
  Schema sb({{"k2", DataType::kInt64}});
  Table tb(sb);
  tb.AppendRow({Value::Int(2)});
  catalog_.RegisterTable("lb", std::move(tb));
  Table t = MustQuery(
      "SELECT k, k2 FROM la LEFT JOIN lb ON k = k2 ORDER BY k ASC");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(t.At(0, 1).is_null());
  EXPECT_EQ(t.At(1, 1).AsInt(), 2);
}

TEST_F(ExecutorTest, CrossJoin) {
  Schema s({{"v", DataType::kInt64}});
  Table ta(s), tb(s);
  ta.AppendRow({Value::Int(1)});
  ta.AppendRow({Value::Int(2)});
  tb.AppendRow({Value::Int(10)});
  tb.AppendRow({Value::Int(20)});
  catalog_.RegisterTable("ca", std::move(ta));
  catalog_.RegisterTable("cb", std::move(tb));
  Table t = MustQuery("SELECT * FROM ca CROSS JOIN cb");
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(ExecutorTest, NonEquiJoinFallsBackToNestedLoop) {
  Schema s({{"v", DataType::kInt64}});
  Table ta(s), tb(s);
  ta.AppendRow({Value::Int(1)});
  ta.AppendRow({Value::Int(5)});
  tb.AppendRow({Value::Int(3)});
  catalog_.RegisterTable("na", std::move(ta));
  catalog_.RegisterTable("nb", std::move(tb));
  executor_->ResetStats();
  Table t = MustQuery(
      "SELECT na.v, nb.v FROM na JOIN nb ON na.v < nb.v");
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(executor_->stats().nested_loop_joins, 1u);
  EXPECT_EQ(executor_->stats().hash_joins, 0u);
}

TEST_F(ExecutorTest, EquiJoinUsesHashJoin) {
  executor_->ResetStats();
  MustQuery(
      "SELECT * FROM processes a JOIN processes b ON a.hostname = "
      "b.hostname");
  EXPECT_EQ(executor_->stats().hash_joins, 1u);
}

TEST_F(ExecutorTest, UnionAllStacksRows) {
  Table t = MustQuery(
      "SELECT value FROM tsdb WHERE value = 10 "
      "UNION ALL SELECT value FROM tsdb WHERE value = 20");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(ExecutorTest, SubqueryInFrom) {
  Table t = MustQuery(R"(
      SELECT grp, cpu FROM (
        SELECT SPLIT(hostname, '-')[0] AS grp, stime + utime AS cpu
        FROM processes
      ) sub
      WHERE cpu > 5 ORDER BY cpu DESC)");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.At(0, 0).AsString(), "gpu");
}

TEST_F(ExecutorTest, LagFunction) {
  Table t = MustQuery(
      "SELECT value - LAG(value) AS diff FROM tsdb "
      "WHERE metric_name = 'pipeline_input_rate'");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(t.At(0, 0).is_null());  // no previous row
  EXPECT_EQ(t.At(1, 0).AsDouble(), 10.0);
}

TEST_F(ExecutorTest, CaseExpression) {
  Table t = MustQuery(R"(
      SELECT CASE WHEN value >= 100 THEN 'rate' ELSE 'runtime' END AS kind,
             COUNT(*) AS n
      FROM tsdb GROUP BY CASE WHEN value >= 100 THEN 'rate' ELSE 'runtime' END
      ORDER BY kind ASC)");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.At(0, 0).AsString(), "rate");
  EXPECT_EQ(t.At(0, 1).AsInt(), 2);
  EXPECT_EQ(t.At(1, 1).AsInt(), 5);
}

TEST_F(ExecutorTest, HostgroupUdf) {
  Table t = MustQuery(
      "SELECT HOSTGROUP(hostname) AS g FROM processes WHERE hostname = "
      "'web-1'");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0).AsString(), "web");
}

TEST_F(ExecutorTest, CustomUdfRegistration) {
  functions_.Register("DOUBLE_IT", [](const std::vector<Value>& args)
                                       -> Result<Value> {
    return Value::Double(args[0].AsDouble() * 2.0);
  });
  Table t = MustQuery("SELECT DOUBLE_IT(21) AS v");
  EXPECT_EQ(t.At(0, 0).AsDouble(), 42.0);
}

TEST_F(ExecutorTest, UnknownTableFails) {
  auto res = executor_->Query("SELECT * FROM missing");
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsNotFound());
}

TEST_F(ExecutorTest, UnknownColumnFails) {
  auto res = executor_->Query("SELECT nope FROM tsdb");
  EXPECT_FALSE(res.ok());
}

TEST_F(ExecutorTest, UnknownFunctionFails) {
  auto res = executor_->Query("SELECT WAT(1) FROM tsdb");
  EXPECT_FALSE(res.ok());
}

TEST_F(ExecutorTest, DivisionByZeroYieldsNull) {
  Table t = MustQuery("SELECT 1 / 0 AS v");
  EXPECT_TRUE(t.At(0, 0).is_null());
}

TEST_F(ExecutorTest, TsdbScanProviderIntegration) {
  // End-to-end: a tsdb SeriesStore exposed as a lazily scanned table.
  auto store = std::make_shared<tsdb::SeriesStore>();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store
                    ->Write("disk", tsdb::TagSet{{"host", "dn-1"}}, i * 60,
                            static_cast<double>(i))
                    .ok());
  }
  catalog_.RegisterProvider("disk_scan",
                            [store]() -> Result<table::Table> {
                              tsdb::ScanRequest req;
                              req.metric_glob = "disk";
                              req.range = {0, 600};
                              return store->ScanToTable(req);
                            });
  Table t = MustQuery(
      "SELECT AVG(value) AS avg_v, tag['host'] AS host FROM disk_scan "
      "GROUP BY tag['host']");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0).AsDouble(), 2.0);
  EXPECT_EQ(t.At(0, 1).AsString(), "dn-1");
}

}  // namespace
}  // namespace explainit::sql
