// Logical-plan IR tests: the plan printer (the golden strings the
// optimizer suite also leans on), statement cloning, normalised
// expression identity, and the shape of the cost model.
#include "sql/logical_plan.h"

#include <gtest/gtest.h>

#include "sql/cost.h"
#include "sql/parser.h"

namespace explainit::sql {
namespace {

using table::Value;

std::unique_ptr<SelectStatement> MustParse(const std::string& sql) {
  auto res = Parse(sql);
  EXPECT_TRUE(res.ok()) << sql << " -> " << res.status().ToString();
  return res.ok() ? std::move(*res) : nullptr;
}

TEST(LogicalPlanPrinter, ScanLineShowsHintsAndEstimate) {
  LogicalPlan plan;
  auto scan = std::make_unique<LogicalNode>(LogicalOp::kScan);
  scan->table_name = "tsdb";
  scan->qualifier = "f";
  scan->projection = std::vector<std::string>{"timestamp", "value"};
  scan->hints.range = TimeRange{0, 3600};
  scan->hints.metric_glob = "cpu";
  scan->hints.tag_filter.Set("host", "h0");
  scan->hints.min_step_seconds = 60;
  scan->hints.rollup = tsdb::RollupAggregate::kCount;
  scan->est_rows = 1234.4;
  plan.root = std::move(scan);
  EXPECT_EQ(plan.ToString(),
            "Scan tsdb q=f cols=2 range metric='cpu' tags=1 "
            "rollup=count@60 rows~1234\n");
}

TEST(LogicalPlanPrinter, TreeIndentsChildrenAndMarksRewrites) {
  auto stmt = MustParse(
      "SELECT d.g AS g, SUM(f.v) AS s FROM fact f JOIN d ON f.k = d.k "
      "GROUP BY d.g ORDER BY g");
  ASSERT_NE(stmt, nullptr);

  LogicalPlan plan;
  auto left = std::make_unique<LogicalNode>(LogicalOp::kSubquery);
  left->qualifier = "f";
  left->partial = true;
  auto right = std::make_unique<LogicalNode>(LogicalOp::kScan);
  right->table_name = "d";
  right->qualifier = "d";
  right->est_rows = 10;
  auto join = std::make_unique<LogicalNode>(LogicalOp::kJoin);
  join->join = &stmt->joins[0];
  join->equi = true;
  join->build_left = true;
  join->reordered = true;
  join->children.push_back(std::move(left));
  join->children.push_back(std::move(right));
  auto agg = std::make_unique<LogicalNode>(LogicalOp::kAggregate);
  agg->stmt = stmt.get();
  agg->children.push_back(std::move(join));
  auto sort = std::make_unique<LogicalNode>(LogicalOp::kSortLimit);
  sort->stmt = stmt.get();
  sort->aggregated = true;
  sort->children.push_back(std::move(agg));
  plan.root = std::move(sort);

  EXPECT_EQ(plan.ToString(),
            "SortLimit keys=1\n"
            "  Aggregate group_by=[d.g]\n"
            "    HashJoin inner on (f.k = d.k) build=left [reordered]\n"
            "      Subquery q=f [partial below join]\n"
            "      Scan d q=d rows~10\n");
}

TEST(LogicalPlanPrinter, UnionFilterAndSingleRowShapes) {
  LogicalPlan plan;
  auto row = std::make_unique<LogicalNode>(LogicalOp::kSingleRow);
  auto filter = std::make_unique<LogicalNode>(LogicalOp::kFilter);
  filter->predicate = plan.AddExpr(MakeBinary(
      BinaryOp::kGt, MakeColumnRef("", "v"), MakeLiteral(Value::Int(3))));
  filter->children.push_back(std::move(row));
  auto uni = std::make_unique<LogicalNode>(LogicalOp::kUnion);
  uni->children.push_back(std::move(filter));
  uni->children.push_back(std::make_unique<LogicalNode>(LogicalOp::kSingleRow));
  plan.root = std::move(uni);
  EXPECT_EQ(plan.ToString(),
            "UnionAll branches=2\n"
            "  Filter (v > 3)\n"
            "    SingleRow\n"
            "  SingleRow\n");
}

TEST(LogicalPlanClone, CloneSelectIsDeepAndComplete) {
  auto stmt = MustParse(
      "SELECT a.x AS x, COUNT(*) AS n FROM ta a "
      "JOIN tb b ON a.k = b.k LEFT JOIN tc c ON b.j = c.j "
      "WHERE a.x > 1 GROUP BY a.x HAVING COUNT(*) > 2 "
      "ORDER BY x DESC LIMIT 7");
  ASSERT_NE(stmt, nullptr);
  auto clone = CloneSelect(*stmt);

  ASSERT_EQ(clone->items.size(), 2u);
  EXPECT_EQ(clone->items[0].alias, "x");
  EXPECT_EQ(clone->items[0].expr->ToString(), stmt->items[0].expr->ToString());
  EXPECT_NE(clone->items[0].expr.get(), stmt->items[0].expr.get());
  ASSERT_TRUE(clone->from.has_value());
  EXPECT_EQ(clone->from->table_name, "ta");
  EXPECT_EQ(clone->from->alias, "a");
  ASSERT_EQ(clone->joins.size(), 2u);
  EXPECT_EQ(clone->joins[1].type, JoinType::kLeft);
  EXPECT_EQ(clone->joins[0].condition->ToString(),
            stmt->joins[0].condition->ToString());
  ASSERT_NE(clone->where, nullptr);
  EXPECT_EQ(clone->where->ToString(), stmt->where->ToString());
  ASSERT_EQ(clone->group_by.size(), 1u);
  ASSERT_NE(clone->having, nullptr);
  ASSERT_EQ(clone->order_by.size(), 1u);
  EXPECT_FALSE(clone->order_by[0].ascending);
  ASSERT_TRUE(clone->limit.has_value());
  EXPECT_EQ(*clone->limit, 7);
}

TEST(LogicalPlanClone, UnionContinuationsAreNotCloned) {
  auto stmt = MustParse("SELECT 1 AS a UNION ALL SELECT 2 AS a");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->union_all.size(), 1u);
  auto clone = CloneSelect(*stmt);
  EXPECT_TRUE(clone->union_all.empty());
}

TEST(NormalizedText, LowercasesReferencesButNotLiterals) {
  ExprPtr a = MakeBinary(BinaryOp::kEq, MakeColumnRef("F", "Host"),
                         MakeLiteral(Value::String("H0")));
  ExprPtr b = MakeBinary(BinaryOp::kEq, MakeColumnRef("f", "host"),
                         MakeLiteral(Value::String("H0")));
  ExprPtr c = MakeBinary(BinaryOp::kEq, MakeColumnRef("f", "host"),
                         MakeLiteral(Value::String("h0")));
  EXPECT_EQ(NormalizedExprText(*a), NormalizedExprText(*b));
  EXPECT_NE(NormalizedExprText(*a), NormalizedExprText(*c));
}

TEST(CostModel, ClampAndDefaults) {
  EXPECT_EQ(cost::ClampRows(0.0), 1.0);
  EXPECT_EQ(cost::ClampRows(50.0), 50.0);
  EXPECT_EQ(cost::KnownOrDefault(cost::kUnknownRows), cost::kDefaultRows);
  EXPECT_EQ(cost::KnownOrDefault(7.0), 7.0);
}

TEST(CostModel, ScanSelectivityShrinksWithHints) {
  tsdb::ScanHints none;
  tsdb::ScanHints narrowed;
  narrowed.range = TimeRange{0, 60};
  narrowed.metric_glob = "cpu";
  narrowed.tag_filter.Set("host", "h0");
  EXPECT_EQ(cost::ScanSelectivity(none), 1.0);
  EXPECT_LT(cost::ScanSelectivity(narrowed), cost::ScanSelectivity(none));
  tsdb::ScanHints rolled = narrowed;
  rolled.min_step_seconds = 60;
  rolled.rollup = tsdb::RollupAggregate::kSum;
  EXPECT_LT(cost::ScanSelectivity(rolled), cost::ScanSelectivity(narrowed));
}

TEST(CostModel, JoinOutputFavoursEqualities) {
  const double cross = cost::JoinOutputRows(100.0, 1000.0, 0);
  const double one_eq = cost::JoinOutputRows(100.0, 1000.0, 1);
  EXPECT_EQ(cross, 100000.0);
  EXPECT_EQ(one_eq, 100.0);
  EXPECT_GE(cost::JoinOutputRows(100.0, 1000.0, 5), 1.0);  // clamped
  EXPECT_GT(cost::JoinStepCost(100.0, 1000.0, 100.0), 1000.0);
}

TEST(CostModel, UnknownPropagatesThroughUnaryStages) {
  EXPECT_EQ(cost::AggregateOutputRows(cost::kUnknownRows), cost::kUnknownRows);
  EXPECT_EQ(cost::FilterOutputRows(cost::kUnknownRows), cost::kUnknownRows);
  EXPECT_EQ(cost::AggregateOutputRows(100.0), 10.0);
  EXPECT_EQ(cost::FilterOutputRows(100.0), 50.0);
}

}  // namespace
}  // namespace explainit::sql
