#include "core/ranking.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/random.h"
#include "core/eval_metrics.h"
#include "exec/cancel.h"
#include "exec/worker_pool.h"

namespace explainit::core {
namespace {

// A tiny world: Y is driven by "cause"; "effect" is driven by Y; the rest
// are noise families.
struct World {
  FeatureFamily target;
  std::vector<FeatureFamily> candidates;
};

World MakeWorld(size_t t, size_t noise_families, uint64_t seed) {
  Rng rng(seed);
  World w;
  std::vector<EpochSeconds> grid(t);
  for (size_t i = 0; i < t; ++i) grid[i] = static_cast<int64_t>(i) * 60;

  FeatureFamily cause;
  cause.name = "cause";
  cause.feature_names = {"cause/f0"};
  cause.timestamps = grid;
  cause.data = la::Matrix(t, 1);
  for (size_t i = 0; i < t; ++i) cause.data(i, 0) = rng.Normal();

  w.target.name = "runtime";
  w.target.feature_names = {"runtime/f0"};
  w.target.timestamps = grid;
  w.target.data = la::Matrix(t, 1);
  for (size_t i = 0; i < t; ++i) {
    w.target.data(i, 0) = 2.0 * cause.data(i, 0) + rng.Normal() * 0.3;
  }

  FeatureFamily effect;
  effect.name = "effect";
  effect.feature_names = {"effect/f0"};
  effect.timestamps = grid;
  effect.data = la::Matrix(t, 1);
  for (size_t i = 0; i < t; ++i) {
    effect.data(i, 0) = w.target.data(i, 0) * 0.9 + rng.Normal() * 0.8;
  }

  w.candidates.push_back(std::move(cause));
  w.candidates.push_back(std::move(effect));
  for (size_t k = 0; k < noise_families; ++k) {
    FeatureFamily f;
    f.name = "noise-" + std::to_string(k);
    f.feature_names = {f.name + "/f0"};
    f.timestamps = grid;
    f.data = la::Matrix(t, 1);
    for (size_t i = 0; i < t; ++i) f.data(i, 0) = rng.Normal();
    w.candidates.push_back(std::move(f));
  }
  return w;
}

TEST(RankingTest, CauseAndEffectOutrankNoise) {
  World w = MakeWorld(400, 10, 1);
  RidgeScorer scorer;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates);
  ASSERT_TRUE(table.ok());
  ASSERT_GE(table->rows.size(), 2u);
  // Top two are cause and effect (either order), noise far below.
  std::set<std::string> top2 = {table->rows[0].family_name,
                                table->rows[1].family_name};
  EXPECT_TRUE(top2.count("cause") == 1);
  EXPECT_TRUE(top2.count("effect") == 1);
  EXPECT_GT(table->rows[1].score, table->rows[2].score + 0.3);
}

TEST(RankingTest, TiesBreakByFamilyNameAtEveryParallelism) {
  // Candidate clones share identical data, so their scores tie exactly;
  // the Score Table must order them by name regardless of the insertion
  // order or the fan-out (the EXPLAIN differential bar depends on this).
  World w = MakeWorld(200, 0, 7);
  const FeatureFamily base = w.candidates[0];  // "cause"
  std::vector<FeatureFamily> candidates;
  for (const char* name : {"twin-c", "twin-a", "twin-d", "twin-b"}) {
    FeatureFamily f = base;
    f.name = name;
    candidates.push_back(std::move(f));
  }
  CorrMaxScorer scorer;
  std::vector<std::vector<std::string>> orders;
  exec::WorkerPool shared_pool(4);
  for (int mode = 0; mode < 3; ++mode) {
    RankingOptions options;
    options.num_threads = mode == 0 ? 1 : 4;
    if (mode == 2) options.pool = &shared_pool;
    auto table = RankFamilies(scorer, w.target, nullptr, candidates,
                              options);
    ASSERT_TRUE(table.ok());
    std::vector<std::string> order;
    for (const auto& row : table->rows) order.push_back(row.family_name);
    orders.push_back(std::move(order));
  }
  const std::vector<std::string> expected = {"twin-a", "twin-b", "twin-c",
                                             "twin-d"};
  for (const auto& order : orders) EXPECT_EQ(order, expected);
}

TEST(RankingTest, ScoringCacheDoesNotChangeRankings) {
  // The cross-hypothesis cache is a pure reuse optimisation: scores and
  // order must be identical with it on or off, at every parallelism.
  World w = MakeWorld(300, 6, 11);
  // Condition on "cause" so the conditional path (with its shared Y~Z
  // fit) is exercised; rank the remaining families.
  FeatureFamily condition = w.candidates[0];
  std::vector<FeatureFamily> candidates(w.candidates.begin() + 1,
                                        w.candidates.end());
  RidgeScorer scorer;
  std::vector<std::pair<std::string, double>> reference;
  for (bool cache_on : {false, true}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      RankingOptions options;
      options.share_scoring_cache = cache_on;
      options.num_threads = threads;
      auto table =
          RankFamilies(scorer, w.target, &condition, candidates, options);
      ASSERT_TRUE(table.ok());
      std::vector<std::pair<std::string, double>> got;
      for (const auto& row : table->rows) {
        got.emplace_back(row.family_name, row.score);
      }
      if (reference.empty()) {
        reference = got;
      } else {
        EXPECT_EQ(got, reference)
            << "cache=" << cache_on << " threads=" << threads;
      }
    }
  }
}

TEST(RankingTest, StageStatsAndCacheCountersPopulated) {
  World w = MakeWorld(300, 6, 12);
  FeatureFamily condition = w.candidates[0];
  std::vector<FeatureFamily> candidates(w.candidates.begin() + 1,
                                        w.candidates.end());
  RidgeScorer scorer;
  RankingOptions options;  // share_scoring_cache defaults on
  auto table = RankFamilies(scorer, w.target, &condition, candidates, options);
  ASSERT_TRUE(table.ok());
  // Real regression work happened, so the stage clocks ran...
  EXPECT_GT(table->stage.gram_ns, 0);
  EXPECT_GT(table->stage.factor_ns, 0);
  EXPECT_GT(table->stage.solve_ns, 0);
  EXPECT_GT(table->stage.predict_ns, 0);
  // ...and the candidates shared the condition's design and Y~Z fit: the
  // first hypothesis misses, the remaining ones hit.
  EXPECT_GT(table->stage.fit_hits, 0u);
  EXPECT_GT(table->stage.design_hits, 0u);
  EXPECT_GT(table->stage.total_misses(), 0u);
}

TEST(RankingTest, TopKCutoffApplied) {
  World w = MakeWorld(200, 30, 2);
  CorrMaxScorer scorer;
  RankingOptions opts;
  opts.top_k = 5;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates, opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 5u);
}

TEST(RankingTest, ScoresSortedDescending) {
  World w = MakeWorld(300, 8, 3);
  CorrMaxScorer scorer;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates);
  ASSERT_TRUE(table.ok());
  for (size_t i = 1; i < table->rows.size(); ++i) {
    EXPECT_GE(table->rows[i - 1].score, table->rows[i].score);
  }
}

TEST(RankingTest, RankOfLookup) {
  World w = MakeWorld(300, 5, 4);
  RidgeScorer scorer;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates);
  ASSERT_TRUE(table.ok());
  EXPECT_GE(table->RankOf("cause"), 1u);
  EXPECT_LE(table->RankOf("cause"), 2u);
  EXPECT_EQ(table->RankOf("not-a-family"), 0u);
}

TEST(RankingTest, MisalignedCandidateSkippedNotFatal) {
  World w = MakeWorld(300, 3, 5);
  w.candidates[2].data = la::Matrix(10, 1);  // wrong T
  w.candidates[2].timestamps.resize(10);
  RidgeScorer scorer;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates);
  ASSERT_TRUE(table.ok());
  // One fewer row than candidates; ranking itself succeeded.
  EXPECT_EQ(table->rows.size(), w.candidates.size() - 1);
}

TEST(RankingTest, EmptyTargetFails) {
  FeatureFamily empty;
  RidgeScorer scorer;
  auto table = RankFamilies(scorer, empty, nullptr, {});
  EXPECT_FALSE(table.ok());
}

TEST(RankingTest, ConditionMustBeAligned) {
  World w = MakeWorld(300, 2, 6);
  FeatureFamily bad_z;
  bad_z.name = "z";
  bad_z.feature_names = {"z/f0"};
  bad_z.timestamps = {0};
  bad_z.data = la::Matrix(1, 1);
  RidgeScorer scorer;
  auto table = RankFamilies(scorer, w.target, &bad_z, w.candidates);
  EXPECT_FALSE(table.ok());
}

TEST(RankingTest, PerHypothesisTimingRecorded) {
  World w = MakeWorld(300, 4, 7);
  RidgeScorer scorer;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates);
  ASSERT_TRUE(table.ok());
  for (const auto& row : table->rows) {
    EXPECT_GT(row.score_seconds, 0.0) << row.family_name;
  }
  EXPECT_GT(table->total_seconds, 0.0);
}

TEST(RankingTest, IpcSimulationChargesSerialization) {
  World w = MakeWorld(300, 4, 8);
  CorrMaxScorer scorer;
  RankingOptions opts;
  opts.simulate_ipc = true;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates, opts);
  ASSERT_TRUE(table.ok());
  bool any = false;
  for (const auto& row : table->rows) {
    if (row.serialization_seconds > 0.0) any = true;
  }
  EXPECT_TRUE(any);
}

TEST(RankingTest, ExplainRangeScoreComputed) {
  World w = MakeWorld(400, 2, 9);
  RidgeScorer scorer;
  RankingOptions opts;
  opts.explain_range = TimeRange{100 * 60, 200 * 60};
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates, opts);
  ASSERT_TRUE(table.ok());
  const size_t cause_rank = table->RankOf("cause");
  ASSERT_GE(cause_rank, 1u);
  EXPECT_GT(table->rows[cause_rank - 1].explain_window_score, 0.5);
}

TEST(RankingTest, VizRendering) {
  World w = MakeWorld(300, 1, 10);
  RidgeScorer scorer;
  RankingOptions opts;
  opts.render_viz = true;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates, opts);
  ASSERT_TRUE(table.ok());
  EXPECT_NE(table->rows[0].viz.find("E[Y|X]"), std::string::npos);
}

TEST(RankingTest, ToTableAndToString) {
  World w = MakeWorld(300, 2, 11);
  CorrMaxScorer scorer;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates);
  ASSERT_TRUE(table.ok());
  table::Table t = table->ToTable();
  EXPECT_EQ(t.num_rows(), table->rows.size());
  EXPECT_EQ(t.At(0, 0).AsInt(), 1);
  std::string s = table->ToString();
  EXPECT_NE(s.find("rank"), std::string::npos);
  EXPECT_NE(s.find("cause"), std::string::npos);
}

TEST(SparklineTest, RendersBuckets) {
  std::vector<double> flat(100, 1.0);
  const std::string s = RenderSparkline(flat, 10);
  EXPECT_EQ(s.size(), 10u);
  std::vector<double> ramp;
  for (int i = 0; i < 100; ++i) ramp.push_back(i);
  const std::string r = RenderSparkline(ramp, 10);
  EXPECT_EQ(r.front(), ' ');  // minimum level renders blank
  EXPECT_EQ(r.back(), '#');
  EXPECT_EQ(RenderSparkline({}, 10), "");
}

TEST(SparklineTest, SpikeSurvivesDownsampling) {
  std::vector<double> y(1000, 0.0);
  y[500] = 100.0;
  const std::string s = RenderSparkline(y, 20);
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace explainit::core

namespace explainit::core {
namespace {

TEST(RankingTest, SignificanceAnnotationSeparatesSignalFromNoise) {
  World w = MakeWorld(400, 20, 12);
  RidgeScorer scorer;
  RankingOptions opts;
  opts.top_k = 0;  // keep everything so null rows are present
  opts.significance_fdr = 0.05;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates, opts);
  ASSERT_TRUE(table.ok());
  // The cause/effect rows are significant with tiny p-values.
  const size_t cause_rank = table->RankOf("cause");
  ASSERT_GE(cause_rank, 1u);
  EXPECT_TRUE(table->rows[cause_rank - 1].significant);
  EXPECT_LT(table->rows[cause_rank - 1].p_value, 1e-6);
  // Pure-noise rows at the bottom are not significant.
  const auto& last = table->rows.back();
  EXPECT_FALSE(last.significant);
  EXPECT_GT(last.p_value, 0.01);
}

TEST(RankingTest, SignificanceOffByDefault) {
  World w = MakeWorld(300, 3, 13);
  CorrMaxScorer scorer;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates);
  ASSERT_TRUE(table.ok());
  for (const auto& row : table->rows) {
    EXPECT_EQ(row.p_value, 1.0);
    EXPECT_TRUE(row.significant);
  }
}

// A scorer that makes each hypothesis slow enough for a short deadline
// to expire partway through the fan-out.
class SlowScorer : public Scorer {
 public:
  std::string name() const override { return "Slow"; }

 protected:
  Result<ScoreResult> DoScore(const la::Matrix&, const la::Matrix&,
                              const la::Matrix&,
                              const ScoringContext*) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ScoreResult r;
    r.score = 0.5;
    return r;
  }
};

TEST(RankingTest, PreCancelledTokenFailsWithCancelled) {
  World w = MakeWorld(50, 4, 31);
  exec::CancelToken token;
  token.Cancel();
  RankingOptions options;
  options.cancel = &token;
  CorrMaxScorer scorer;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates,
                            options);
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsCancelled()) << table.status().ToString();
}

TEST(RankingTest, DeadlineMidRankSurfacesDeadlineExceeded) {
  // 32 hypotheses x 5ms over 2 lanes is ~80ms of work against a 20ms
  // deadline: the per-hypothesis check trips partway and the call fails
  // with DeadlineExceeded instead of returning a truncated table.
  World w = MakeWorld(50, 30, 32);
  SlowScorer scorer;
  exec::CancelToken token;
  token.SetDeadlineAfter(std::chrono::milliseconds(20));
  RankingOptions options;
  options.cancel = &token;
  options.num_threads = 2;
  auto table = RankFamilies(scorer, w.target, nullptr, w.candidates,
                            options);
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsDeadlineExceeded())
      << table.status().ToString();

  // The shared global pool survives the abandoned fan-out: a fresh
  // ranking (and an un-deadlined token) still completes.
  CorrMaxScorer fast;
  RankingOptions fresh;
  exec::CancelToken live_token;
  fresh.cancel = &live_token;
  auto after = RankFamilies(fast, w.target, nullptr, w.candidates, fresh);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows.size(), 20u);  // default top_k over 32 candidates
}

TEST(RankingTest, DeadlineMidRankOnSharedPoolDoesNotDeadlock) {
  // Two concurrent deadlined rankings over ONE pool: both must unwind
  // promptly (cooperative checks, no task left waiting on a peer).
  World w = MakeWorld(50, 14, 33);
  exec::WorkerPool pool(2);
  SlowScorer scorer;
  std::vector<std::thread> callers;
  std::vector<Status> statuses(2);
  for (int i = 0; i < 2; ++i) {
    callers.emplace_back([&w, &pool, &scorer, &statuses, i] {
      exec::CancelToken token;
      token.SetDeadlineAfter(std::chrono::milliseconds(15));
      RankingOptions options;
      options.cancel = &token;
      options.pool = &pool;
      auto table =
          RankFamilies(scorer, w.target, nullptr, w.candidates, options);
      statuses[i] = table.status();
    });
  }
  for (auto& t : callers) t.join();
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  }
}

}  // namespace
}  // namespace explainit::core
