#include "core/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace explainit::core {
namespace {

// Populates a store with a small causal world on a minute grid:
//   input_rate -> runtime (target) -> latency (effect); disk_noise is
//   independent.
std::shared_ptr<tsdb::SeriesStore> MakeStore(size_t t, uint64_t seed) {
  auto store = std::make_shared<tsdb::SeriesStore>();
  Rng rng(seed);
  std::vector<double> rate(t), runtime(t), latency(t), noise(t);
  for (size_t i = 0; i < t; ++i) {
    rate[i] = rng.Normal(1000.0, 150.0);
    runtime[i] = 0.01 * rate[i] + rng.Normal() * 0.4;
    latency[i] = 1.5 * runtime[i] + rng.Normal() * 0.4;
    noise[i] = rng.Normal(5.0, 1.0);
  }
  for (size_t i = 0; i < t; ++i) {
    const EpochSeconds ts = static_cast<int64_t>(i) * 60;
    EXPECT_TRUE(store
                    ->Write("pipeline_input_rate",
                            tsdb::TagSet{{"pipeline_name", "p1"}}, ts, rate[i])
                    .ok());
    EXPECT_TRUE(store
                    ->Write("pipeline_runtime",
                            tsdb::TagSet{{"pipeline_name", "p1"}}, ts,
                            runtime[i])
                    .ok());
    EXPECT_TRUE(store
                    ->Write("pipeline_latency",
                            tsdb::TagSet{{"pipeline_name", "p1"}}, ts,
                            latency[i])
                    .ok());
    EXPECT_TRUE(store
                    ->Write("disk_noise", tsdb::TagSet{{"host", "dn-1"}}, ts,
                            noise[i])
                    .ok());
  }
  return store;
}

const TimeRange kRange{0, 500 * 60};

TEST(EngineTest, FamilyFromMetric) {
  Engine engine(MakeStore(500, 1));
  auto fam = engine.FamilyFromMetric("pipeline_runtime", kRange, "Y");
  ASSERT_TRUE(fam.ok());
  EXPECT_EQ(fam->name, "Y");
  EXPECT_EQ(fam->num_features(), 1u);
  EXPECT_EQ(fam->num_timestamps(), 500u);
  EXPECT_FALSE(engine.FamilyFromMetric("nope", kRange, "Y").ok());
}

TEST(EngineTest, FamiliesFromStoreGrouping) {
  Engine engine(MakeStore(200, 2));
  GroupingOptions g;
  g.key = GroupingKey::kMetricName;
  auto fams = engine.FamiliesFromStore(kRange, g);
  ASSERT_TRUE(fams.ok());
  EXPECT_EQ(fams->size(), 4u);
}

TEST(EngineTest, SqlOverRegisteredStore) {
  Engine engine(MakeStore(100, 3));
  engine.RegisterStoreTable("tsdb", kRange);
  auto t = engine.Sql(
      "SELECT COUNT(*) AS n FROM tsdb WHERE metric_name = 'disk_noise'");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->At(0, 0).AsInt(), 100);
}

TEST(EngineTest, FamiliesFromQueryListing1Shape) {
  Engine engine(MakeStore(120, 4));
  engine.RegisterStoreTable("tsdb", kRange);
  // Appendix C Listing 1: the target family query.
  auto fams = engine.FamiliesFromQuery(R"(
      SELECT timestamp, tag['pipeline_name'], AVG(value) AS runtime_sec
      FROM tsdb
      WHERE metric_name = 'pipeline_runtime'
      GROUP BY timestamp, tag['pipeline_name']
      ORDER BY timestamp ASC)");
  ASSERT_TRUE(fams.ok()) << fams.status().ToString();
  ASSERT_EQ(fams->size(), 1u);  // one pipeline
  EXPECT_EQ((*fams)[0].name, "p1");
  EXPECT_EQ((*fams)[0].num_features(), 1u);
  EXPECT_EQ((*fams)[0].feature_names[0], "runtime_sec");
  EXPECT_EQ((*fams)[0].num_timestamps(), 120u);
}

TEST(EngineTest, NormalizeHandlesMissingNameColumn) {
  table::Schema schema({{"timestamp", table::DataType::kTimestamp},
                        {"v1", table::DataType::kDouble}});
  table::Table t(schema);
  t.AppendRow({table::Value::Timestamp(0), table::Value::Double(1)});
  auto ff = NormalizeToFeatureFamilyTable(t, "deflt");
  ASSERT_TRUE(ff.ok());
  EXPECT_EQ(ff->At(0, 1).AsString(), "deflt");
  const table::ValueMap* v = ff->At(0, 2).AsMap();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->at("v1").AsDouble(), 1.0);
}

TEST(EngineTest, NormalizeRejectsNoTimestamp) {
  table::Schema schema({{"a", table::DataType::kDouble}});
  table::Table t(schema);
  t.AppendRow({table::Value::Double(1)});
  EXPECT_FALSE(NormalizeToFeatureFamilyTable(t).ok());
}

TEST(EngineTest, RankExcludesTargetAndConditionNames) {
  Engine engine(MakeStore(300, 5));
  GroupingOptions g;
  auto fams = engine.FamiliesFromStore(kRange, g);
  ASSERT_TRUE(fams.ok());
  RankRequest req;
  for (const FeatureFamily& f : *fams) {
    if (f.name == "pipeline_runtime") req.target = f;
    req.candidates.push_back(f);
  }
  req.scorer_name = "L2";
  auto table = engine.Rank(req);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->RankOf("pipeline_runtime"), 0u);  // excluded (it is Y)
  EXPECT_GE(table->rows.size(), 3u);
}

TEST(EngineTest, EndToEndSessionWorkflow) {
  // Algorithm 1 end to end: target, search space, rank; the causal
  // families outrank noise.
  Engine engine(MakeStore(400, 6));
  Session session(&engine, kRange);
  ASSERT_TRUE(session.SetTargetByMetric("pipeline_runtime").ok());
  GroupingOptions g;
  g.key = GroupingKey::kMetricName;
  ASSERT_TRUE(session.SetSearchSpaceByGrouping(g).ok());
  ASSERT_TRUE(session.SetScorer("L2").ok());
  auto table = session.Run();
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_GE(table->rows.size(), 3u);
  // input_rate (cause) and latency (effect) outrank disk noise.
  EXPECT_GT(table->RankOf("pipeline_input_rate"), 0u);
  EXPECT_LE(table->RankOf("pipeline_input_rate"), 2u);
  EXPECT_LE(table->RankOf("pipeline_latency"), 2u);
  EXPECT_EQ(table->RankOf("disk_noise"), 3u);
  EXPECT_EQ(session.history().size(), 1u);
}

TEST(EngineTest, SessionConditioningChangesRanking) {
  // §5.2: conditioning on the input size demotes it and lifts residual
  // causes. Here conditioning on input_rate should drop its own rank and
  // the latency (pure effect of runtime) stays high.
  Engine engine(MakeStore(400, 7));
  Session session(&engine, kRange);
  ASSERT_TRUE(session.SetTargetByMetric("pipeline_runtime").ok());
  GroupingOptions g;
  ASSERT_TRUE(session.SetSearchSpaceByGrouping(g).ok());
  ASSERT_TRUE(session.SetScorer("L2").ok());
  auto before = session.Run();
  ASSERT_TRUE(before.ok());
  const size_t rate_rank_before = before->RankOf("pipeline_input_rate");
  ASSERT_TRUE(session.SetConditionByMetric("pipeline_input_rate").ok());
  auto after = session.Run();
  ASSERT_TRUE(after.ok());
  // After conditioning on Z = input rate, scoring is the conditional
  // procedure; the input-rate family is excluded by the overlap rule or
  // scores near zero.
  const size_t rate_rank_after = after->RankOf("pipeline_input_rate");
  if (rate_rank_after != 0) {
    const double score_after = after->rows[rate_rank_after - 1].score;
    const double score_before = before->rows[rate_rank_before - 1].score;
    EXPECT_LT(score_after, score_before * 0.5);
  }
  EXPECT_EQ(session.history().size(), 2u);
}

TEST(EngineTest, SessionDrillDown) {
  Engine engine(MakeStore(200, 8));
  Session session(&engine, kRange);
  ASSERT_TRUE(session.SetTargetByMetric("pipeline_runtime").ok());
  GroupingOptions g;
  ASSERT_TRUE(session.SetSearchSpaceByGrouping(g).ok());
  EXPECT_EQ(session.num_candidates(), 4u);
  ASSERT_TRUE(session.DrillDown({"pipeline_*"}).ok());
  EXPECT_EQ(session.num_candidates(), 3u);
  EXPECT_FALSE(session.DrillDown({"zzz*"}).ok());
}

TEST(EngineTest, SessionValidation) {
  Engine engine(MakeStore(100, 9));
  Session session(&engine, kRange);
  EXPECT_FALSE(session.Run().ok());  // no target
  ASSERT_TRUE(session.SetTargetByMetric("pipeline_runtime").ok());
  EXPECT_FALSE(session.Run().ok());  // no search space
  EXPECT_FALSE(session.SetScorer("bogus").ok());
  EXPECT_FALSE(session.SetExplainRange(TimeRange{kRange.end + 100,
                                                 kRange.end + 200})
                   .ok());
  EXPECT_FALSE(session.ConditionOnPseudocause().ok() &&
               false);  // target set: pseudocause ok
}

TEST(EngineTest, PersistentExecutorAccumulatesStats) {
  // The engine holds one executor for its lifetime: counters survive
  // across Sql() calls, and last_exec_stats() isolates the latest query.
  Engine engine(MakeStore(50, 11));
  engine.RegisterStoreTable("tsdb", kRange);
  ASSERT_TRUE(engine.Sql("SELECT COUNT(*) AS n FROM tsdb").ok());
  ASSERT_TRUE(
      engine.Sql("SELECT AVG(value) AS v FROM tsdb "
                 "WHERE metric_name = 'disk_noise'")
          .ok());
  EXPECT_EQ(engine.exec_stats().tables_scanned, 2u);
  EXPECT_EQ(engine.last_exec_stats().tables_scanned, 1u);
  // The second scan was narrowed by metric pushdown: 50 rows, not 200.
  EXPECT_EQ(engine.last_exec_stats().rows_scanned, 50u);
  EXPECT_EQ(engine.exec_stats().rows_scanned, 250u);
  EXPECT_FALSE(engine.last_exec_stats().operators.empty());
  engine.ResetExecStats();
  EXPECT_EQ(engine.exec_stats().tables_scanned, 0u);
}

TEST(EngineTest, StoreTablePushdownNarrowsScan) {
  // A WHERE over the registered store table narrows the ScanRequest the
  // store actually serves (time window and metric constraint).
  Engine engine(MakeStore(100, 12));
  engine.RegisterStoreTable("tsdb", kRange);
  auto t = engine.Sql(
      "SELECT COUNT(*) AS n FROM tsdb WHERE metric_name = 'disk_noise' "
      "AND timestamp BETWEEN 600 AND 1200");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->At(0, 0).AsInt(), 11);  // minutes 10..20 inclusive
  const tsdb::ScanStats& st = engine.store().scan_stats();
  EXPECT_EQ(st.last_range.start, 600);
  EXPECT_EQ(st.last_range.end, 1201);
  EXPECT_EQ(st.series_matched, 1u);
  EXPECT_EQ(st.points_returned, 11u);
}

TEST(EngineTest, QueryReportsStatementKindAndStats) {
  Engine engine(MakeStore(50, 21));
  engine.RegisterStoreTable("tsdb", kRange);
  auto select = engine.Query("SELECT COUNT(*) AS n FROM tsdb");
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ(select->kind, sql::StatementKind::kSelect);
  EXPECT_FALSE(select->score_table.has_value());
  EXPECT_EQ(select->table.At(0, 0).AsInt(), 200);
  EXPECT_FALSE(select->stats.operators.empty());
}

TEST(EngineTest, ExplainStatementProducesScoreTable) {
  Engine engine(MakeStore(200, 22));
  engine.RegisterStoreTable("tsdb", kRange);
  auto result = engine.Query(
      "EXPLAIN (SELECT timestamp, AVG(value) AS y FROM tsdb "
      "         WHERE metric_name = 'pipeline_runtime' GROUP BY timestamp) "
      "USING (SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb "
      "       WHERE metric_name != 'pipeline_runtime' "
      "       GROUP BY timestamp, metric_name) "
      "SCORE BY 'CorrMax' TOP 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->kind, sql::StatementKind::kExplain);
  ASSERT_TRUE(result->score_table.has_value());
  // TOP 2 of the three candidate metrics; the causal pair outranks noise.
  ASSERT_EQ(result->table.num_rows(), 2u);
  EXPECT_EQ(result->score_table->rows.size(), 2u);
  EXPECT_EQ(result->score_table->RankOf("disk_noise"), 0u);
  // The relational Score Table: rank, family, score, ...
  EXPECT_EQ(result->table.schema().field(0).name, "rank");
  EXPECT_EQ(result->table.schema().field(1).name, "family");
  EXPECT_EQ(result->table.At(0, 0).AsInt(), 1);
  // The Rank operator roots the plan and reports the fan-out detail.
  ASSERT_FALSE(result->stats.operators.empty());
  EXPECT_EQ(result->stats.operators[0].name, "Rank");
}

TEST(EngineTest, ExplainScoreTableComposesWithSql) {
  // The EXPLAIN result is an ordinary table: register it and re-query.
  Engine engine(MakeStore(150, 23));
  engine.RegisterStoreTable("tsdb", kRange);
  auto result = engine.Query(
      "EXPLAIN (SELECT timestamp, AVG(value) AS y FROM tsdb "
      "         WHERE metric_name = 'pipeline_runtime' GROUP BY timestamp) "
      "USING (SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb "
      "       WHERE metric_name != 'pipeline_runtime' "
      "       GROUP BY timestamp, metric_name) "
      "SCORE BY 'CorrMax'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  engine.catalog().RegisterTable("scores", result->table);
  auto strong = engine.Sql(
      "SELECT family, score FROM scores WHERE score > 0.5 AND rank <= 2 "
      "ORDER BY score DESC");
  ASSERT_TRUE(strong.ok()) << strong.status().ToString();
  EXPECT_LE(strong->num_rows(), 2u);
}

TEST(EngineTest, ExplainErrorsAreActionable) {
  Engine engine(MakeStore(60, 24));
  engine.RegisterStoreTable("tsdb", kRange);
  // Unknown scorer fails before any sub-select executes.
  auto bad_scorer = engine.Query(
      "EXPLAIN (SELECT timestamp, AVG(value) AS y FROM tsdb "
      "GROUP BY timestamp) USING (SELECT timestamp, metric_name, "
      "AVG(value) AS v FROM tsdb GROUP BY timestamp, metric_name) "
      "SCORE BY 'bogus'");
  EXPECT_FALSE(bad_scorer.ok());
  // A target query with no timestamp column cannot form families.
  auto bad_target = engine.Query(
      "EXPLAIN (SELECT COUNT(*) AS n FROM tsdb) "
      "USING (SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb "
      "GROUP BY timestamp, metric_name)");
  EXPECT_FALSE(bad_target.ok());
}

TEST(EngineTest, SessionExplainRangeReported) {
  Engine engine(MakeStore(300, 10));
  Session session(&engine, kRange);
  ASSERT_TRUE(session.SetTargetByMetric("pipeline_runtime").ok());
  ASSERT_TRUE(session.SetExplainRange(TimeRange{100 * 60, 200 * 60}).ok());
  GroupingOptions g;
  ASSERT_TRUE(session.SetSearchSpaceByGrouping(g).ok());
  ASSERT_TRUE(session.SetScorer("L2").ok());
  auto table = session.Run();
  ASSERT_TRUE(table.ok());
  const size_t r = table->RankOf("pipeline_input_rate");
  ASSERT_GT(r, 0u);
  EXPECT_GT(table->rows[r - 1].explain_window_score, 0.3);
}

}  // namespace
}  // namespace explainit::core
