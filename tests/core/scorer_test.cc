#include "core/scorer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "la/blas.h"

namespace explainit::core {
namespace {

// Builds the Figure 1 chain Z -> Y -> X3 with independent noise:
//   z: exogenous input rate
//   y = f(z) + noise   (runtime driven by input)
//   x = g(y) + noise   (disk latency driven by runtime)
struct ChainData {
  la::Matrix z, y, x, noise;
};

ChainData MakeChain(size_t t, uint64_t seed, double noise_level = 0.3) {
  Rng rng(seed);
  ChainData d;
  d.z = la::Matrix(t, 1);
  d.y = la::Matrix(t, 1);
  d.x = la::Matrix(t, 1);
  d.noise = la::Matrix(t, 2);
  for (size_t i = 0; i < t; ++i) {
    d.z(i, 0) = rng.Normal(100.0, 20.0);
    d.y(i, 0) = 0.05 * d.z(i, 0) + rng.Normal() * noise_level;
    d.x(i, 0) = 2.0 * d.y(i, 0) + rng.Normal() * noise_level;
    d.noise(i, 0) = rng.Normal();
    d.noise(i, 1) = rng.Normal();
  }
  return d;
}

la::Matrix Empty() { return la::Matrix(); }

TEST(CorrScorerTest, DetectsLinearDependence) {
  ChainData d = MakeChain(600, 1);
  CorrMaxScorer corr_max;
  CorrMeanScorer corr_mean;
  auto smax = corr_max.Score(d.x, d.y, Empty());
  auto smean = corr_mean.Score(d.x, d.y, Empty());
  ASSERT_TRUE(smax.ok());
  ASSERT_TRUE(smean.ok());
  EXPECT_GT(smax->score, 0.8);
  EXPECT_GT(smean->score, 0.8);  // single pair: mean == max
  EXPECT_NEAR(smax->score, smean->score, 1e-12);
}

TEST(CorrScorerTest, NoiseScoresLow) {
  ChainData d = MakeChain(600, 2);
  CorrMaxScorer scorer;
  auto s = scorer.Score(d.noise, d.y, Empty());
  ASSERT_TRUE(s.ok());
  EXPECT_LT(s->score, 0.2);
}

TEST(CorrScorerTest, MeanDilutedByNoiseColumnsMaxIsNot) {
  // CorrMean's weakness (§6.1): noise features dilute the mean.
  ChainData d = MakeChain(600, 3);
  Rng rng(4);
  la::Matrix wide(600, 20);
  for (size_t r = 0; r < 600; ++r) {
    wide(r, 0) = d.x(r, 0);  // one signal column
    for (size_t c = 1; c < 20; ++c) wide(r, c) = rng.Normal();
  }
  CorrMaxScorer corr_max;
  CorrMeanScorer corr_mean;
  auto smax = corr_max.Score(wide, d.y, Empty());
  auto smean = corr_mean.Score(wide, d.y, Empty());
  ASSERT_TRUE(smax.ok());
  ASSERT_TRUE(smean.ok());
  EXPECT_GT(smax->score, 0.8);
  EXPECT_LT(smean->score, 0.3);
}

TEST(RidgeScorerTest, MarginalScoreMatchesSignal) {
  ChainData d = MakeChain(600, 5, /*noise=*/0.1);
  RidgeScorer scorer;
  auto s = scorer.Score(d.x, d.y, Empty());
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->score, 0.9);
  EXPECT_GT(s->best_lambda, 0.0);
  EXPECT_EQ(s->fitted.rows(), 600u);  // overlay for diagnostics
}

TEST(RidgeScorerTest, JointDependenceBeatsUnivariate) {
  // The §6.1 motivation: Y depends on the SUM of many weak features; no
  // single feature correlates strongly but jointly they explain Y.
  Rng rng(6);
  const size_t t = 600, f = 30;
  la::Matrix x(t, f), y(t, 1);
  rng.FillNormal(x.data(), x.size());
  for (size_t r = 0; r < t; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < f; ++c) acc += x(r, c);
    y(r, 0) = acc / std::sqrt(static_cast<double>(f)) + rng.Normal() * 0.3;
  }
  RidgeScorer ridge;
  CorrMaxScorer corr;
  auto sr = ridge.Score(x, y, Empty());
  auto sc = corr.Score(x, y, Empty());
  ASSERT_TRUE(sr.ok());
  ASSERT_TRUE(sc.ok());
  EXPECT_GT(sr->score, 0.8);       // joint scorer sees the full signal
  EXPECT_LT(sc->score, 0.45);      // each single feature explains ~1/30
  EXPECT_GT(sr->score, sc->score + 0.3);
}

TEST(RidgeScorerTest, ConditionalBlocksChainDependence) {
  // Figure 1 / §3.3: Z -> Y -> X. Marginally X ~ Z is dependent; given Y
  // it is (approximately) independent: score(X, Z | Y) << score(X, Z).
  ChainData d = MakeChain(900, 7, /*noise=*/0.5);
  RidgeScorer scorer;
  auto marginal = scorer.Score(d.x, d.z, Empty());
  auto conditional = scorer.Score(d.x, d.z, d.y);
  ASSERT_TRUE(marginal.ok());
  ASSERT_TRUE(conditional.ok());
  EXPECT_GT(marginal->score, 0.4);
  EXPECT_LT(conditional->score, 0.1);
  EXPECT_LT(conditional->score, marginal->score * 0.5);
}

TEST(RidgeScorerTest, ConditioningRevealsResidualCause) {
  // §5.2's pattern: Y = f(load) + g(fault). Conditioning on load exposes
  // the fault family that would otherwise rank below the load.
  Rng rng(8);
  const size_t t = 700;
  la::Matrix load(t, 1), fault(t, 1), y(t, 1);
  for (size_t i = 0; i < t; ++i) {
    load(i, 0) = rng.Normal(1000.0, 200.0);
    // Recurring fault bursts (like §5.2's retransmissions), so every CV
    // fold observes fault activity.
    const bool bursting = (i % 140) < 35;
    fault(i, 0) = bursting ? rng.Normal(5.0, 1.0) : 0.0;
    y(i, 0) = 0.01 * load(i, 0) + 2.0 * fault(i, 0) + rng.Normal() * 0.5;
  }
  RidgeScorer scorer;
  auto marg = scorer.Score(fault, y, Empty());
  auto cond = scorer.Score(fault, y, load);
  ASSERT_TRUE(marg.ok());
  ASSERT_TRUE(cond.ok());
  // After conditioning on load, the fault explains a larger share of the
  // remaining variance.
  EXPECT_GT(cond->score, marg->score);
}

TEST(ProjectedRidgeTest, NarrowInputBypassesProjection) {
  ChainData d = MakeChain(400, 9, 0.1);
  RidgeScorerOptions opts;
  opts.projection_dim = 50;
  RidgeScorer p50(opts);
  RidgeScorer plain;
  auto a = p50.Score(d.x, d.y, Empty());
  auto b = plain.Score(d.x, d.y, Empty());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // nx = 1 <= 50: identical computation.
  EXPECT_NEAR(a->score, b->score, 1e-9);
}

TEST(ProjectedRidgeTest, WideInputProjectedAndStillDetects) {
  // Monitoring metrics are highly correlated (low rank): X mixes a few
  // latent factors across many features, and Y follows one factor.
  // Random projection preserves that low-rank structure (JL), which is
  // why the paper's L2-P50 works at 100k+ features.
  Rng rng(10);
  const size_t t = 300, f = 400, k = 5;
  la::Matrix latent(t, k);
  rng.FillNormal(latent.data(), latent.size());
  la::Matrix mix(k, f);
  rng.FillNormal(mix.data(), mix.size());
  la::Matrix x = la::MatMul(latent, mix);
  // Small per-feature noise.
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] += rng.Normal() * 0.1;
  la::Matrix y(t, 1);
  for (size_t r = 0; r < t; ++r) {
    y(r, 0) = latent(r, 0) + rng.Normal() * 0.2;
  }
  RidgeScorerOptions opts;
  opts.projection_dim = 50;
  opts.projection_samples = 3;
  RidgeScorer p50(opts);
  auto s = p50.Score(x, y, Empty());
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->score, 0.7);
}

TEST(ProjectedRidgeTest, NamesEncodeDimension) {
  RidgeScorerOptions opts;
  opts.projection_dim = 50;
  EXPECT_EQ(RidgeScorer(opts).name(), "L2-P50");
  opts.projection_dim = 500;
  EXPECT_EQ(RidgeScorer(opts).name(), "L2-P500");
  EXPECT_EQ(RidgeScorer().name(), "L2");
}

TEST(LassoScorerTest, DetectsSparseSignal) {
  Rng rng(11);
  const size_t t = 300, f = 20;
  la::Matrix x(t, f), y(t, 1);
  rng.FillNormal(x.data(), x.size());
  for (size_t r = 0; r < t; ++r) {
    y(r, 0) = 2.0 * x(r, 7) + rng.Normal() * 0.2;
  }
  LassoScorer scorer;
  auto s = scorer.Score(x, y, Empty());
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->score, 0.8);
}

TEST(PcaScorerTest, PcaCanDiscardAnomalyDirection) {
  // §4.2: "PCA reduces the feature dimensionality by modeling the normal
  // behaviour, and discards the anomalies". Build X whose high-variance
  // directions are irrelevant and whose low-variance direction drives Y.
  Rng rng(12);
  const size_t t = 500, f = 40;
  la::Matrix x(t, f), y(t, 1);
  for (size_t r = 0; r < t; ++r) {
    // 39 high-variance noise dims; 1 tiny-variance anomaly dim (the
    // last). Anomalies recur so every CV fold sees events.
    for (size_t c = 0; c + 1 < f; ++c) x(r, c) = rng.Normal() * 10.0;
    const bool in_event = (r % 100) >= 40 && (r % 100) < 55;
    const double anomaly = in_event ? 1.0 : 0.0;
    x(r, f - 1) = anomaly + rng.Normal() * 0.05;
    y(r, 0) = 5.0 * anomaly + rng.Normal() * 0.1;
  }
  PcaRidgeScorer pca(5);
  RidgeScorer plain;
  auto sp = pca.Score(x, y, Empty());
  auto sr = plain.Score(x, y, Empty());
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(sr.ok());
  EXPECT_GT(sr->score, 0.8);           // ridge keeps the anomaly feature
  EXPECT_LT(sp->score, sr->score - 0.3);  // PCA throws it away
}

TEST(ScorerFactoryTest, AllPaperScorersConstructible) {
  for (const char* name :
       {"CorrMean", "CorrMax", "L2", "L2-P50", "L2-P500", "L1", "L2-PCA50"}) {
    auto s = MakeScorer(name);
    ASSERT_TRUE(s.ok()) << name;
    EXPECT_EQ((*s)->name(), name);
  }
  EXPECT_FALSE(MakeScorer("bogus").ok());
}

TEST(ScorerTest, ShapeValidation) {
  la::Matrix x(10, 1), y(12, 1);
  RidgeScorer scorer;
  EXPECT_FALSE(scorer.Score(x, y, Empty()).ok());
  la::Matrix y2(10, 0);
  EXPECT_FALSE(scorer.Score(x, y2, Empty()).ok());
  la::Matrix z(5, 1);
  la::Matrix y3(10, 1);
  EXPECT_FALSE(scorer.Score(x, y3, z).ok());
}

// Appendix B property: for jointly Gaussian (X, Y, Z) with
// Sigma_xy = Sigma_xz Sigma_zz^-1 Sigma_zy (X ⊥ Y | Z), the conditional
// score is ~0; when X has direct effect on Y it is clearly positive.
class ConditionalPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ConditionalPropertyTest, ZeroScoreIffConditionallyIndependent) {
  const double direct_effect = GetParam();
  Rng rng(13 + static_cast<uint64_t>(direct_effect * 100));
  const size_t t = 1000;
  la::Matrix x(t, 1), y(t, 1), z(t, 2);
  for (size_t i = 0; i < t; ++i) {
    z(i, 0) = rng.Normal();
    z(i, 1) = rng.Normal();
    // X and Y both driven by Z; X -> Y only when direct_effect > 0.
    x(i, 0) = z(i, 0) + 0.5 * z(i, 1) + rng.Normal() * 0.5;
    y(i, 0) = -z(i, 0) + z(i, 1) + direct_effect * x(i, 0) +
              rng.Normal() * 0.5;
  }
  auto res = ConditionalRidgeScore(x, y, z, stats::RidgeOptions{});
  ASSERT_TRUE(res.ok());
  if (direct_effect == 0.0) {
    EXPECT_LT(res->score, 0.05);
  } else {
    EXPECT_GT(res->score, 0.2);
  }
}

INSTANTIATE_TEST_SUITE_P(Effects, ConditionalPropertyTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace explainit::core
