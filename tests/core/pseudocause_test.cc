#include "core/pseudocause.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/scorer.h"

namespace explainit::core {
namespace {

FeatureFamily SeasonalTarget(size_t t, size_t period, double spike_start,
                             double spike_len, uint64_t seed,
                             la::Matrix* residual_cause = nullptr) {
  Rng rng(seed);
  FeatureFamily fam;
  fam.name = "Y";
  fam.feature_names = {"Y/f0"};
  fam.data = la::Matrix(t, 1);
  if (residual_cause != nullptr) *residual_cause = la::Matrix(t, 1);
  for (size_t i = 0; i < t; ++i) {
    fam.timestamps.push_back(static_cast<int64_t>(i) * 60);
    const double seasonal =
        3.0 * std::sin(2.0 * M_PI * static_cast<double>(i % period) /
                       static_cast<double>(period));
    const double cr =
        (i >= spike_start && i < spike_start + spike_len) ? 4.0 : 0.0;
    if (residual_cause != nullptr) {
      (*residual_cause)(i, 0) = cr + rng.Normal() * 0.1;
    }
    fam.data(i, 0) = 10.0 + seasonal + cr + rng.Normal() * 0.3;
  }
  return fam;
}

TEST(PseudocauseTest, AutoDetectsPeriod) {
  FeatureFamily y = SeasonalTarget(24 * 20, 24, 200, 30, 1);
  auto pc = BuildPseudocause(y);
  ASSERT_TRUE(pc.ok());
  EXPECT_EQ(pc->period, 24u);
  EXPECT_EQ(pc->systematic.num_features(), 1u);
  EXPECT_EQ(pc->residual.num_features(), 1u);
  EXPECT_EQ(pc->systematic.name, "Y:systematic");
}

TEST(PseudocauseTest, ComponentsSumToTarget) {
  FeatureFamily y = SeasonalTarget(480, 24, 200, 30, 2);
  auto pc = BuildPseudocause(y);
  ASSERT_TRUE(pc.ok());
  for (size_t i = 0; i < y.num_timestamps(); ++i) {
    EXPECT_NEAR(pc->systematic.data(i, 0) + pc->residual.data(i, 0),
                y.data(i, 0), 1e-9);
  }
}

TEST(PseudocauseTest, ResidualCapturesSpikeNotSeason) {
  FeatureFamily y = SeasonalTarget(24 * 25, 24, 300, 40, 3);
  auto pc = BuildPseudocause(y);
  ASSERT_TRUE(pc.ok());
  // The residual around the spike should be large; elsewhere small.
  double in_spike = 0.0, outside = 0.0;
  size_t n_in = 0, n_out = 0;
  for (size_t i = 0; i < y.num_timestamps(); ++i) {
    if (i >= 305 && i < 335) {
      in_spike += pc->residual.data(i, 0);
      ++n_in;
    } else if (i < 290 || i > 350) {
      outside += std::abs(pc->residual.data(i, 0));
      ++n_out;
    }
  }
  EXPECT_GT(in_spike / n_in, 2.0);
  EXPECT_LT(outside / n_out, 0.7);
}

TEST(PseudocauseTest, ExplicitPeriodOverridesDetection) {
  FeatureFamily y = SeasonalTarget(480, 24, 200, 30, 4);
  PseudocauseOptions opts;
  opts.period = 48;
  auto pc = BuildPseudocause(y, opts);
  ASSERT_TRUE(pc.ok());
  EXPECT_EQ(pc->period, 48u);
}

TEST(PseudocauseTest, NoPeriodFallsBackToTrend) {
  Rng rng(5);
  FeatureFamily y;
  y.name = "Y";
  y.feature_names = {"f"};
  y.data = la::Matrix(300, 1);
  for (size_t i = 0; i < 300; ++i) {
    y.timestamps.push_back(static_cast<int64_t>(i) * 60);
    y.data(i, 0) = 0.05 * static_cast<double>(i) + rng.Normal();
  }
  auto pc = BuildPseudocause(y);
  ASSERT_TRUE(pc.ok());
  EXPECT_EQ(pc->period, 0u);  // trend only
  // Systematic part tracks the ramp.
  EXPECT_GT(pc->systematic.data(250, 0), pc->systematic.data(20, 0) + 5.0);
}

TEST(PseudocauseTest, TooShortFails) {
  FeatureFamily y;
  y.data = la::Matrix(4, 1);
  y.timestamps = {0, 60, 120, 180};
  y.feature_names = {"f"};
  EXPECT_FALSE(BuildPseudocause(y).ok());
}

TEST(PseudocauseTest, Figure3ConditioningRevealsResidualCause) {
  // The Figure 3 experiment: Cs drives the seasonal part, Cr drives the
  // residual. Without conditioning, Cs outranks or ties Cr; conditioning
  // on the pseudocause Ys suppresses Cs and boosts Cr.
  const size_t t = 24 * 25;
  Rng rng(6);
  la::Matrix cs(t, 1), cr(t, 1);
  FeatureFamily y;
  y.name = "Y";
  y.feature_names = {"Y/f0"};
  y.data = la::Matrix(t, 1);
  for (size_t i = 0; i < t; ++i) {
    y.timestamps.push_back(static_cast<int64_t>(i) * 60);
    cs(i, 0) = 3.0 * std::sin(2.0 * M_PI * static_cast<double>(i % 24) / 24.0) +
               rng.Normal() * 0.1;
    cr(i, 0) = (i >= 300 && i < 340) ? 4.0 + rng.Normal() * 0.2
                                     : rng.Normal() * 0.2;
    y.data(i, 0) = 10.0 + cs(i, 0) + cr(i, 0) + rng.Normal() * 0.2;
  }
  auto pc = BuildPseudocause(y);
  ASSERT_TRUE(pc.ok());
  RidgeScorer scorer;
  la::Matrix empty;
  auto cs_marginal = scorer.Score(cs, y.data, empty);
  auto cr_marginal = scorer.Score(cr, y.data, empty);
  auto cs_cond = scorer.Score(cs, y.data, pc->systematic.data);
  auto cr_cond = scorer.Score(cr, y.data, pc->systematic.data);
  ASSERT_TRUE(cs_marginal.ok() && cr_marginal.ok() && cs_cond.ok() &&
              cr_cond.ok());
  // Marginally the seasonal cause dominates.
  EXPECT_GT(cs_marginal->score, cr_marginal->score);
  // Conditioning on Ys blocks Cs and reveals Cr (Figure 3's claim).
  EXPECT_GT(cr_cond->score, cs_cond->score);
  EXPECT_LT(cs_cond->score, 0.25);
}

}  // namespace
}  // namespace explainit::core
