#include "core/feature_family.h"

#include <gtest/gtest.h>

#include "core/engine.h"

namespace explainit::core {
namespace {

std::vector<tsdb::SeriesData> MakeSeries() {
  std::vector<tsdb::SeriesData> out;
  auto add = [&](const std::string& name, tsdb::TagSet tags,
                 std::vector<double> values) {
    tsdb::SeriesData s;
    s.meta.metric_name = name;
    s.meta.tags = std::move(tags);
    for (size_t i = 0; i < values.size(); ++i) {
      s.timestamps.push_back(static_cast<int64_t>(i) * 60);
    }
    s.values = std::move(values);
    out.push_back(std::move(s));
  };
  add("input_rate", {{"type", "event-1"}}, {1, 2, 3});
  add("input_rate", {{"type", "event-2"}}, {4, 5, 6});
  add("runtime", {{"component", "pipeline-1"}}, {7, 8, 9});
  add("disk", {{"host", "datanode-1"}, {"type", "read_latency"}}, {1, 1, 1});
  add("disk", {{"host", "datanode-2"}, {"type", "read_latency"}}, {2, 2, 2});
  add("disk", {{"host", "namenode-1"}, {"type", "read_latency"}}, {3, 3, 3});
  return out;
}

TEST(FamilyTest, GroupByMetricNameMirrorsPaperExample) {
  // §3.2: grouping by name gives input_rate{*}, runtime{*}, disk{*}.
  GroupingOptions opts;
  opts.key = GroupingKey::kMetricName;
  auto fams = BuildFamilies(MakeSeries(), opts);
  ASSERT_TRUE(fams.ok());
  ASSERT_EQ(fams->size(), 3u);
  EXPECT_EQ((*fams)[0].name, "disk");
  EXPECT_EQ((*fams)[0].num_features(), 3u);
  EXPECT_EQ((*fams)[1].name, "input_rate");
  EXPECT_EQ((*fams)[1].num_features(), 2u);
  EXPECT_EQ((*fams)[2].name, "runtime");
  EXPECT_EQ((*fams)[2].num_features(), 1u);
}

TEST(FamilyTest, GroupByTagMirrorsPaperExample) {
  // §3.2: grouping by host gives datanode-1, datanode-2, namenode-1, NULL.
  GroupingOptions opts;
  opts.key = GroupingKey::kTag;
  opts.tag_key = "host";
  auto fams = BuildFamilies(MakeSeries(), opts);
  ASSERT_TRUE(fams.ok());
  ASSERT_EQ(fams->size(), 4u);
  EXPECT_EQ((*fams)[0].name, "*{host=NULL}");
  EXPECT_EQ((*fams)[0].num_features(), 3u);  // input_rate x2 + runtime
  EXPECT_EQ((*fams)[1].name, "*{host=datanode-1}");
  EXPECT_EQ((*fams)[3].name, "*{host=namenode-1}");
}

TEST(FamilyTest, GroupByPattern) {
  // §3.2: "disk{host=datanode*}" — any datanode activity.
  GroupingOptions opts;
  opts.key = GroupingKey::kPattern;
  opts.patterns = {"disk{host=datanode*}", "runtime*"};
  auto fams = BuildFamilies(MakeSeries(), opts);
  ASSERT_TRUE(fams.ok());
  ASSERT_EQ(fams->size(), 2u);
  EXPECT_EQ((*fams)[0].name, "disk{host=datanode*}");
  EXPECT_EQ((*fams)[0].num_features(), 2u);
  EXPECT_EQ((*fams)[1].name, "runtime*");
  EXPECT_EQ((*fams)[1].num_features(), 1u);
}

TEST(FamilyTest, GroupingValidation) {
  GroupingOptions opts;
  opts.key = GroupingKey::kTag;
  EXPECT_FALSE(BuildFamilies(MakeSeries(), opts).ok());  // missing tag_key
  opts.key = GroupingKey::kPattern;
  EXPECT_FALSE(BuildFamilies(MakeSeries(), opts).ok());  // missing patterns
}

TEST(FamilyTest, MisalignedSeriesRejected) {
  auto series = MakeSeries();
  series[1].timestamps[0] = 999;
  GroupingOptions opts;
  EXPECT_FALSE(BuildFamilies(series, opts).ok());
}

TEST(FamilyTest, DataMatrixLayout) {
  GroupingOptions opts;
  auto fams = BuildFamilies(MakeSeries(), opts);
  ASSERT_TRUE(fams.ok());
  const FeatureFamily& disk = (*fams)[0];
  EXPECT_EQ(disk.num_timestamps(), 3u);
  // Columns ordered by insertion order of matching series.
  EXPECT_EQ(disk.data(0, 0), 1.0);
  EXPECT_EQ(disk.data(0, 1), 2.0);
  EXPECT_EQ(disk.data(0, 2), 3.0);
  EXPECT_EQ(disk.feature_names[0],
            "disk{host=datanode-1,type=read_latency}");
  EXPECT_EQ(disk.FindFeature("disk{host=datanode-2,type=read_latency}"), 1);
  EXPECT_EQ(disk.FindFeature("nope"), -1);
}

TEST(FamilyTest, TableRoundTrip) {
  GroupingOptions opts;
  auto fams = BuildFamilies(MakeSeries(), opts);
  ASSERT_TRUE(fams.ok());
  const FeatureFamily& disk = (*fams)[0];
  table::Table t = FamilyToTable(disk);
  EXPECT_EQ(t.num_rows(), 3u);
  auto back = FamiliesFromTable(t);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].name, "disk");
  EXPECT_EQ((*back)[0].num_features(), 3u);
  EXPECT_EQ((*back)[0].data, disk.data);
}

TEST(FamilyTest, FamiliesFromTableInterpolatesGaps) {
  table::Schema schema({{"ts", table::DataType::kTimestamp},
                        {"name", table::DataType::kString},
                        {"v", table::DataType::kMap}});
  table::Table t(schema);
  auto row = [&](int64_t ts, const std::string& fam, double v) {
    table::ValueMap m;
    m["x"] = table::Value::Double(v);
    t.AppendRow({table::Value::Timestamp(ts), table::Value::String(fam),
                 table::Value::Map(m)});
  };
  row(0, "a", 1.0);
  row(60, "a", 2.0);
  row(120, "a", 3.0);
  row(0, "b", 10.0);
  row(120, "b", 30.0);  // b missing at ts=60
  auto fams = FamiliesFromTable(t);
  ASSERT_TRUE(fams.ok());
  ASSERT_EQ(fams->size(), 2u);
  const FeatureFamily& b = (*fams)[1];
  EXPECT_EQ(b.num_timestamps(), 3u);
  EXPECT_EQ(b.data(1, 0), 10.0);  // nearest observation fill (tie -> earlier)
}

TEST(FamilyTest, SliceFamilyRestrictsRows) {
  GroupingOptions opts;
  auto fams = BuildFamilies(MakeSeries(), opts);
  ASSERT_TRUE(fams.ok());
  FeatureFamily sliced = SliceFamily((*fams)[0], TimeRange{60, 180});
  EXPECT_EQ(sliced.num_timestamps(), 2u);
  EXPECT_EQ(sliced.timestamps[0], 60);
  EXPECT_EQ(sliced.num_features(), 3u);
}

TEST(FamilyTest, MergeFamiliesConcatenatesFeatures) {
  GroupingOptions opts;
  auto fams = BuildFamilies(MakeSeries(), opts);
  ASSERT_TRUE(fams.ok());
  FeatureFamily merged = MergeFamilies(*fams, "all");
  EXPECT_EQ(merged.name, "all");
  EXPECT_EQ(merged.num_features(), 6u);
  EXPECT_EQ(merged.num_timestamps(), 3u);
  EXPECT_EQ(merged.feature_names[0],
            "disk/disk{host=datanode-1,type=read_latency}");
}

TEST(FamilyTest, AlignFamiliesOntoUnionGrid) {
  FeatureFamily a;
  a.name = "a";
  a.feature_names = {"f"};
  a.timestamps = {0, 60, 120};
  a.data = la::Matrix(3, 1, {1, 2, 3});
  FeatureFamily b;
  b.name = "b";
  b.feature_names = {"g"};
  b.timestamps = {60, 180};
  b.data = la::Matrix(2, 1, {20, 40});
  std::vector<FeatureFamily> fams = {a, b};
  ASSERT_TRUE(AlignFamilies(&fams).ok());
  EXPECT_EQ(fams[0].num_timestamps(), 4u);
  EXPECT_EQ(fams[1].num_timestamps(), 4u);
  EXPECT_EQ(fams[0].timestamps,
            (std::vector<EpochSeconds>{0, 60, 120, 180}));
  EXPECT_EQ(fams[0].data(3, 0), 3.0);  // trailing fill for a
  EXPECT_EQ(fams[1].data(0, 0), 20.0);  // leading fill for b
  EXPECT_EQ(fams[1].data(2, 0), 20.0);  // 120 closer to 60 than 180... tie rule
}

}  // namespace
}  // namespace explainit::core
