#include "core/eval_metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace explainit::core {
namespace {

ScenarioLabels Labels() {
  ScenarioLabels l;
  l.causes = {"tcp_retransmits", "hypervisor_drops"};
  l.effects = {"latency", "save_time"};
  return l;
}

TEST(EvalMetricsTest, FirstCauseRankAndGain) {
  std::vector<std::string> ranking = {"latency", "save_time",
                                      "tcp_retransmits", "noise"};
  RankingMetrics m = EvaluateRanking(ranking, Labels());
  EXPECT_EQ(m.first_cause_rank, 3u);
  EXPECT_NEAR(m.discounted_gain, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.log_discounted_gain, 1.0 / std::log2(4.0), 1e-12);
  EXPECT_FALSE(m.failed);
}

TEST(EvalMetricsTest, PerfectScoreAtRankOne) {
  RankingMetrics m = EvaluateRanking({"hypervisor_drops"}, Labels());
  EXPECT_EQ(m.first_cause_rank, 1u);
  EXPECT_EQ(m.discounted_gain, 1.0);
  EXPECT_NEAR(m.log_discounted_gain, 1.0, 1e-12);
}

TEST(EvalMetricsTest, FailureWhenNoCauseInTopK) {
  std::vector<std::string> ranking(30, "noise");
  ranking[25] = "tcp_retransmits";  // beyond the top-20 cutoff
  RankingMetrics m = EvaluateRanking(ranking, Labels(), 20);
  EXPECT_TRUE(m.failed);
  EXPECT_EQ(m.discounted_gain, 0.0);
  // Without a cutoff the cause is found.
  RankingMetrics m2 = EvaluateRanking(ranking, Labels(), 0);
  EXPECT_FALSE(m2.failed);
  EXPECT_EQ(m2.first_cause_rank, 26u);
}

TEST(EvalMetricsTest, SuccessAtK) {
  std::vector<std::string> ranking = {"a", "b", "c", "tcp_retransmits"};
  EXPECT_EQ(SuccessAtK(ranking, Labels(), 1), 0.0);
  EXPECT_EQ(SuccessAtK(ranking, Labels(), 3), 0.0);
  EXPECT_EQ(SuccessAtK(ranking, Labels(), 4), 1.0);
  EXPECT_EQ(SuccessAtK(ranking, Labels(), 100), 1.0);
}

TEST(EvalMetricsTest, SummaryMatchesHandComputation) {
  // Three scenarios: ranks 1, 4, failure.
  std::vector<std::vector<std::string>> rankings = {
      {"tcp_retransmits"},
      {"x", "y", "z", "hypervisor_drops"},
      {"x", "y", "z"},
  };
  std::vector<ScenarioLabels> labels = {Labels(), Labels(), Labels()};
  std::vector<RankingMetrics> per;
  for (size_t i = 0; i < 3; ++i) {
    per.push_back(EvaluateRanking(rankings[i], labels[i]));
  }
  MethodSummary s = SummarizeMethod(per, rankings, labels);
  // Average: (1 + 0.25 + 0) / 3.
  EXPECT_NEAR(s.average_gain, 1.25 / 3.0, 1e-12);
  // Harmonic with 0.001 failure floor: 3 / (1/1 + 1/0.25 + 1/0.001).
  EXPECT_NEAR(s.harmonic_mean_gain, 3.0 / (1.0 + 4.0 + 1000.0), 1e-12);
  EXPECT_NEAR(s.success_top1, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.success_top5, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.success_top20, 2.0 / 3.0, 1e-12);
  EXPECT_GT(s.stdev_gain, 0.0);
}

TEST(EvalMetricsTest, PaperScaleSanity) {
  // The paper's Table 6 harmonic means are ~0.002-0.009 because failures
  // dominate the harmonic mean; reproduce that behaviour.
  std::vector<std::vector<std::string>> rankings;
  std::vector<ScenarioLabels> labels;
  std::vector<RankingMetrics> per;
  for (int i = 0; i < 11; ++i) {
    ScenarioLabels l;
    l.causes = {"cause"};
    labels.push_back(l);
    if (i < 2) {
      rankings.push_back({"noise1", "noise2"});  // failure
    } else {
      rankings.push_back({"cause"});
    }
    per.push_back(EvaluateRanking(rankings.back(), labels.back()));
  }
  MethodSummary s = SummarizeMethod(per, rankings, labels);
  EXPECT_LT(s.harmonic_mean_gain, 0.01);
  EXPECT_GT(s.average_gain, 0.5);
}

}  // namespace
}  // namespace explainit::core
