#include "table/table.h"

#include <gtest/gtest.h>

namespace explainit::table {
namespace {

Table MakeSample() {
  Schema schema({{"timestamp", DataType::kTimestamp},
                 {"name", DataType::kString},
                 {"value", DataType::kDouble}});
  Table t(schema);
  t.AppendRow({Value::Timestamp(60), Value::String("runtime"),
               Value::Double(10.0)});
  t.AppendRow({Value::Timestamp(120), Value::String("latency"),
               Value::Double(5.0)});
  t.AppendRow({Value::Timestamp(0), Value::String("runtime"),
               Value::Double(12.0)});
  return t;
}

TEST(SchemaTest, FieldIndexCaseInsensitive) {
  Schema s({{"Timestamp", DataType::kTimestamp}, {"value", DataType::kDouble}});
  EXPECT_EQ(s.FieldIndex("timestamp"), 0u);
  EXPECT_EQ(s.FieldIndex("VALUE"), 1u);
  EXPECT_FALSE(s.FieldIndex("missing").has_value());
}

TEST(SchemaTest, ToStringListsFields) {
  Schema s({{"a", DataType::kDouble}, {"b", DataType::kString}});
  EXPECT_EQ(s.ToString(), "(a: DOUBLE, b: STRING)");
}

TEST(TableTest, AppendAndAccess) {
  Table t = MakeSample();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.At(0, 1).AsString(), "runtime");
  EXPECT_EQ(t.At(1, 2).AsDouble(), 5.0);
  auto row = t.Row(2);
  EXPECT_EQ(row[0].AsTimestamp(), 0);
  EXPECT_EQ(row[2].AsDouble(), 12.0);
}

TEST(TableTest, SelectColumnsReorders) {
  Table t = MakeSample();
  auto sel = t.SelectColumns({"value", "name"});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->num_columns(), 2u);
  EXPECT_EQ(sel->schema().field(0).name, "value");
  EXPECT_EQ(sel->At(0, 0).AsDouble(), 10.0);
  EXPECT_EQ(sel->At(0, 1).AsString(), "runtime");
}

TEST(TableTest, SelectMissingColumnFails) {
  Table t = MakeSample();
  auto sel = t.SelectColumns({"nope"});
  EXPECT_FALSE(sel.ok());
  EXPECT_TRUE(sel.status().IsNotFound());
}

TEST(TableTest, SortAscendingByTimestamp) {
  Table t = MakeSample();
  auto sorted = t.SortBy("timestamp");
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->At(0, 0).AsTimestamp(), 0);
  EXPECT_EQ(sorted->At(1, 0).AsTimestamp(), 60);
  EXPECT_EQ(sorted->At(2, 0).AsTimestamp(), 120);
}

TEST(TableTest, SortDescendingByValue) {
  Table t = MakeSample();
  auto sorted = t.SortBy("value", /*ascending=*/false);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->At(0, 2).AsDouble(), 12.0);
  EXPECT_EQ(sorted->At(2, 2).AsDouble(), 5.0);
}

TEST(TableTest, SortIsStable) {
  Schema schema({{"k", DataType::kInt64}, {"ord", DataType::kInt64}});
  Table t(schema);
  t.AppendRow({Value::Int(1), Value::Int(0)});
  t.AppendRow({Value::Int(0), Value::Int(1)});
  t.AppendRow({Value::Int(1), Value::Int(2)});
  t.AppendRow({Value::Int(0), Value::Int(3)});
  auto sorted = t.SortBy("k");
  ASSERT_TRUE(sorted.ok());
  // Equal keys preserve input order.
  EXPECT_EQ(sorted->At(0, 1).AsInt(), 1);
  EXPECT_EQ(sorted->At(1, 1).AsInt(), 3);
  EXPECT_EQ(sorted->At(2, 1).AsInt(), 0);
  EXPECT_EQ(sorted->At(3, 1).AsInt(), 2);
}

TEST(TableTest, UnionAll) {
  Table a = MakeSample();
  Table b = MakeSample();
  ASSERT_TRUE(a.UnionAll(b).ok());
  EXPECT_EQ(a.num_rows(), 6u);
  EXPECT_EQ(a.At(3, 1).AsString(), "runtime");
}

TEST(TableTest, UnionAllWidthMismatchFails) {
  Table a = MakeSample();
  Table b(Schema({{"x", DataType::kDouble}}));
  EXPECT_FALSE(a.UnionAll(b).ok());
}

TEST(TableTest, Truncate) {
  Table t = MakeSample();
  t.Truncate(1);
  EXPECT_EQ(t.num_rows(), 1u);
  t.Truncate(100);  // no-op past the end
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, ToStringShowsHeaderAndRows) {
  Table t = MakeSample();
  std::string s = t.ToString();
  EXPECT_NE(s.find("timestamp"), std::string::npos);
  EXPECT_NE(s.find("runtime"), std::string::npos);
  std::string truncated = t.ToString(1);
  EXPECT_NE(truncated.find("more rows"), std::string::npos);
}

TEST(TableTest, EmptyTable) {
  Table t;
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_columns(), 0u);
}

}  // namespace
}  // namespace explainit::table
