#include "table/value.h"

#include <gtest/gtest.h>

namespace explainit::table {
namespace {

TEST(ValueTest, NullDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_FALSE(v.AsBool());
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v = Value::Double(3.5);
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_EQ(v.AsDouble(), 3.5);
  EXPECT_EQ(v.AsInt(), 3);
  EXPECT_TRUE(v.AsBool());
  EXPECT_FALSE(Value::Double(0.0).AsBool());
}

TEST(ValueTest, IntAndTimestampDistinctTypes) {
  Value i = Value::Int(60);
  Value t = Value::Timestamp(60);
  EXPECT_EQ(i.type(), DataType::kInt64);
  EXPECT_EQ(t.type(), DataType::kTimestamp);
  EXPECT_EQ(t.AsTimestamp(), 60);
  EXPECT_EQ(t.ToString(), "1970-01-01 00:01");
  // Numeric cross-type equality still holds.
  EXPECT_TRUE(i.Equals(t));
}

TEST(ValueTest, StringConversions) {
  Value s = Value::String("42.5");
  EXPECT_EQ(s.AsDouble(), 42.5);
  EXPECT_EQ(s.AsInt(), 42);
  EXPECT_EQ(s.AsString(), "42.5");
  EXPECT_TRUE(s.AsBool());
  EXPECT_FALSE(Value::String("").AsBool());
}

TEST(ValueTest, BoolIsInt) {
  EXPECT_EQ(Value::Bool(true).AsInt(), 1);
  EXPECT_EQ(Value::Bool(false).AsInt(), 0);
}

TEST(ValueTest, MapAccess) {
  ValueMap m;
  m["host"] = Value::String("datanode-1");
  m["latency"] = Value::Double(12.0);
  Value v = Value::Map(m);
  EXPECT_EQ(v.type(), DataType::kMap);
  const ValueMap* got = v.AsMap();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->at("host").AsString(), "datanode-1");
  EXPECT_EQ(got->at("latency").AsDouble(), 12.0);
  EXPECT_EQ(Value::Double(1).AsMap(), nullptr);
}

TEST(ValueTest, MapCopyIsShallow) {
  ValueMap m;
  m["k"] = Value::Int(1);
  Value a = Value::Map(m);
  Value b = a;  // shares the map
  EXPECT_EQ(a.AsMap(), b.AsMap());
}

TEST(ValueTest, EqualsNullNeverEqual) {
  EXPECT_FALSE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
}

TEST(ValueTest, EqualsNumericCrossType) {
  EXPECT_TRUE(Value::Int(2).Equals(Value::Double(2.0)));
  EXPECT_FALSE(Value::Int(2).Equals(Value::Double(2.5)));
  EXPECT_FALSE(Value::Int(2).Equals(Value::String("2")));
}

TEST(ValueTest, EqualsStringsAndMaps) {
  EXPECT_TRUE(Value::String("a").Equals(Value::String("a")));
  EXPECT_FALSE(Value::String("a").Equals(Value::String("b")));
  ValueMap m1, m2;
  m1["x"] = Value::Int(1);
  m2["x"] = Value::Int(1);
  EXPECT_TRUE(Value::Map(m1).Equals(Value::Map(m2)));
  m2["y"] = Value::Int(2);
  EXPECT_FALSE(Value::Map(m1).Equals(Value::Map(m2)));
}

TEST(ValueTest, CompareOrdering) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  // Null sorts first.
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_GT(Value::Int(-100).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  // Strings lexicographic.
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::Double(2.25).ToString(), "2.25");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  ValueMap m;
  m["a"] = Value::Int(1);
  EXPECT_EQ(Value::Map(m).ToString(), "{a=1}");
}

TEST(ValueTest, DataTypeNames) {
  EXPECT_EQ(DataTypeName(DataType::kDouble), "DOUBLE");
  EXPECT_EQ(DataTypeName(DataType::kMap), "MAP");
  EXPECT_EQ(DataTypeName(DataType::kTimestamp), "TIMESTAMP");
}

}  // namespace
}  // namespace explainit::table
