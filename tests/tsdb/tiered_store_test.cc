// Tests of the tiered storage engine: head sealing, rollup tier
// construction, rollup-routed scans (with per-tier ScanStats), edge-bucket
// raw fallback and segment compaction.
#include <gtest/gtest.h>

#include <numeric>

#include "tsdb/rollup.h"
#include "tsdb/segment.h"
#include "tsdb/store.h"

namespace explainit::tsdb {
namespace {

StoreOptions InlineSealEvery(size_t points) {
  StoreOptions opts;
  opts.seal_max_points = points;
  opts.background_seal = false;
  opts.compact_min_segments = 0;
  return opts;
}

// One series, `n` points at a 10s cadence, value 1.0 each (so a bucket
// aggregate is trivially count/6-checkable).
SeriesStore MakeTenSecondStore(StoreOptions opts, size_t n = 60) {
  SeriesStore store(opts);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(
        store.Write("m", TagSet{{"h", "a"}}, static_cast<int64_t>(i) * 10, 1.0)
            .ok());
  }
  return store;
}

TEST(RollupTest, EffectiveTierStepPicksCoarsestDivisor) {
  EXPECT_EQ(EffectiveRollupTierStep(60), 60);
  EXPECT_EQ(EffectiveRollupTierStep(120), 60);
  EXPECT_EQ(EffectiveRollupTierStep(3600), 3600);
  EXPECT_EQ(EffectiveRollupTierStep(7200), 3600);
  EXPECT_EQ(EffectiveRollupTierStep(86400), 3600);
  EXPECT_EQ(EffectiveRollupTierStep(90), 0);  // no tier divides 90
  EXPECT_EQ(EffectiveRollupTierStep(30), 0);
  EXPECT_EQ(EffectiveRollupTierStep(0), 0);
}

TEST(RollupTest, BuildTierAggregatesPerBucket) {
  const std::vector<EpochSeconds> ts = {0, 30, 59, 60, 119, 180};
  const std::vector<double> vs = {1.0, 5.0, 3.0, -2.0, 4.0, 7.0};
  RollupTier tier = BuildRollupTier(ts, vs, 60);
  ASSERT_EQ(tier.points.size(), 3u);
  const RollupPoint& b0 = tier.points[0];
  EXPECT_EQ(b0.bucket, 0);
  EXPECT_EQ(b0.first_ts, 0);
  EXPECT_EQ(b0.last_ts, 59);
  EXPECT_EQ(b0.min, 1.0);
  EXPECT_EQ(b0.max, 5.0);
  EXPECT_EQ(b0.sum, 9.0);
  EXPECT_EQ(b0.count, 3u);
  const RollupPoint& b1 = tier.points[1];
  EXPECT_EQ(b1.bucket, 60);
  EXPECT_EQ(b1.min, -2.0);
  EXPECT_EQ(b1.max, 4.0);
  EXPECT_EQ(b1.count, 2u);
  EXPECT_EQ(tier.points[2].bucket, 180);
}

TEST(RollupTest, AlignToStepStartHandlesNegatives) {
  EXPECT_EQ(AlignToStepStart(0, 60), 0);
  EXPECT_EQ(AlignToStepStart(59, 60), 0);
  EXPECT_EQ(AlignToStepStart(60, 60), 60);
  EXPECT_EQ(AlignToStepStart(-1, 60), -60);
  EXPECT_EQ(AlignToStepStart(-60, 60), -60);
}

TEST(SegmentTest, SealBuildsAllTiersAndExtent) {
  CompressedBlock block;
  for (int64_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(block.Append(i * 60, static_cast<double>(i)).ok());
  }
  auto seg = SealedSegment::Seal(std::move(block));
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ((*seg)->num_points(), 120u);
  EXPECT_EQ((*seg)->min_timestamp(), 0);
  EXPECT_EQ((*seg)->max_timestamp(), 119 * 60);
  const RollupTier* minute = (*seg)->TierFor(60);
  ASSERT_NE(minute, nullptr);
  EXPECT_EQ(minute->points.size(), 120u);  // one point per minute
  const RollupTier* hour = (*seg)->TierFor(3600);
  ASSERT_NE(hour, nullptr);
  ASSERT_EQ(hour->points.size(), 2u);
  // Hour 0 holds minutes 0..59: sum = 59*60/2.
  EXPECT_EQ(hour->points[0].sum, 59.0 * 60.0 / 2.0);
  EXPECT_EQ(hour->points[0].count, 60u);
  EXPECT_EQ((*seg)->TierFor(17), nullptr);
}

TEST(SegmentTest, SealRejectsEmptyBlock) {
  EXPECT_FALSE(SealedSegment::Seal(CompressedBlock{}).ok());
}

TEST(TieredStoreTest, InlineSealingAtThreshold) {
  SeriesStore store = MakeTenSecondStore(InlineSealEvery(24));
  const StorageStats st = store.storage_stats();
  EXPECT_EQ(st.seals, 2u);  // 60 points, sealed at 24 and 48
  EXPECT_EQ(st.sealed_segments, 2u);
  EXPECT_EQ(st.sealed_points, 48u);
  EXPECT_EQ(st.head_points, 12u);
  EXPECT_EQ(store.num_points(), 60u);

  // Hint-free scans still see every point, raw.
  ScanRequest req;
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  EXPECT_EQ((*res)[0].timestamps.size(), 60u);
}

TEST(TieredStoreTest, FlushSealsEverything) {
  SeriesStore store = MakeTenSecondStore(InlineSealEvery(1000));
  EXPECT_EQ(store.storage_stats().sealed_segments, 0u);
  ASSERT_TRUE(store.Flush().ok());
  const StorageStats st = store.storage_stats();
  EXPECT_EQ(st.sealed_segments, 1u);
  EXPECT_EQ(st.head_points, 0u);
  EXPECT_EQ(st.sealed_points, 60u);
  // Idempotent: nothing left to seal.
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_EQ(store.storage_stats().seals, 1u);
}

TEST(TieredStoreTest, WritesContinueAfterSeal) {
  SeriesStore store = MakeTenSecondStore(InlineSealEvery(24));
  ASSERT_TRUE(store.Write("m", TagSet{{"h", "a"}}, 600, 2.0).ok());
  ScanRequest req;
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ((*res)[0].timestamps.size(), 61u);
  EXPECT_EQ((*res)[0].timestamps.back(), 600);
  EXPECT_EQ((*res)[0].values.back(), 2.0);
}

TEST(TieredStoreTest, RollupRoutedScanDecodesNoRawPoints) {
  SeriesStore store = MakeTenSecondStore(InlineSealEvery(1000));
  ASSERT_TRUE(store.Flush().ok());
  store.ResetScanStats();

  ScanRequest req;
  req.hints.min_step_seconds = 60;
  req.hints.rollup = RollupAggregate::kSum;
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  // 60 points x 10s = 10 minute-buckets of 6 points each, sum 6.0.
  ASSERT_EQ((*res)[0].timestamps.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*res)[0].timestamps[i], static_cast<int64_t>(i) * 60);
    EXPECT_EQ((*res)[0].values[i], 6.0);
  }
  const ScanStats st = store.scan_stats();
  EXPECT_EQ(st.points_decoded, 0u);  // the whole scan came from the tier
  EXPECT_EQ(st.rollup_points_returned, 10u);
  EXPECT_EQ(st.rollup_points_skipped, 60u);
  EXPECT_EQ(st.minute_tier_points, 10u);
  EXPECT_EQ(st.hour_tier_points, 0u);
  EXPECT_EQ(st.segments_rollup_served, 1u);
  EXPECT_EQ(st.segments_raw_fallback, 0u);
}

TEST(TieredStoreTest, CoarseHintUsesHourTier) {
  SeriesStore store(InlineSealEvery(1000));
  for (int64_t i = 0; i < 180; ++i) {  // 3 hours of minutely points
    ASSERT_TRUE(store.Write("m", TagSet{}, i * 60, 1.0).ok());
  }
  ASSERT_TRUE(store.Flush().ok());
  store.ResetScanStats();

  ScanRequest req;
  req.hints.min_step_seconds = 7200;  // 2h grid: hour tier divides it
  req.hints.rollup = RollupAggregate::kSum;
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ((*res)[0].timestamps.size(), 3u);
  for (double v : (*res)[0].values) EXPECT_EQ(v, 60.0);
  const ScanStats st = store.scan_stats();
  EXPECT_EQ(st.hour_tier_points, 3u);
  EXPECT_EQ(st.minute_tier_points, 0u);
  EXPECT_EQ(st.points_decoded, 0u);
}

TEST(TieredStoreTest, MinMaxAggregatesServeTierValues) {
  SeriesStore store(InlineSealEvery(1000));
  for (int64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        store.Write("m", TagSet{}, i * 10, static_cast<double>(i)).ok());
  }
  ASSERT_TRUE(store.Flush().ok());

  ScanRequest req;
  req.hints.min_step_seconds = 60;
  req.hints.rollup = RollupAggregate::kMin;
  auto mins = store.Scan(req);
  ASSERT_TRUE(mins.ok());
  ASSERT_EQ((*mins)[0].values.size(), 2u);
  EXPECT_EQ((*mins)[0].values[0], 0.0);
  EXPECT_EQ((*mins)[0].values[1], 6.0);

  req.hints.rollup = RollupAggregate::kMax;
  auto maxs = store.Scan(req);
  ASSERT_TRUE(maxs.ok());
  EXPECT_EQ((*maxs)[0].values[0], 5.0);
  EXPECT_EQ((*maxs)[0].values[1], 11.0);
}

TEST(TieredStoreTest, UnalignedWindowFallsBackToRaw) {
  SeriesStore store = MakeTenSecondStore(InlineSealEvery(1000));
  ASSERT_TRUE(store.Flush().ok());
  store.ResetScanStats();

  // [30, 600) cuts minute-bucket 0 in half: serving its tier row would
  // count the out-of-window points 0/10/20, so the segment must decode
  // raw. The store proves this from the bucket's first/last timestamps.
  ScanRequest req;
  req.range = {30, 600};
  req.hints.min_step_seconds = 60;
  req.hints.rollup = RollupAggregate::kSum;
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ((*res)[0].timestamps.size(), 57u);  // raw points 30..590
  EXPECT_EQ((*res)[0].timestamps[0], 30);
  const ScanStats st = store.scan_stats();
  EXPECT_EQ(st.segments_raw_fallback, 1u);
  EXPECT_EQ(st.segments_rollup_served, 0u);
  EXPECT_EQ(st.rollup_points_returned, 0u);
  EXPECT_EQ(st.points_decoded, 60u);
}

TEST(TieredStoreTest, AlignedWindowStaysOnTier) {
  SeriesStore store = MakeTenSecondStore(InlineSealEvery(1000));
  ASSERT_TRUE(store.Flush().ok());
  store.ResetScanStats();

  ScanRequest req;
  req.range = {60, 300};  // buckets 1..4, whole buckets only
  req.hints.min_step_seconds = 60;
  req.hints.rollup = RollupAggregate::kSum;
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ((*res)[0].timestamps.size(), 4u);
  EXPECT_EQ((*res)[0].timestamps.front(), 60);
  EXPECT_EQ((*res)[0].timestamps.back(), 240);
  const ScanStats st = store.scan_stats();
  EXPECT_EQ(st.segments_rollup_served, 1u);
  EXPECT_EQ(st.points_decoded, 0u);
}

TEST(TieredStoreTest, MixedTiersRecombineExactly) {
  // Two sealed segments + a dirty head, sealed mid-bucket (25 points per
  // seal at a 10s cadence = 250s, not minute-aligned): a full-window SUM
  // over the hinted scan must still equal the raw total, with bucket rows
  // from both segments sharing a bucket timestamp at the seam.
  SeriesStore store = MakeTenSecondStore(InlineSealEvery(25));
  ScanRequest req;
  req.hints.min_step_seconds = 60;
  req.hints.rollup = RollupAggregate::kSum;
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  const auto& s = (*res)[0];
  const double total =
      std::accumulate(s.values.begin(), s.values.end(), 0.0);
  EXPECT_EQ(total, 60.0);  // 60 raw points of 1.0
  const ScanStats st = store.scan_stats();
  EXPECT_EQ(st.segments_rollup_served, 2u);
  EXPECT_EQ(st.head_points_decoded, 10u);  // 60 - 2*25 raw head points
}

TEST(TieredStoreTest, UnsupportedStepScansRaw) {
  SeriesStore store = MakeTenSecondStore(InlineSealEvery(1000));
  ASSERT_TRUE(store.Flush().ok());
  ScanRequest req;
  req.hints.min_step_seconds = 90;  // no maintained tier divides 90
  req.hints.rollup = RollupAggregate::kSum;
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res)[0].timestamps.size(), 60u);  // raw
  EXPECT_EQ(store.scan_stats().rollup_points_returned, 0u);
}

TEST(TieredStoreTest, CompactionMergesSegmentRuns) {
  StoreOptions opts = InlineSealEvery(10);
  opts.compact_min_segments = 3;
  SeriesStore store = MakeTenSecondStore(opts);  // 6 seals -> compactions
  const StorageStats st = store.storage_stats();
  EXPECT_GT(st.compactions, 0u);
  EXPECT_LT(st.sealed_segments, 6u);

  ScanRequest req;
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res)[0].timestamps.size(), 60u);
  for (size_t i = 1; i < (*res)[0].timestamps.size(); ++i) {
    EXPECT_LT((*res)[0].timestamps[i - 1], (*res)[0].timestamps[i]);
  }
}

TEST(TieredStoreTest, CompactCollapsesToOneSegment) {
  SeriesStore store = MakeTenSecondStore(InlineSealEvery(10));
  EXPECT_EQ(store.storage_stats().sealed_segments, 6u);
  ASSERT_TRUE(store.Compact().ok());
  const StorageStats st = store.storage_stats();
  EXPECT_EQ(st.sealed_segments, 1u);
  EXPECT_EQ(st.head_points, 0u);
  EXPECT_EQ(st.sealed_points, 60u);

  // Rollups are rebuilt over the merged segment: a hinted scan now
  // serves every bucket from one segment.
  store.ResetScanStats();
  ScanRequest req;
  req.hints.min_step_seconds = 60;
  req.hints.rollup = RollupAggregate::kSum;
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ((*res)[0].values.size(), 10u);
  EXPECT_EQ(store.scan_stats().segments_rollup_served, 1u);
}

TEST(TieredStoreTest, TimePruningSkipsDisjointSegments) {
  SeriesStore store = MakeTenSecondStore(InlineSealEvery(30));  // 2 segs
  ASSERT_TRUE(store.Flush().ok());
  store.ResetScanStats();
  ScanRequest req;
  req.range = {0, 60};  // first segment only
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res)[0].timestamps.size(), 6u);
  // Only the overlapping segment decoded: 30 points, not 60.
  EXPECT_EQ(store.scan_stats().points_decoded, 30u);
}

TEST(TieredStoreTest, BackgroundSealerSealsEventually) {
  StoreOptions opts;
  opts.seal_max_points = 16;
  opts.background_seal = true;
  SeriesStore store(opts);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Write("m", TagSet{}, i * 10, 1.0).ok());
  }
  // Flush drains the background maintenance queue and seals the rest.
  ASSERT_TRUE(store.Flush().ok());
  const StorageStats st = store.storage_stats();
  EXPECT_GT(st.seals, 0u);
  EXPECT_EQ(st.head_points, 0u);
  EXPECT_EQ(st.sealed_points, 100u);
  ScanRequest req;
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res)[0].timestamps.size(), 100u);
}

TEST(TieredStoreTest, RetentionEvictsOnlyWholeExpiredSegments) {
  StoreOptions opts = InlineSealEvery(10);
  opts.retention_seconds = 295;
  SeriesStore store = MakeTenSecondStore(opts);  // ts 0..590, 6 segments
  // High-water 590 - TTL 295 = cutoff 295: the three segments whose
  // newest points are 90/190/290 are entirely expired; the segment
  // straddling the cutoff ([300, 390]) must survive whole.
  EXPECT_EQ(store.EvictExpired(), 3u);
  const StorageStats st = store.storage_stats();
  EXPECT_EQ(st.retention_evicted_segments, 3u);
  EXPECT_EQ(st.retention_evicted_points, 30u);
  EXPECT_EQ(st.sealed_points, 30u);
  auto res = store.Scan(ScanRequest{});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  ASSERT_EQ((*res)[0].timestamps.size(), 30u);
  EXPECT_EQ((*res)[0].timestamps.front(), 300);
  EXPECT_EQ((*res)[0].timestamps.back(), 590);
  // Idempotent until the high-water moves.
  EXPECT_EQ(store.EvictExpired(), 0u);
}

TEST(TieredStoreTest, RetentionNeverEvictsTheMutableHead) {
  StoreOptions opts = InlineSealEvery(10);
  opts.retention_seconds = 295;
  SeriesStore store = MakeTenSecondStore(opts);
  // A far-future burst moves the high-water so every sealed segment
  // expires; the burst itself (5 points, under the seal threshold) is
  // still in the head, and heads are never evicted.
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Write("m", TagSet{{"h", "a"}}, 10000 + i * 10, 2.0).ok());
  }
  EXPECT_EQ(store.EvictExpired(), 6u);
  auto res = store.Scan(ScanRequest{});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ((*res)[0].timestamps.size(), 5u);
  EXPECT_EQ((*res)[0].timestamps.front(), 10000);
  EXPECT_EQ(store.storage_stats().head_points, 5u);
}

TEST(TieredStoreTest, RetentionDisabledIsANoOp) {
  SeriesStore store = MakeTenSecondStore(InlineSealEvery(10));
  EXPECT_EQ(store.EvictExpired(), 0u);
  EXPECT_EQ(store.storage_stats().retention_evicted_segments, 0u);
}

}  // namespace
}  // namespace explainit::tsdb
