#include "tsdb/compression.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/random.h"

namespace explainit::tsdb {
namespace {

TEST(BitStreamTest, RoundTripMixedWidths) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  w.WriteBit(true);
  w.WriteBits(0xDEADBEEFCAFEBABEULL, 64);
  w.WriteBits(0, 5);
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_EQ(r.ReadBits(3).value(), 0b101u);
  EXPECT_TRUE(r.ReadBit().value());
  EXPECT_EQ(r.ReadBits(64).value(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(r.ReadBits(5).value(), 0u);
  EXPECT_EQ(r.bits_remaining(), 0u);
}

TEST(BitStreamTest, ReadPastEndFails) {
  BitWriter w;
  w.WriteBits(1, 1);
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_TRUE(r.ReadBit().ok());
  EXPECT_FALSE(r.ReadBit().ok());
}

TEST(CompressedBlockTest, SinglePoint) {
  CompressedBlock block;
  ASSERT_TRUE(block.Append(1000, 3.25).ok());
  auto points = block.Decode();
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 1u);
  EXPECT_EQ((*points)[0].first, 1000);
  EXPECT_EQ((*points)[0].second, 3.25);
}

TEST(CompressedBlockTest, RegularMinuteGridRoundTrip) {
  CompressedBlock block;
  Rng rng(1);
  std::vector<std::pair<EpochSeconds, double>> expected;
  double v = 100.0;
  for (int i = 0; i < 2880; ++i) {  // two days of minutes
    v += rng.Normal() * 0.5;
    const EpochSeconds t = 1500000000 + i * 60;
    expected.emplace_back(t, v);
    ASSERT_TRUE(block.Append(t, v).ok());
  }
  auto points = block.Decode();
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*points)[i].first, expected[i].first);
    EXPECT_EQ((*points)[i].second, expected[i].second) << i;
  }
}

TEST(CompressedBlockTest, RegularGridCompressesWell) {
  // Constant-delta timestamps + slowly varying values should compress far
  // below 16 bytes/point.
  CompressedBlock block;
  for (int i = 0; i < 1440; ++i) {
    ASSERT_TRUE(block.Append(i * 60, 42.0).ok());
  }
  const double bytes_per_point =
      static_cast<double>(block.byte_size()) / 1440.0;
  EXPECT_LT(bytes_per_point, 0.5);  // constant series ~2 bits/point
}

TEST(CompressedBlockTest, IrregularTimestampsRoundTrip) {
  CompressedBlock block;
  std::vector<EpochSeconds> ts = {0, 60, 121, 185, 185, 1000000, 1000060};
  std::vector<double> vs = {1.0, -2.5, 1e300, -1e-300, 0.0,
                            std::numeric_limits<double>::infinity(), 7.0};
  for (size_t i = 0; i < ts.size(); ++i) {
    ASSERT_TRUE(block.Append(ts[i], vs[i]).ok()) << i;
  }
  auto points = block.Decode();
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ((*points)[i].first, ts[i]);
    EXPECT_EQ((*points)[i].second, vs[i]);
  }
}

TEST(CompressedBlockTest, NanRoundTrip) {
  CompressedBlock block;
  ASSERT_TRUE(block.Append(0, std::nan("")).ok());
  ASSERT_TRUE(block.Append(60, 1.0).ok());
  ASSERT_TRUE(block.Append(120, std::nan("")).ok());
  auto points = block.Decode();
  ASSERT_TRUE(points.ok());
  EXPECT_TRUE(std::isnan((*points)[0].second));
  EXPECT_EQ((*points)[1].second, 1.0);
  EXPECT_TRUE(std::isnan((*points)[2].second));
}

TEST(CompressedBlockTest, RejectsDecreasingTimestamps) {
  CompressedBlock block;
  ASSERT_TRUE(block.Append(100, 1.0).ok());
  EXPECT_FALSE(block.Append(99, 2.0).ok());
}

TEST(CompressedBlockTest, NegativeDeltaOfDelta) {
  // Delta shrinks: 0, +100, +10 -> dod = -90.
  CompressedBlock block;
  ASSERT_TRUE(block.Append(0, 1.0).ok());
  ASSERT_TRUE(block.Append(100, 2.0).ok());
  ASSERT_TRUE(block.Append(110, 3.0).ok());
  auto points = block.Decode();
  ASSERT_TRUE(points.ok());
  EXPECT_EQ((*points)[2].first, 110);
}

// Flips the lowest mantissa bit, producing an XOR with 63 leading zeros —
// more than the 5-bit leading field can hold, so Append must clamp to 31.
double FlipLowBit(double v) {
  return std::bit_cast<double>(std::bit_cast<uint64_t>(v) ^ 1ull);
}

TEST(CompressedBlockTest, SnapshotRoundTripContinuesAppending) {
  CompressedBlock block;
  std::vector<std::pair<EpochSeconds, double>> expected;
  auto append = [&expected](CompressedBlock& blk, EpochSeconds ts, double v) {
    ASSERT_TRUE(blk.Append(ts, v).ok());
    expected.emplace_back(ts, v);
  };

  EpochSeconds t = 1600000000;
  double v = 42.0;
  append(block, t, v);
  append(block, t += 60, v);          // x == 0, dod == 0
  append(block, t += 60, v = 43.5);   // new XOR window
  append(block, t += 60, v = 43.25);  // another window
  append(block, t += 1000000, v);     // dod ≈ 1e6: 64-bit escape bucket
  append(block, t += 60, v = FlipLowBit(v));  // leading = 63, clamped to 31
  append(block, t += 60, v = FlipLowBit(v));  // x == 1 again: window reuse

  // Snapshot mid-stream, restore, and keep appending to the restored block.
  std::vector<uint8_t> buffer;
  block.Serialize(&buffer);
  size_t offset = 0;
  auto restored = CompressedBlock::Deserialize(buffer, &offset);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(offset, buffer.size());
  EXPECT_EQ(restored->num_points(), block.num_points());

  append(*restored, t += 60, v);                  // x == 0 after reload
  append(*restored, t += 60, v = FlipLowBit(v));  // reuse the reloaded window
  append(*restored, t += 5000000, v = -1.0);      // escape bucket again
  append(*restored, t += 60, v = 42.0);
  append(*restored, t, v);  // duplicate timestamp (dod flips sign)

  auto points = restored->Decode();
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*points)[i].first, expected[i].first) << i;
    EXPECT_EQ((*points)[i].second, expected[i].second) << i;
  }
}

TEST(CompressedBlockTest, SnapshotEveryFewPointsStaysLossless) {
  // Random walk with occasional timestamp jumps and low-bit perturbations,
  // snapshotting (serialize + deserialize) every 97 appends.
  Rng rng(9);
  CompressedBlock block;
  std::vector<std::pair<EpochSeconds, double>> expected;
  EpochSeconds t = 0;
  double v = 100.0;
  for (int i = 0; i < 600; ++i) {
    switch (rng.UniformInt(5)) {
      case 0:
        break;  // exact repeat: x == 0
      case 1:
        v = FlipLowBit(v);  // forces the leading > 31 clamp path
        break;
      default:
        v += rng.Normal();
    }
    t += rng.UniformInt(20) == 0 ? 1000000 : 60;  // occasional escape bucket
    ASSERT_TRUE(block.Append(t, v).ok()) << i;
    expected.emplace_back(t, v);
    if (i % 97 == 96) {
      std::vector<uint8_t> buffer;
      block.Serialize(&buffer);
      size_t offset = 0;
      auto restored = CompressedBlock::Deserialize(buffer, &offset);
      ASSERT_TRUE(restored.ok()) << i;
      block = std::move(restored).value();
    }
  }
  auto points = block.Decode();
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*points)[i].first, expected[i].first) << i;
    EXPECT_EQ((*points)[i].second, expected[i].second) << i;
  }
}

TEST(CompressedBlockTest, DeserializeConsumesConcatenatedBlocks) {
  CompressedBlock a, b;
  ASSERT_TRUE(a.Append(0, 1.0).ok());
  ASSERT_TRUE(a.Append(60, 2.0).ok());
  ASSERT_TRUE(b.Append(1000, -3.0).ok());
  std::vector<uint8_t> buffer;
  a.Serialize(&buffer);
  b.Serialize(&buffer);
  size_t offset = 0;
  auto ra = CompressedBlock::Deserialize(buffer, &offset);
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(ra->num_points(), 2u);
  auto rb = CompressedBlock::Deserialize(buffer, &offset);
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb->num_points(), 1u);
  EXPECT_EQ(offset, buffer.size());
  EXPECT_FALSE(CompressedBlock::Deserialize(buffer, &offset).ok());
}

// Property sweep over random walks with different volatilities.
class CompressionRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(CompressionRoundTrip, LosslessAcrossVolatility) {
  const double vol = GetParam();
  Rng rng(static_cast<uint64_t>(vol * 1000) + 7);
  CompressedBlock block;
  std::vector<double> expected;
  double v = 50.0;
  EpochSeconds t = 0;
  for (int i = 0; i < 500; ++i) {
    v += rng.Normal() * vol;
    t += 60 + (rng.UniformInt(10) == 0 ? rng.UniformInt(600) : 0);
    expected.push_back(v);
    ASSERT_TRUE(block.Append(t, v).ok());
  }
  auto points = block.Decode();
  ASSERT_TRUE(points.ok());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*points)[i].second, expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Volatility, CompressionRoundTrip,
                         ::testing::Values(0.0, 0.001, 0.1, 10.0, 1e6));

}  // namespace
}  // namespace explainit::tsdb
