#include "tsdb/store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <unistd.h>

namespace explainit::tsdb {
namespace {

SeriesStore MakeStore() {
  SeriesStore store;
  TagSet dn1{{"host", "datanode-1"}, {"type", "read_latency"}};
  TagSet dn2{{"host", "datanode-2"}, {"type", "read_latency"}};
  TagSet nn{{"host", "namenode-1"}, {"type", "read_latency"}};
  for (int i = 0; i < 10; ++i) {
    const EpochSeconds t = i * 60;
    EXPECT_TRUE(store.Write("disk", dn1, t, 1.0 + i).ok());
    EXPECT_TRUE(store.Write("disk", dn2, t, 2.0 + i).ok());
    EXPECT_TRUE(store.Write("disk", nn, t, 3.0 + i).ok());
    EXPECT_TRUE(
        store.Write("runtime", TagSet{{"component", "pipeline-1"}}, t, 10.0)
            .ok());
  }
  return store;
}

TEST(TagSetTest, EncodeSortedCanonical) {
  TagSet t{{"z", "1"}, {"a", "2"}};
  EXPECT_EQ(t.Encode(), "a=2,z=1");
}

TEST(TagSetTest, GetAndHas) {
  TagSet t{{"host", "web-1"}};
  EXPECT_EQ(t.Get("host"), "web-1");
  EXPECT_EQ(t.Get("missing"), "");
  EXPECT_TRUE(t.Has("host"));
  EXPECT_FALSE(t.Has("missing"));
}

TEST(TagSetTest, MatchesGlobFilter) {
  TagSet t{{"host", "datanode-7"}, {"dc", "us-east"}};
  EXPECT_TRUE(t.Matches(TagSet{}));  // empty filter matches all
  EXPECT_TRUE(t.Matches(TagSet{{"host", "datanode*"}}));
  EXPECT_TRUE(t.Matches(TagSet{{"host", "datanode-7"}, {"dc", "us-*"}}));
  EXPECT_FALSE(t.Matches(TagSet{{"host", "namenode*"}}));
  EXPECT_FALSE(t.Matches(TagSet{{"rack", "*"}}));  // missing key
}

TEST(StoreTest, CountsSeriesAndPoints) {
  SeriesStore store = MakeStore();
  EXPECT_EQ(store.num_series(), 4u);
  EXPECT_EQ(store.num_points(), 40u);
  EXPECT_GT(store.compressed_bytes(), 0u);
}

TEST(StoreTest, ListSeriesStableOrder) {
  SeriesStore store = MakeStore();
  auto metas = store.ListSeries();
  ASSERT_EQ(metas.size(), 4u);
  EXPECT_EQ(metas[0].metric_name, "disk");
  EXPECT_EQ(metas[0].tags.Get("host"), "datanode-1");
  EXPECT_EQ(metas[3].metric_name, "runtime");
}

TEST(StoreTest, SeriesMetaToString) {
  SeriesMeta m{"disk", TagSet{{"host", "dn-1"}}};
  EXPECT_EQ(m.ToString(), "disk{host=dn-1}");
}

TEST(StoreTest, ScanByMetricGlob) {
  SeriesStore store = MakeStore();
  ScanRequest req;
  req.metric_glob = "disk";
  req.range = {0, 600};
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 3u);
  for (const auto& s : *res) EXPECT_EQ(s.meta.metric_name, "disk");
}

TEST(StoreTest, ScanByTagFilter) {
  SeriesStore store = MakeStore();
  ScanRequest req;
  req.tag_filter = TagSet{{"host", "datanode*"}};
  req.range = {0, 600};
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 2u);
}

TEST(StoreTest, ScanRespectsTimeRange) {
  SeriesStore store = MakeStore();
  ScanRequest req;
  req.metric_glob = "runtime";
  req.range = {120, 300};  // minutes 2, 3, 4
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  EXPECT_EQ((*res)[0].timestamps.size(), 3u);
  EXPECT_EQ((*res)[0].timestamps[0], 120);
}

TEST(StoreTest, ScanValuesRoundTrip) {
  SeriesStore store = MakeStore();
  ScanRequest req;
  req.metric_glob = "disk";
  req.tag_filter = TagSet{{"host", "datanode-1"}};
  req.range = {0, 600};
  auto res = store.Scan(req);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*res)[0].values[i], 1.0 + static_cast<double>(i));
  }
}

TEST(StoreTest, ScanAlignedFillsGrid) {
  SeriesStore store;
  TagSet tags{{"h", "a"}};
  // Observations at minutes 0, 2, 3 only (minute 1, 4 missing).
  ASSERT_TRUE(store.Write("m", tags, 0, 1.0).ok());
  ASSERT_TRUE(store.Write("m", tags, 120, 3.0).ok());
  ASSERT_TRUE(store.Write("m", tags, 180, 4.0).ok());
  ScanRequest req;
  req.metric_glob = "m";
  req.range = {0, 300};
  auto res = store.ScanAligned(req);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  const auto& s = (*res)[0];
  ASSERT_EQ(s.values.size(), 5u);
  EXPECT_EQ(s.values[0], 1.0);
  EXPECT_EQ(s.values[1], 1.0);  // nearest non-null (tie prefers earlier)
  EXPECT_EQ(s.values[2], 3.0);
  EXPECT_EQ(s.values[3], 4.0);
  EXPECT_EQ(s.values[4], 4.0);  // trailing fill
  EXPECT_EQ(s.timestamps[4], 240);
}

TEST(StoreTest, ScanAlignedNoInterpolationLeavesNan) {
  SeriesStore store;
  ASSERT_TRUE(store.Write("m", TagSet{}, 0, 1.0).ok());
  ScanRequest req;
  req.metric_glob = "m";
  req.range = {0, 180};
  GridOptions opts;
  opts.interpolate_missing = false;
  auto res = store.ScanAligned(req, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res)[0].values[0], 1.0);
  EXPECT_TRUE(std::isnan((*res)[0].values[1]));
}

TEST(StoreTest, ScanAlignedRejectsEmptyRange) {
  SeriesStore store = MakeStore();
  ScanRequest req;
  req.range = {100, 100};
  EXPECT_FALSE(store.ScanAligned(req).ok());
}

TEST(StoreTest, ScanToTableShape) {
  SeriesStore store = MakeStore();
  ScanRequest req;
  req.metric_glob = "disk";
  req.tag_filter = TagSet{{"host", "datanode-1"}};
  req.range = {0, 300};
  auto t = store.ScanToTable(req);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 5u);
  EXPECT_EQ(t->schema().field(0).name, "timestamp");
  EXPECT_EQ(t->At(0, 1).AsString(), "disk");
  const table::ValueMap* tags = t->At(0, 2).AsMap();
  ASSERT_NE(tags, nullptr);
  EXPECT_EQ(tags->at("host").AsString(), "datanode-1");
  EXPECT_EQ(t->At(0, 3).AsDouble(), 1.0);
}

TEST(InterpolateTest, AllNanBecomesZero) {
  std::vector<double> v(4, std::nan(""));
  InterpolateMissing(v);
  for (double x : v) EXPECT_EQ(x, 0.0);
}

TEST(InterpolateTest, NearestNeighbourTieBreak) {
  const double nan = std::nan("");
  std::vector<double> v = {1.0, nan, nan, nan, 5.0};
  InterpolateMissing(v);
  EXPECT_EQ(v[1], 1.0);  // closer to left
  EXPECT_EQ(v[2], 1.0);  // tie -> earlier
  EXPECT_EQ(v[3], 5.0);  // closer to right
}

TEST(StoreTest, WriteSeriesBulk) {
  SeriesStore store;
  std::vector<EpochSeconds> ts = {0, 60, 120};
  std::vector<double> vs = {1, 2, 3};
  ASSERT_TRUE(store.WriteSeries("m", TagSet{}, ts, vs).ok());
  EXPECT_EQ(store.num_points(), 3u);
  EXPECT_FALSE(store.WriteSeries("m", TagSet{}, ts, {1.0}).ok());
}

}  // namespace
}  // namespace explainit::tsdb

namespace explainit::tsdb {
namespace {

TEST(SnapshotTest, RoundTripPreservesEverything) {
  SeriesStore store = MakeStore();
  const std::string path = ::testing::TempDir() + "/snap.bin";
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  SeriesStore loaded;
  ASSERT_TRUE(loaded.LoadSnapshot(path).ok());
  EXPECT_EQ(loaded.num_series(), store.num_series());
  EXPECT_EQ(loaded.num_points(), store.num_points());
  // Values decode identically.
  ScanRequest req;
  req.metric_glob = "disk";
  req.tag_filter = TagSet{{"host", "datanode-1"}};
  req.range = {0, 600};
  auto a = store.Scan(req);
  auto b = loaded.Scan(req);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  EXPECT_EQ((*a)[0].values, (*b)[0].values);
  EXPECT_EQ((*a)[0].timestamps, (*b)[0].timestamps);
  EXPECT_EQ((*a)[0].meta.tags.Encode(), (*b)[0].meta.tags.Encode());
}

TEST(SnapshotTest, WritesContinueAfterReload) {
  SeriesStore store;
  TagSet tags{{"h", "x"}};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Write("m", tags, i * 60, 1.0 + i).ok());
  }
  const std::string path = ::testing::TempDir() + "/snap2.bin";
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  SeriesStore loaded;
  ASSERT_TRUE(loaded.LoadSnapshot(path).ok());
  // Appends continue the compressed stream seamlessly.
  for (int i = 5; i < 10; ++i) {
    ASSERT_TRUE(loaded.Write("m", tags, i * 60, 1.0 + i).ok());
  }
  ScanRequest req;
  req.range = {0, 600};
  auto scan = loaded.Scan(req);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ((*scan)[0].values.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*scan)[0].values[i], 1.0 + i);
  }
}

TEST(SnapshotTest, RejectsMissingAndCorruptFiles) {
  SeriesStore store;
  EXPECT_FALSE(store.LoadSnapshot("/nonexistent/nope.bin").ok());
  const std::string path = ::testing::TempDir() + "/corrupt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_FALSE(store.LoadSnapshot(path).ok());
}

TEST(SnapshotTest, TruncatedSnapshotFailsCleanly) {
  SeriesStore store = MakeStore();
  const std::string path = ::testing::TempDir() + "/trunc.bin";
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  // Truncate the file to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  SeriesStore loaded;
  EXPECT_FALSE(loaded.LoadSnapshot(path).ok());
}

TEST(SnapshotTest, TieredStateRoundTripsWithDirtyHead) {
  // Seal every 4 points, no background thread: 10 points leave two sealed
  // segments and a dirty 2-point head per series. The v2 snapshot must
  // carry all three tiers and rebuild rollups on load.
  StoreOptions opts;
  opts.seal_max_points = 4;
  opts.background_seal = false;
  SeriesStore store(opts);
  const TagSet tags{{"h", "x"}};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Write("m", tags, i * 60, 1.0 + i).ok());
  }
  ASSERT_EQ(store.storage_stats().sealed_segments, 2u);
  ASSERT_EQ(store.storage_stats().head_points, 2u);

  const std::string path = ::testing::TempDir() + "/tiered.bin";
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  SeriesStore loaded(opts);
  ASSERT_TRUE(loaded.LoadSnapshot(path).ok());

  const StorageStats st = loaded.storage_stats();
  EXPECT_EQ(st.sealed_segments, 2u);
  EXPECT_EQ(st.sealed_points, 8u);
  EXPECT_EQ(st.head_points, 2u);
  EXPECT_EQ(loaded.num_points(), 10u);

  ScanRequest req;
  auto a = store.Scan(req);
  auto b = loaded.Scan(req);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)[0].timestamps, (*b)[0].timestamps);
  EXPECT_EQ((*a)[0].values, (*b)[0].values);

  // Rollup tiers were rebuilt at load: a hinted scan of the loaded store
  // serves the sealed segments from the minute tier.
  loaded.ResetScanStats();
  req.hints.min_step_seconds = 60;
  req.hints.rollup = RollupAggregate::kSum;
  auto rolled = loaded.Scan(req);
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(loaded.scan_stats().segments_rollup_served, 2u);

  // Writes keep going after reload: the head stream continues and the
  // next seal threshold still fires.
  for (int i = 10; i < 14; ++i) {
    ASSERT_TRUE(loaded.Write("m", tags, i * 60, 1.0 + i).ok());
  }
  EXPECT_EQ(loaded.storage_stats().sealed_segments, 3u);
  auto grown = loaded.Scan(ScanRequest{});
  ASSERT_TRUE(grown.ok());
  ASSERT_EQ((*grown)[0].values.size(), 14u);
  for (int i = 0; i < 14; ++i) {
    EXPECT_EQ((*grown)[0].values[i], 1.0 + i);
  }
}

TEST(SnapshotTest, SeedV1FormatStillLoads) {
  // Hand-build a v1 (seed-format) snapshot byte stream: u32 magic "EXTS",
  // u64 series count, then per series metric / tag strings (u64 length
  // prefix) and a single compressed block. The tiered store must load it
  // with the block as the mutable head.
  CompressedBlock block;
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(block.Append(i * 60, 2.0 * static_cast<double>(i)).ok());
  }
  std::vector<uint8_t> buf;
  const uint32_t magic = 0x45585453;  // "EXTS"
  const uint64_t count = 1;
  buf.resize(sizeof(magic) + sizeof(count));
  std::memcpy(buf.data(), &magic, sizeof(magic));
  std::memcpy(buf.data() + sizeof(magic), &count, sizeof(count));
  auto put_string = [&buf](const std::string& s) {
    const uint64_t n = s.size();
    const size_t at = buf.size();
    buf.resize(at + sizeof(n) + s.size());
    std::memcpy(buf.data() + at, &n, sizeof(n));
    std::memcpy(buf.data() + at + sizeof(n), s.data(), s.size());
  };
  put_string("legacy");
  put_string("host=old-1");
  block.Serialize(&buf);

  const std::string path = ::testing::TempDir() + "/seed_v1.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), f), buf.size());
  std::fclose(f);

  SeriesStore loaded;
  ASSERT_TRUE(loaded.LoadSnapshot(path).ok());
  EXPECT_EQ(loaded.num_series(), 1u);
  EXPECT_EQ(loaded.num_points(), 6u);
  // v1 carried no segments: everything loads as head, nothing sealed.
  EXPECT_EQ(loaded.storage_stats().sealed_segments, 0u);
  EXPECT_EQ(loaded.storage_stats().head_points, 6u);

  ScanRequest req;
  auto res = loaded.Scan(req);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  EXPECT_EQ((*res)[0].meta.metric_name, "legacy");
  EXPECT_EQ((*res)[0].meta.tags.Get("host"), "old-1");
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ((*res)[0].timestamps[i], i * 60);
    EXPECT_EQ((*res)[0].values[i], 2.0 * static_cast<double>(i));
  }
  // A resave upgrades to the tiered (v2) format transparently.
  const std::string path2 = ::testing::TempDir() + "/seed_v1_resaved.bin";
  ASSERT_TRUE(loaded.SaveSnapshot(path2).ok());
  SeriesStore again;
  ASSERT_TRUE(again.LoadSnapshot(path2).ok());
  EXPECT_EQ(again.num_points(), 6u);
}

TEST(StoreTest, ScanToTableHonoursProjectionHint) {
  SeriesStore store;
  const TagSet tags{{"host", "h0"}, {"dc", "d0"}};
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Write("cpu", tags, i * 60, i * 1.0).ok());
  }
  ScanRequest req;
  req.range = {0, 300};

  // No projection: all four standard columns.
  auto full = store.ScanToTable(req);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->num_columns(), 4u);
  EXPECT_EQ(full->num_rows(), 5u);

  // Projection naming two columns (case-insensitively): only those are
  // materialised, in the canonical order.
  req.hints.projection = {"VALUE", "timestamp"};
  auto pruned = store.ScanToTable(req);
  ASSERT_TRUE(pruned.ok());
  ASSERT_EQ(pruned->num_columns(), 2u);
  EXPECT_EQ(pruned->schema().field(0).name, "timestamp");
  EXPECT_EQ(pruned->schema().field(1).name, "value");
  EXPECT_EQ(pruned->num_rows(), 5u);
  EXPECT_EQ(pruned->At(2, 1).AsDouble(), 2.0);

  // A projection naming none of the standard columns keeps all four so
  // "column not found" errors surface with their natural wording.
  req.hints.projection = {"bogus"};
  auto fallback = store.ScanToTable(req);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback->num_columns(), 4u);
}

}  // namespace
}  // namespace explainit::tsdb
