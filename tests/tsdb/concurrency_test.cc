// Write/scan concurrency stress over the tiered store. Scans snapshot
// each series under its stripe lock (sealed segments by shared_ptr, head
// by block copy), so a reader racing the writers — and the background
// sealer — must always observe a prefix-consistent history: timestamps
// strictly increasing and every value matching its timestamp. Run under
// TSan by ci/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "tsdb/rollup.h"
#include "tsdb/store.h"

namespace explainit::tsdb {
namespace {

constexpr size_t kWriters = 4;
constexpr size_t kReaders = 3;
constexpr int64_t kPointsPerWriter = 2000;

// value == timestamp lets a reader validate any observed prefix without
// coordination: a torn or non-prefix snapshot breaks one of the asserts.
void CheckSeries(const SeriesData& s) {
  ASSERT_EQ(s.timestamps.size(), s.values.size());
  for (size_t i = 0; i < s.timestamps.size(); ++i) {
    if (i > 0) ASSERT_LT(s.timestamps[i - 1], s.timestamps[i]);
    ASSERT_EQ(s.values[i], static_cast<double>(s.timestamps[i]));
  }
}

TEST(ConcurrencyTest, ParallelWritersAndScannersStayConsistent) {
  StoreOptions opts;
  opts.seal_max_points = 64;  // seal often so scans cross tiers
  opts.seal_max_bytes = 1 << 20;
  opts.background_seal = true;
  opts.compact_min_segments = 4;
  SeriesStore store(opts);

  std::atomic<bool> done{false};
  std::atomic<size_t> scans_run{0};
  std::vector<std::thread> threads;

  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, w] {
      const TagSet tags{{"writer", std::to_string(w)}};
      for (int64_t i = 0; i < kPointsPerWriter; ++i) {
        const int64_t ts = i * 10;
        ASSERT_TRUE(
            store.Write("stress", tags, ts, static_cast<double>(ts)).ok());
      }
    });
  }

  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&store, &done, &scans_run, r] {
      // do-while: at least one scan even if the writers (and `done`)
      // beat this thread's first iteration on a small machine.
      do {
        ScanRequest req;
        if (r == 0) {
          // One reader exercises the rollup route concurrently with
          // sealing; the others scan raw.
          req.hints.min_step_seconds = 60;
          req.hints.rollup = RollupAggregate::kMax;
        }
        auto res = store.Scan(req);
        ASSERT_TRUE(res.ok());
        for (const SeriesData& s : *res) {
          if (r == 0) {
            // Rollup rows carry bucket timestamps. Segments sealed
            // mid-bucket each emit a row for the shared bucket, so the
            // sequence is non-decreasing rather than strict.
            ASSERT_EQ(s.timestamps.size(), s.values.size());
            for (size_t i = 1; i < s.timestamps.size(); ++i) {
              ASSERT_LE(s.timestamps[i - 1], s.timestamps[i]);
            }
          } else {
            CheckSeries(s);
          }
        }
        scans_run.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }

  for (size_t w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  for (size_t r = 0; r < kReaders; ++r) threads[kWriters + r].join();

  // Quiesce: every head sealed, background queue drained, no deferred
  // maintenance errors.
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_GT(scans_run.load(), 0u);
  EXPECT_EQ(store.num_series(), kWriters);
  EXPECT_EQ(store.num_points(),
            kWriters * static_cast<size_t>(kPointsPerWriter));

  auto final = store.Scan(ScanRequest{});
  ASSERT_TRUE(final.ok());
  ASSERT_EQ(final->size(), kWriters);
  for (const SeriesData& s : *final) {
    ASSERT_EQ(s.timestamps.size(), static_cast<size_t>(kPointsPerWriter));
    CheckSeries(s);
  }
  const StorageStats st = store.storage_stats();
  EXPECT_GT(st.seals, 0u);
  EXPECT_EQ(st.head_points, 0u);
}

TEST(ConcurrencyTest, ConcurrentFlushAndWritesDontLosePoints) {
  StoreOptions opts;
  opts.seal_max_points = 32;
  opts.background_seal = true;
  SeriesStore store(opts);

  std::thread writer([&store] {
    for (int64_t i = 0; i < 1000; ++i) {
      ASSERT_TRUE(store.Write("m", TagSet{}, i, static_cast<double>(i)).ok());
    }
  });
  std::thread flusher([&store] {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(store.Flush().ok());
    }
  });
  writer.join();
  flusher.join();
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_EQ(store.num_points(), 1000u);
  auto res = store.Scan(ScanRequest{});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  CheckSeries((*res)[0]);
  EXPECT_EQ((*res)[0].timestamps.size(), 1000u);
}

}  // namespace
}  // namespace explainit::tsdb
