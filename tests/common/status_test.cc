#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace explainit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad lambda");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad lambda");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad lambda");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

Status FailingFn() { return Status::NotFound("metric"); }

Status Propagates() {
  EXPLAINIT_RETURN_IF_ERROR(FailingFn());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = Propagates();
  EXPECT_TRUE(s.IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("index");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  EXPLAINIT_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = Quarter(6);  // 6/2 = 3, odd -> error on second step
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

}  // namespace
}  // namespace explainit
