#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace explainit {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounded) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit in 1000 draws
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.1);
  // Large-mean path (normal approximation).
  sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(3);
  auto perm = RandomPermutation(50, rng);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, FillNormalFills) {
  Rng rng(17);
  std::vector<double> buf(1000, -1.0);
  rng.FillNormal(buf.data(), buf.size());
  double sum = 0.0;
  for (double v : buf) sum += v;
  EXPECT_LT(std::abs(sum / 1000.0), 0.2);
}

}  // namespace
}  // namespace explainit
