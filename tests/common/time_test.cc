#include "common/time_util.h"

#include <gtest/gtest.h>

namespace explainit {
namespace {

TEST(TimeTest, AlignToMinuteFloors) {
  EXPECT_EQ(AlignToMinute(0), 0);
  EXPECT_EQ(AlignToMinute(59), 0);
  EXPECT_EQ(AlignToMinute(60), 60);
  EXPECT_EQ(AlignToMinute(61), 60);
  EXPECT_EQ(AlignToMinute(-1), -60);
}

TEST(TimeTest, RangeContains) {
  TimeRange r{100, 200};
  EXPECT_TRUE(r.Contains(100));
  EXPECT_TRUE(r.Contains(199));
  EXPECT_FALSE(r.Contains(200));
  EXPECT_FALSE(r.Contains(99));
}

TEST(TimeTest, RangeDurationAndMinutes) {
  TimeRange r{0, 3600};
  EXPECT_EQ(r.DurationSeconds(), 3600);
  EXPECT_EQ(r.NumMinutes(), 60);
}

TEST(TimeTest, RangeOverlaps) {
  TimeRange a{0, 100};
  TimeRange b{50, 150};
  TimeRange c{100, 200};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));  // half-open ranges touch but do not overlap
}

TEST(TimeTest, FormatTimestampUtc) {
  EXPECT_EQ(FormatTimestamp(0), "1970-01-01 00:00");
  EXPECT_EQ(FormatTimestamp(86400 + 3660), "1970-01-02 01:01");
}

TEST(TimeTest, MonotonicAdvances) {
  const double a = MonotonicSeconds();
  const double b = MonotonicSeconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace explainit
