#include "common/strings.h"

#include <gtest/gtest.h>

namespace explainit {
namespace {

TEST(StringsTest, SplitBasic) {
  auto parts = StrSplit("web-1", '-');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "web");
  EXPECT_EQ(parts[1], "1");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = StrSplit("a--b", '-');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitNoSeparator) {
  auto parts = StrSplit("datanode", '-');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "datanode");
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("datanode-1", "datanode"));
  EXPECT_FALSE(StartsWith("data", "datanode"));
  EXPECT_TRUE(EndsWith("read_latency", "latency"));
  EXPECT_FALSE(EndsWith("latency", "read_latency"));
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("SELECT Avg"), "select avg");
  EXPECT_EQ(ToUpper("tag['x']"), "TAG['X']");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, GlobMatchExactAndStar) {
  EXPECT_TRUE(GlobMatch("datanode*", "datanode-1"));
  EXPECT_TRUE(GlobMatch("datanode*", "datanode"));
  EXPECT_FALSE(GlobMatch("datanode*", "namenode-1"));
  EXPECT_TRUE(GlobMatch("*latency*", "read_latency_ms"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "ac"));
}

TEST(StringsTest, GlobMatchBacktracking) {
  EXPECT_TRUE(GlobMatch("*ab*ab", "abxabxab"));
  EXPECT_FALSE(GlobMatch("*ab*abq", "abxabxab"));
  EXPECT_TRUE(GlobMatch("disk{host=datanode*}", "disk{host=datanode-7}"));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("GrOuP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "SELEC"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace explainit
