#include "simulator/scenarios.h"

#include <gtest/gtest.h>

#include "core/ranking.h"
#include "stats/pearson.h"

namespace explainit::sim {
namespace {

TEST(ScenarioTest, SuiteHasElevenScenarios) {
  auto specs = Table6Specs();
  EXPECT_EQ(specs.size(), 11u);
  std::set<std::string> names;
  for (const auto& s : specs) names.insert(s.name);
  EXPECT_EQ(names.size(), 11u);  // unique names
}

TEST(ScenarioTest, GeneratedShapeMatchesSpec) {
  ScenarioSpec spec;
  spec.name = "test";
  spec.seed = 1;
  spec.cause_family_size = 8;
  spec.num_effect_families = 3;
  spec.num_noise_families = 5;
  spec.num_seasonal_families = 2;
  Scenario s = GenerateScenario(spec, 256);
  EXPECT_EQ(s.target.num_timestamps(), 256u);
  EXPECT_EQ(s.target.num_features(), 1u);
  // 1 cause + 3 effects + 2 seasonal + 5 noise.
  EXPECT_EQ(s.families.size(), 11u);
  EXPECT_EQ(s.labels.causes.size(), 1u);
  EXPECT_EQ(s.labels.effects.size(), 3u);
  size_t features = 0;
  for (const auto& f : s.families) features += f.num_features();
  EXPECT_EQ(s.total_features, features);
}

TEST(ScenarioTest, DeterministicForSameSeed) {
  ScenarioSpec spec;
  spec.name = "det";
  spec.seed = 7;
  Scenario a = GenerateScenario(spec, 128);
  Scenario b = GenerateScenario(spec, 128);
  EXPECT_EQ(a.target.data, b.target.data);
  EXPECT_EQ(a.families[0].data, b.families[0].data);
}

TEST(ScenarioTest, CauseActuallyDrivesTarget) {
  ScenarioSpec spec;
  spec.name = "drive";
  spec.seed = 3;
  spec.cause_kind = CauseKind::kUnivariate;
  spec.cause_strength = 2.0;
  Scenario s = GenerateScenario(spec, 512);
  // Feature 0 of the cause family correlates strongly with the target.
  const double corr = stats::PearsonCorrelation(s.families[0].data.Col(0),
                                                s.target.data.Col(0));
  EXPECT_GT(corr, 0.6);
}

TEST(ScenarioTest, JointDenseHasWeakMarginals) {
  ScenarioSpec spec;
  spec.name = "joint";
  spec.seed = 4;
  spec.cause_kind = CauseKind::kJointDense;
  spec.cause_family_size = 32;
  spec.cause_feature_noise = 1.2;
  Scenario s = GenerateScenario(spec, 512);
  double max_corr = 0.0;
  for (size_t f = 0; f < 32; ++f) {
    max_corr = std::max(
        max_corr, std::abs(stats::PearsonCorrelation(
                      s.families[0].data.Col(f), s.target.data.Col(0))));
  }
  EXPECT_LT(max_corr, 0.75);  // no single feature gives it away
  // But the family mean recovers the signal.
  std::vector<double> mean(s.target.num_timestamps(), 0.0);
  for (size_t f = 0; f < 32; ++f) {
    auto col = s.families[0].data.Col(f);
    for (size_t i = 0; i < mean.size(); ++i) mean[i] += col[i] / 32.0;
  }
  EXPECT_GT(stats::PearsonCorrelation(mean, s.target.data.Col(0)), 0.7);
}

TEST(ScenarioTest, LaggedCauseLeadsTarget) {
  ScenarioSpec spec;
  spec.name = "lag";
  spec.seed = 5;
  spec.cause_kind = CauseKind::kLagged;
  spec.cause_lag = 3;
  spec.cause_strength = 2.0;
  spec.cause_feature_noise = 0.2;
  Scenario s = GenerateScenario(spec, 512);
  auto cause = s.families[0].data.Col(0);
  auto target = s.target.data.Col(0);
  // Correlation at the true lag beats contemporaneous correlation.
  std::vector<double> cause_shift(cause.begin(), cause.end() - 3);
  std::vector<double> target_shift(target.begin() + 3, target.end());
  const double lagged = stats::PearsonCorrelation(cause_shift, target_shift);
  const double contemporaneous = stats::PearsonCorrelation(cause, target);
  EXPECT_GT(lagged, contemporaneous);
}

TEST(ScenarioTest, EndToEndRankingFindsCauseInEasyScenario) {
  // Smoke test of the whole loop on scenario 1 at reduced scale.
  auto specs = Table6Specs(0.5);
  Scenario s = GenerateScenario(specs[0], 360);
  core::CorrMaxScorer scorer;
  auto table = core::RankFamilies(scorer, s.target, nullptr, s.families);
  ASSERT_TRUE(table.ok());
  core::RankingMetrics m;
  std::vector<std::string> names;
  for (const auto& row : table->rows) names.push_back(row.family_name);
  m = core::EvaluateRanking(names, s.labels);
  EXPECT_FALSE(m.failed);
  EXPECT_LE(m.first_cause_rank, 5u);
}

TEST(ScenarioTest, FeatureScaleGrowsFamilies) {
  auto small = Table6Specs(1.0);
  auto big = Table6Specs(2.0);
  EXPECT_EQ(big[0].cause_family_size, 2 * small[0].cause_family_size);
  EXPECT_EQ(big[0].num_noise_families, 2 * small[0].num_noise_families);
}

}  // namespace
}  // namespace explainit::sim
