#include "simulator/causal_network.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/pearson.h"

namespace explainit::sim {
namespace {

TEST(CausalNetworkTest, RejectsForwardEdges) {
  CausalNetwork net;
  NodeSpec bad;
  bad.metric_name = "a";
  bad.edges.push_back(Edge{0, 1.0, 0, LinkFn::kLinear});  // self/forward
  EXPECT_FALSE(net.AddNode(bad).ok());
}

TEST(CausalNetworkTest, BaseTrendSeasonNoise) {
  CausalNetwork net;
  NodeSpec n;
  n.metric_name = "m";
  n.base = 10.0;
  n.trend_per_step = 0.1;
  n.seasonal_amp = 2.0;
  n.seasonal_period = 24;
  n.noise_sd = 0.0;
  ASSERT_TRUE(net.AddNode(n).ok());
  Rng rng(1);
  la::Matrix v = net.Simulate(48, rng);
  EXPECT_NEAR(v(0, 0), 10.0, 1e-9);
  EXPECT_NEAR(v(6, 0), 10.0 + 0.6 + 2.0, 1e-9);  // sin peak at quarter period
  EXPECT_NEAR(v(24, 0), 10.0 + 2.4, 1e-9);        // sin(2pi)=0
}

TEST(CausalNetworkTest, LinearEdgePropagates) {
  CausalNetwork net;
  NodeSpec parent;
  parent.metric_name = "p";
  parent.base = 5.0;
  parent.noise_sd = 0.0;
  ASSERT_TRUE(net.AddNode(parent).ok());
  NodeSpec child;
  child.metric_name = "c";
  child.noise_sd = 0.0;
  child.edges.push_back(Edge{0, 2.0, 0, LinkFn::kLinear});
  ASSERT_TRUE(net.AddNode(child).ok());
  Rng rng(2);
  la::Matrix v = net.Simulate(4, rng);
  for (size_t t = 0; t < 4; ++t) EXPECT_NEAR(v(t, 1), 10.0, 1e-9);
}

TEST(CausalNetworkTest, LaggedEdgeShiftsInTime) {
  CausalNetwork net;
  NodeSpec parent;
  parent.metric_name = "p";
  parent.noise_sd = 1.0;
  ASSERT_TRUE(net.AddNode(parent).ok());
  NodeSpec child;
  child.metric_name = "c";
  child.noise_sd = 0.0;
  child.edges.push_back(Edge{0, 1.0, 2, LinkFn::kLinear});
  ASSERT_TRUE(net.AddNode(child).ok());
  Rng rng(3);
  la::Matrix v = net.Simulate(100, rng);
  for (size_t t = 2; t < 100; ++t) {
    EXPECT_NEAR(v(t, 1), v(t - 2, 0), 1e-9);
  }
}

TEST(CausalNetworkTest, ReluAndSaturatingLinks) {
  CausalNetwork net;
  NodeSpec parent;
  parent.metric_name = "p";
  parent.base = -3.0;
  parent.noise_sd = 0.0;
  ASSERT_TRUE(net.AddNode(parent).ok());
  NodeSpec relu;
  relu.metric_name = "r";
  relu.noise_sd = 0.0;
  relu.edges.push_back(Edge{0, 1.0, 0, LinkFn::kRelu});
  ASSERT_TRUE(net.AddNode(relu).ok());
  NodeSpec sat;
  sat.metric_name = "s";
  sat.noise_sd = 0.0;
  sat.edges.push_back(Edge{0, 2.0, 0, LinkFn::kSaturating});
  ASSERT_TRUE(net.AddNode(sat).ok());
  Rng rng(4);
  la::Matrix v = net.Simulate(2, rng);
  EXPECT_EQ(v(0, 1), 0.0);                           // relu clips negatives
  EXPECT_NEAR(v(0, 2), 2.0 * std::tanh(-3.0), 1e-9);  // saturating
}

TEST(CausalNetworkTest, NonnegativeClamps) {
  CausalNetwork net;
  NodeSpec n;
  n.metric_name = "m";
  n.base = -5.0;
  n.noise_sd = 0.0;
  n.nonnegative = true;
  ASSERT_TRUE(net.AddNode(n).ok());
  Rng rng(5);
  la::Matrix v = net.Simulate(3, rng);
  for (size_t t = 0; t < 3; ++t) EXPECT_EQ(v(t, 0), 0.0);
}

TEST(CausalNetworkTest, InterventionWindowAndPropagation) {
  CausalNetwork net;
  NodeSpec parent;
  parent.metric_name = "p";
  parent.base = 1.0;
  parent.noise_sd = 0.0;
  ASSERT_TRUE(net.AddNode(parent).ok());
  NodeSpec child;
  child.metric_name = "c";
  child.noise_sd = 0.0;
  child.edges.push_back(Edge{0, 1.0, 0, LinkFn::kLinear});
  ASSERT_TRUE(net.AddNode(child).ok());
  Intervention iv;
  iv.node = 0;
  iv.begin = 5;
  iv.end = 10;
  iv.add = 100.0;
  Rng rng(6);
  la::Matrix v = net.Simulate(15, rng, {iv});
  EXPECT_NEAR(v(4, 0), 1.0, 1e-9);
  EXPECT_NEAR(v(5, 0), 101.0, 1e-9);
  // Downstream node sees the intervened value (do-semantics).
  EXPECT_NEAR(v(5, 1), 101.0, 1e-9);
  EXPECT_NEAR(v(10, 1), 1.0, 1e-9);
}

TEST(CausalNetworkTest, InterventionShapeAndMul) {
  CausalNetwork net;
  NodeSpec n;
  n.metric_name = "m";
  n.base = 10.0;
  n.noise_sd = 0.0;
  ASSERT_TRUE(net.AddNode(n).ok());
  Intervention iv;
  iv.node = 0;
  iv.begin = 0;
  iv.end = 10;
  iv.mul = 0.5;
  iv.shape = [](size_t t) { return t % 2 == 0 ? 3.0 : 0.0; };
  Rng rng(7);
  la::Matrix v = net.Simulate(4, rng, {iv});
  EXPECT_NEAR(v(0, 0), 10.0 * 0.5 + 3.0, 1e-9);
  EXPECT_NEAR(v(1, 0), 5.0, 1e-9);
}

TEST(CausalNetworkTest, ArSmoothingRaisesAutocorrelation) {
  CausalNetwork net;
  NodeSpec smooth;
  smooth.metric_name = "s";
  smooth.ar = 0.8;
  ASSERT_TRUE(net.AddNode(smooth).ok());
  NodeSpec white;
  white.metric_name = "w";
  ASSERT_TRUE(net.AddNode(white).ok());
  Rng rng(8);
  la::Matrix v = net.Simulate(2000, rng);
  const std::vector<double> smooth_col = v.Col(0);
  const std::vector<double> white_col = v.Col(1);
  auto lag1 = [](const std::vector<double>& col) {
    return stats::PearsonCorrelation(
        std::vector<double>(col.begin(), col.end() - 1),
        std::vector<double>(col.begin() + 1, col.end()));
  };
  const double ac_smooth = lag1(smooth_col);
  const double ac_white = lag1(white_col);
  EXPECT_GT(ac_smooth, 0.6);
  EXPECT_LT(std::abs(ac_white), 0.1);
}

TEST(CausalNetworkTest, WriteToStoreRoundTrip) {
  CausalNetwork net;
  NodeSpec n;
  n.metric_name = "m";
  n.tags = tsdb::TagSet{{"host", "h1"}};
  n.base = 3.0;
  n.noise_sd = 0.0;
  ASSERT_TRUE(net.AddNode(n).ok());
  tsdb::SeriesStore store;
  Rng rng(9);
  ASSERT_TRUE(net.WriteTo(&store, 10, 0, rng).ok());
  EXPECT_EQ(store.num_series(), 1u);
  EXPECT_EQ(store.num_points(), 10u);
  tsdb::ScanRequest req;
  req.range = {0, 600};
  auto scan = store.Scan(req);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)[0].values[5], 3.0);
}

}  // namespace
}  // namespace explainit::sim
