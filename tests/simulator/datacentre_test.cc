#include "simulator/datacentre.h"

#include <gtest/gtest.h>

#include "simulator/case_studies.h"
#include "stats/pearson.h"

namespace explainit::sim {
namespace {

TEST(DatacentreTest, TopologyHasExpectedMetrics) {
  DatacentreConfig config;
  DatacentreModel model(config);
  auto names = model.MetricNames();
  auto has = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("overall_runtime"));
  EXPECT_TRUE(has("tcp_retransmits"));
  EXPECT_TRUE(has("namenode_rpc_latency_ms"));
  EXPECT_TRUE(has("disk_utilization"));
  EXPECT_TRUE(has("raid_controller_temp_c"));
  EXPECT_TRUE(has("runtime_pipeline0"));
  // Hidden drivers are not exported.
  EXPECT_FALSE(has("_hidden_scan_rate"));
  EXPECT_FALSE(has("_hidden_hypervisor_drops"));
}

TEST(DatacentreTest, PerHostMetricsFanOut) {
  DatacentreConfig config;
  config.num_datanodes = 4;
  DatacentreModel model(config);
  EXPECT_EQ(model.NodesByMetric("tcp_retransmits").size(), 5u);  // +namenode
  EXPECT_EQ(model.NodesByMetric("disk_read_latency_ms").size(), 4u);
  EXPECT_EQ(model.NodesByMetric("overall_runtime").size(), 1u);
}

TEST(DatacentreTest, HiddenNodesNotWrittenToStore) {
  DatacentreConfig config;
  DatacentreModel model(config);
  tsdb::SeriesStore store;
  Rng rng(1);
  ASSERT_TRUE(model.WriteTo(&store, 32, 0, rng).ok());
  for (const tsdb::SeriesMeta& meta : store.ListSeries()) {
    EXPECT_EQ(meta.metric_name.find("_hidden"), std::string::npos);
  }
  EXPECT_GT(store.num_series(), 40u);
}

TEST(DatacentreTest, RuntimeFollowsInputLoad) {
  DatacentreConfig config;
  DatacentreModel model(config);
  Rng rng(2);
  la::Matrix v = model.network().Simulate(600, rng);
  const size_t input = model.NodesByMetric("input_rate_pipeline0")[0];
  const size_t runtime = model.NodesByMetric("runtime_pipeline0")[0];
  const double corr =
      stats::PearsonCorrelation(v.Col(input), v.Col(runtime));
  EXPECT_GT(corr, 0.4);
}

TEST(DatacentreTest, KpiAggregatesPipelines) {
  DatacentreConfig config;
  DatacentreModel model(config);
  Rng rng(3);
  la::Matrix v = model.network().Simulate(400, rng);
  const size_t kpi = model.kpi_node();
  const size_t rt0 = model.NodesByMetric("runtime_pipeline0")[0];
  EXPECT_GT(stats::PearsonCorrelation(v.Col(kpi), v.Col(rt0)), 0.4);
}

TEST(CaseStudyTest, PacketDropRaisesRetransmitsInWindow) {
  CaseStudyWorld world = MakePacketDropCase(240, 11);
  tsdb::ScanRequest req;
  req.metric_glob = "tcp_retransmits";
  req.range = world.range;
  auto scan = world.store->Scan(req);
  ASSERT_TRUE(scan.ok());
  ASSERT_FALSE(scan->empty());
  // Mean inside the fault window far above outside.
  double inside = 0.0, outside = 0.0;
  size_t n_in = 0, n_out = 0;
  for (const auto& s : *scan) {
    for (size_t i = 0; i < s.timestamps.size(); ++i) {
      if (world.fault_window.Contains(s.timestamps[i])) {
        inside += s.values[i];
        ++n_in;
      } else {
        outside += s.values[i];
        ++n_out;
      }
    }
  }
  EXPECT_GT(inside / n_in, outside / n_out + 20.0);
}

TEST(CaseStudyTest, PacketDropRaisesKpiInWindow) {
  CaseStudyWorld world = MakePacketDropCase(240, 12);
  tsdb::ScanRequest req;
  req.metric_glob = "overall_runtime";
  req.range = world.range;
  auto scan = world.store->Scan(req);
  ASSERT_TRUE(scan.ok());
  const auto& s = (*scan)[0];
  double inside = 0.0, outside = 0.0;
  size_t n_in = 0, n_out = 0;
  for (size_t i = 0; i < s.timestamps.size(); ++i) {
    if (world.fault_window.Contains(s.timestamps[i])) {
      inside += s.values[i];
      ++n_in;
    } else {
      outside += s.values[i];
      ++n_out;
    }
  }
  EXPECT_GT(inside / n_in, 1.5 * (outside / n_out));
}

TEST(CaseStudyTest, HypervisorFixLowersRuntime) {
  // Figure 6: the buffer fix reduces runtimes ~10%.
  CaseStudyWorld broken = MakeHypervisorDropCase(480, 13, /*fixed=*/false);
  CaseStudyWorld fixed = MakeHypervisorDropCase(480, 13, /*fixed=*/true);
  auto mean_runtime = [](const CaseStudyWorld& w) {
    tsdb::ScanRequest req;
    req.metric_glob = "overall_runtime";
    req.range = w.range;
    auto scan = w.store->Scan(req);
    EXPECT_TRUE(scan.ok());
    double sum = 0.0;
    const auto& s = (*scan)[0];
    for (double v : s.values) sum += v;
    return sum / static_cast<double>(s.values.size());
  };
  const double before = mean_runtime(broken);
  const double after = mean_runtime(fixed);
  EXPECT_LT(after, before);
  EXPECT_GT((before - after) / before, 0.04);  // a clear improvement
}

TEST(CaseStudyTest, NamenodeScanPeriodicSpikes) {
  // Figure 7: 15-minute periodic spikes before the fix; none after.
  CaseStudyWorld world = MakeNamenodeScanCase(450, 14, /*fix_at_step=*/300);
  tsdb::ScanRequest req;
  req.metric_glob = "namenode_rpc_latency_ms";
  req.range = world.range;
  auto scan = world.store->Scan(req);
  ASSERT_TRUE(scan.ok());
  const auto& s = (*scan)[0];
  // Spike amplitude before vs after the fix.
  double before_max = 0.0, after_max = 0.0, before_min = 1e9;
  for (size_t i = 0; i < s.values.size(); ++i) {
    if (i < 300) {
      before_max = std::max(before_max, s.values[i]);
      before_min = std::min(before_min, s.values[i]);
    } else if (i > 310) {
      after_max = std::max(after_max, s.values[i]);
    }
  }
  EXPECT_GT(before_max, after_max * 1.5);
}

TEST(CaseStudyTest, NamenodeGcAnticorrelatedWithScans) {
  CaseStudyWorld world = MakeNamenodeScanCase(450, 15);
  tsdb::ScanRequest req;
  req.range = world.range;
  req.metric_glob = "namenode_gc_ms";
  auto gc = world.store->Scan(req);
  req.metric_glob = "namenode_rpc_rate";
  auto rpc = world.store->Scan(req);
  ASSERT_TRUE(gc.ok() && rpc.ok());
  const double corr = stats::PearsonCorrelation((*gc)[0].values,
                                                (*rpc)[0].values);
  EXPECT_LT(corr, -0.3);  // §5.3: smaller GC when scans run
}

TEST(CaseStudyTest, RaidWeeklyPeriodDetectable) {
  // Figure 8: weekly spikes over a month-plus of hourly data.
  CaseStudyWorld world = MakeRaidScrubCase(840, 16);
  tsdb::ScanRequest req;
  req.metric_glob = "overall_runtime";
  req.range = world.range;
  auto scan = world.store->Scan(req);
  ASSERT_TRUE(scan.ok());
  // Weekly period = 168 steps.
  double peak = 0.0, baseline = 0.0;
  size_t n_peak = 0, n_base = 0;
  const auto& s = (*scan)[0];
  for (size_t i = 0; i < s.values.size(); ++i) {
    if ((i % 168) < 4) {
      peak += s.values[i];
      ++n_peak;
    } else {
      baseline += s.values[i];
      ++n_base;
    }
  }
  EXPECT_GT(peak / n_peak, baseline / n_base * 1.3);
}

TEST(CaseStudyTest, RaidScheduleDisableAndCap) {
  // Figure 9: disabling the check kills the spikes; capping to 5% shrinks
  // them.
  RaidSchedule schedule;
  schedule.disable_from = 336;  // third week off
  schedule.disable_to = 336 + 168;
  schedule.cap_from = 336 + 168;  // capped afterwards
  CaseStudyWorld world = MakeRaidScrubCase(840, 17, schedule);
  tsdb::ScanRequest req;
  req.metric_glob = "disk_utilization";
  req.tag_filter = tsdb::TagSet{{"host", "datanode-0"}};
  req.range = world.range;
  auto scan = world.store->Scan(req);
  ASSERT_TRUE(scan.ok());
  const auto& s = (*scan)[0];
  auto scrub_mean = [&](size_t from, size_t to) {
    double acc = 0.0;
    size_t n = 0;
    for (size_t i = from; i < to && i < s.values.size(); ++i) {
      if ((i % 168) < 4) {
        acc += s.values[i];
        ++n;
      }
    }
    return acc / std::max<size_t>(1, n);
  };
  const double default_level = scrub_mean(0, 336);
  const double disabled_level = scrub_mean(336, 504);
  const double capped_level = scrub_mean(504, 840);
  EXPECT_GT(default_level, disabled_level + 4.0);
  EXPECT_GT(default_level, capped_level + 3.0);
  EXPECT_GT(capped_level, disabled_level - 1.0);
}

}  // namespace
}  // namespace explainit::sim
