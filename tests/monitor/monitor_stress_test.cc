// Concurrency stress for the monitoring subsystem, aimed at TSan (the CI
// matrix runs this suite under -fsanitize=thread): a periodic monitor on
// a compressed wall clock and a triggered monitor on the write tap, racing
// concurrent ingestion, SHOW MONITORS / history readers, register/drop
// churn and a mid-flight Stop().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "exec/worker_pool.h"
#include "monitor/monitor.h"
#include "sql/executor.h"
#include "tsdb/store.h"

namespace explainit::monitor {
namespace {

std::shared_ptr<tsdb::SeriesStore> MakeStore(size_t t, uint64_t seed) {
  auto store = std::make_shared<tsdb::SeriesStore>();
  Rng rng(seed);
  for (size_t i = 0; i < t; ++i) {
    const EpochSeconds ts = static_cast<int64_t>(i) * 60;
    const double rate = rng.Normal(1000.0, 150.0);
    const double runtime = 0.01 * rate + rng.Normal() * 0.4;
    EXPECT_TRUE(store
                    ->Write("pipeline_input_rate",
                            tsdb::TagSet{{"pipeline_name", "p1"}}, ts, rate)
                    .ok());
    EXPECT_TRUE(store
                    ->Write("pipeline_runtime",
                            tsdb::TagSet{{"pipeline_name", "p1"}}, ts,
                            runtime)
                    .ok());
    EXPECT_TRUE(store
                    ->Write("disk_noise", tsdb::TagSet{{"host", "dn-1"}}, ts,
                            rng.Normal(5.0, 1.0))
                    .ok());
  }
  return store;
}

std::string MonitorSql(const std::string& tail) {
  return "EXPLAIN (SELECT timestamp, AVG(value) AS y FROM tsdb "
         " WHERE metric_name = 'pipeline_runtime' GROUP BY timestamp) "
         "USING (SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb "
         " WHERE metric_name != 'pipeline_runtime' "
         " GROUP BY timestamp, metric_name) "
         "SCORE BY 'L2' TOP 3 BETWEEN 0 AND 3599 " +
         tail;
}

TEST(MonitorStressTest, ConcurrentIngestQueriesChurnAndStop) {
  constexpr size_t kSeedMinutes = 200;
  core::Engine engine(MakeStore(kSeedMinutes, 11));
  engine.RegisterStoreTable("tsdb", TimeRange{0, kSeedMinutes * 60});

  MonitorOptions options;
  options.tick_seconds = 0.002;
  // EVERY 60 (data-time) fires every ~50ms of wall time.
  options.wall_scale = 50e-3 / 60.0;
  options.anomaly.warmup_points = 8;
  options.trigger_cooldown_seconds = 0.05;
  MonitorService service(&engine, options);
  sql::Executor executor(&engine.catalog(), &engine.functions(), 1,
                         &exec::WorkerPool::Global());

  ASSERT_TRUE(service.Query(executor, MonitorSql("EVERY 60 INTO hist")).ok());
  ASSERT_TRUE(
      service.Query(executor, MonitorSql("TRIGGERED INTO trig_hist")).ok());
  service.Start();

  std::atomic<bool> done{false};

  // Time-major monotone ingestion past the seeded range; every 64th
  // target sample is a large excursion so the write tap fires triggers
  // while periodic runs are in flight.
  std::thread writer([&engine] {
    tsdb::SeriesStore& store = engine.store();
    EpochSeconds ts = static_cast<int64_t>(kSeedMinutes) * 60;
    for (int i = 0; i < 600; ++i, ts += 60) {
      const double runtime = (i % 64 == 63) ? 500.0 : 10.0;
      ASSERT_TRUE(store
                      .Write("pipeline_runtime",
                             tsdb::TagSet{{"pipeline_name", "p1"}}, ts,
                             runtime)
                      .ok());
      ASSERT_TRUE(store
                      .Write("pipeline_input_rate",
                             tsdb::TagSet{{"pipeline_name", "p1"}}, ts,
                             1000.0)
                      .ok());
      ASSERT_TRUE(store
                      .Write("disk_noise", tsdb::TagSet{{"host", "dn-1"}},
                             ts, 5.0)
                      .ok());
    }
  });

  std::thread statuses([&service, &engine, &done] {
    sql::Executor ex(&engine.catalog(), &engine.functions(), 1,
                     &exec::WorkerPool::Global());
    while (!done.load(std::memory_order_acquire)) {
      auto show = service.Query(ex, "SHOW MONITORS");
      EXPECT_TRUE(show.ok()) << show.status().ToString();
      (void)service.Statuses();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::thread history_reader([&engine, &done] {
    while (!done.load(std::memory_order_acquire)) {
      auto rows = engine.Sql("SELECT COUNT(*) AS n FROM hist");
      EXPECT_TRUE(rows.ok()) << rows.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  std::thread churn([&service, &engine] {
    sql::Executor ex(&engine.catalog(), &engine.functions(), 1,
                     &exec::WorkerPool::Global());
    for (int i = 0; i < 20; ++i) {
      auto reg =
          service.Query(ex, MonitorSql("EVERY 120 INTO churn_hist"));
      EXPECT_TRUE(reg.ok()) << reg.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      EXPECT_TRUE(service.Drop("churn_hist").ok());
    }
  });

  writer.join();
  churn.join();
  // Let a few more periodic slides land, then stop mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  done.store(true, std::memory_order_release);
  statuses.join();
  history_reader.join();
  service.Stop();

  // Every successful periodic run appended exactly one score table; a run
  // cancelled by Stop() counts as an error and appends nothing.
  bool saw_periodic = false;
  for (const MonitorStatus& s : service.Statuses()) {
    if (s.name != "hist") continue;
    saw_periodic = true;
    auto history = service.History("hist");
    ASSERT_TRUE(history.ok());
    EXPECT_EQ((*history)->num_runs(), s.runs_ok)
        << "errors: " << s.runs_error << " last: " << s.last_error;
    EXPECT_GE(s.runs_ok, 1u) << s.last_error;
  }
  EXPECT_TRUE(saw_periodic);
}

TEST(MonitorStressTest, StartStopCyclesWithInFlightRuns) {
  core::Engine engine(MakeStore(120, 12));
  engine.RegisterStoreTable("tsdb", TimeRange{0, 120 * 60});

  MonitorOptions options;
  options.tick_seconds = 0.001;
  options.wall_scale = 5e-3 / 60.0;  // EVERY 60 -> ~5ms cadence
  MonitorService service(&engine, options);
  sql::Executor executor(&engine.catalog(), &engine.functions(), 1,
                         &exec::WorkerPool::Global());
  ASSERT_TRUE(service.Query(executor, MonitorSql("EVERY 60 INTO hist")).ok());

  for (int cycle = 0; cycle < 5; ++cycle) {
    service.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.Stop();  // cancels whatever is mid-run
  }
  auto history = service.History("hist");
  ASSERT_TRUE(history.ok());
  const MonitorStatus s = service.Statuses().at(0);
  EXPECT_EQ((*history)->num_runs(), s.runs_ok) << s.last_error;
}

}  // namespace
}  // namespace explainit::monitor
