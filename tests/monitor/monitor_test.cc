#include "monitor/monitor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "exec/worker_pool.h"
#include "sql/executor.h"
#include "tsdb/store.h"

namespace explainit::monitor {
namespace {

// Same causal world as the engine tests, on a minute grid:
//   input_rate -> runtime (target) -> latency (effect); disk_noise is
//   independent.
std::shared_ptr<tsdb::SeriesStore> MakeStore(size_t t, uint64_t seed) {
  auto store = std::make_shared<tsdb::SeriesStore>();
  Rng rng(seed);
  for (size_t i = 0; i < t; ++i) {
    const EpochSeconds ts = static_cast<int64_t>(i) * 60;
    const double rate = rng.Normal(1000.0, 150.0);
    const double runtime = 0.01 * rate + rng.Normal() * 0.4;
    const double latency = 1.5 * runtime + rng.Normal() * 0.4;
    EXPECT_TRUE(store
                    ->Write("pipeline_input_rate",
                            tsdb::TagSet{{"pipeline_name", "p1"}}, ts, rate)
                    .ok());
    EXPECT_TRUE(store
                    ->Write("pipeline_runtime",
                            tsdb::TagSet{{"pipeline_name", "p1"}}, ts,
                            runtime)
                    .ok());
    EXPECT_TRUE(store
                    ->Write("pipeline_latency",
                            tsdb::TagSet{{"pipeline_name", "p1"}}, ts,
                            latency)
                    .ok());
    EXPECT_TRUE(store
                    ->Write("disk_noise", tsdb::TagSet{{"host", "dn-1"}}, ts,
                            rng.Normal(5.0, 1.0))
                    .ok());
  }
  return store;
}

// The standing query: 1h window sliding by 10 minutes, history into hist.
constexpr const char* kMonitorSql =
    "EXPLAIN (SELECT timestamp, AVG(value) AS y FROM tsdb "
    "         WHERE metric_name = 'pipeline_runtime' GROUP BY timestamp) "
    "USING (SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb "
    "       WHERE metric_name != 'pipeline_runtime' "
    "       GROUP BY timestamp, metric_name) "
    "SCORE BY 'L2' TOP 5 BETWEEN 0 AND 3599 EVERY 10m INTO hist";

// The one-shot equivalent of run k of kMonitorSql. BETWEEN only sets the
// Rank operator's scoring window; the monitor's shared scan additionally
// restricts the *data* each sub-select sees to the window, so the
// equivalent one-shot carries explicit timestamp bounds in every WHERE.
std::string OneShotForWindow(EpochSeconds w0, EpochSeconds w1) {
  const std::string lo = std::to_string(w0);
  const std::string hi = std::to_string(w1);
  return "EXPLAIN (SELECT timestamp, AVG(value) AS y FROM tsdb "
         "WHERE metric_name = 'pipeline_runtime' AND timestamp >= " +
         lo + " AND timestamp <= " + hi +
         " GROUP BY timestamp) "
         "USING (SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb "
         "WHERE metric_name != 'pipeline_runtime' AND timestamp >= " +
         lo + " AND timestamp <= " + hi +
         " GROUP BY timestamp, metric_name) "
         "SCORE BY 'L2' TOP 5 BETWEEN " +
         lo + " AND " + hi;
}

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : engine_(MakeStore(120, 7)) {
    engine_.RegisterStoreTable("tsdb", TimeRange{0, 120 * 60});
  }

  sql::Executor MakeExecutor() {
    return sql::Executor(&engine_.catalog(), &engine_.functions(), 1,
                         &exec::WorkerPool::Global());
  }

  core::Engine engine_;
};

TEST_F(MonitorTest, RegisterShowDropRoundTrip) {
  MonitorService service(&engine_);
  sql::Executor executor = MakeExecutor();

  auto reg = service.Query(executor, kMonitorSql);
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();
  EXPECT_EQ(reg->kind, sql::StatementKind::kExplain);
  ASSERT_EQ(reg->table.num_rows(), 1u);
  EXPECT_EQ(reg->table.At(0, 0).AsString(), "hist");
  EXPECT_EQ(service.active_monitors(), 1u);

  auto show = service.Query(executor, "SHOW MONITORS");
  ASSERT_TRUE(show.ok()) << show.status().ToString();
  ASSERT_EQ(show->table.num_rows(), 1u);
  EXPECT_EQ(show->table.At(0, 0).AsString(), "hist");
  EXPECT_EQ(show->table.At(0, 1).AsString(), "PERIODIC");
  EXPECT_EQ(show->table.At(0, 2).AsString(), "10m");

  auto dropped = service.Query(executor, "DROP MONITOR hist");
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(service.active_monitors(), 0u);
  auto again = service.Query(executor, "DROP MONITOR hist");
  EXPECT_TRUE(again.status().IsNotFound());
}

TEST_F(MonitorTest, RegistrationValidation) {
  MonitorService service(&engine_);
  sql::Executor executor = MakeExecutor();

  // A standing query needs an explicit BETWEEN window to slide.
  auto no_window = service.Query(
      executor,
      "EXPLAIN (SELECT timestamp, AVG(value) AS y FROM tsdb "
      " WHERE metric_name = 'pipeline_runtime' GROUP BY timestamp) "
      "USING (SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb "
      " WHERE metric_name != 'pipeline_runtime' "
      " GROUP BY timestamp, metric_name) EVERY 10m");
  EXPECT_TRUE(no_window.status().IsInvalidArgument())
      << no_window.status().ToString();

  // INTO must not collide with an unrelated catalog table.
  ASSERT_TRUE(service.Query(executor, kMonitorSql).ok());
  std::string colliding(kMonitorSql);
  colliding.replace(colliding.rfind("INTO hist"), 9, "INTO tsdb");
  auto collide = service.Query(executor, colliding);
  EXPECT_TRUE(collide.status().IsAlreadyExists())
      << collide.status().ToString();
  // Nor with a live monitor of the same name.
  auto dup = service.Query(executor, kMonitorSql);
  EXPECT_TRUE(dup.status().IsAlreadyExists()) << dup.status().ToString();

  // Without a monitor service, monitor statements are engine errors.
  auto direct = engine_.Query(kMonitorSql);
  EXPECT_TRUE(direct.status().IsInvalidArgument())
      << direct.status().ToString();
}

TEST_F(MonitorTest, PeriodicRunsAppendHistoryAndMatchOneShot) {
  MonitorService service(&engine_);
  sql::Executor executor = MakeExecutor();
  ASSERT_TRUE(service.Query(executor, kMonitorSql).ok());

  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(service.RunOnce("hist").ok()) << k;
  }
  auto history = service.History("hist");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ((*history)->num_runs(), 3u);

  std::vector<MonitorStatus> statuses = service.Statuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].runs_ok, 3u);
  EXPECT_EQ(statuses[0].runs_error, 0u);
  // Run 2's half-open window is run 0's slid by 2 * EVERY.
  EXPECT_EQ(statuses[0].last_window.start, 1200);
  EXPECT_EQ(statuses[0].last_window.end, 3600 + 1200);

  // The history is an ordinary engine-queryable table, and every run's
  // rows match the equivalent bounded one-shot EXPLAIN exactly (same
  // serial executor, same data -> bitwise-equal scores).
  for (int64_t k = 0; k < 3; ++k) {
    const EpochSeconds w0 = k * 600;
    const EpochSeconds w1 = 3599 + k * 600;
    auto runs = engine_.Sql(
        "SELECT rank, family, score, run_ts FROM hist WHERE run = " +
        std::to_string(k) + " ORDER BY rank");
    ASSERT_TRUE(runs.ok()) << runs.status().ToString();
    auto oneshot = engine_.Query(OneShotForWindow(w0, w1));
    ASSERT_TRUE(oneshot.ok()) << oneshot.status().ToString();
    ASSERT_EQ(runs->num_rows(), oneshot->table.num_rows()) << "run " << k;
    for (size_t r = 0; r < runs->num_rows(); ++r) {
      SCOPED_TRACE("run " + std::to_string(k) + " row " + std::to_string(r));
      EXPECT_EQ(runs->At(r, 0).AsInt(), oneshot->table.At(r, 0).AsInt());
      EXPECT_EQ(runs->At(r, 1).AsString(),
                oneshot->table.At(r, 1).AsString());
      EXPECT_EQ(runs->At(r, 2).AsDouble(),
                oneshot->table.At(r, 2).AsDouble());
      EXPECT_EQ(runs->At(r, 3).AsTimestamp(), w1);
    }
  }
}

TEST_F(MonitorTest, SharedScanReusesPointsAcrossSlides) {
  MonitorService service(&engine_);
  sql::Executor executor = MakeExecutor();
  ASSERT_TRUE(service.Query(executor, kMonitorSql).ok());
  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(service.RunOnce("hist").ok()) << k;
  }
  auto stats = service.ScanStats("hist");
  ASSERT_TRUE(stats.ok());
  // Run 0 pays a full store scan; later slides fetch only the delta and
  // reuse the overlapping 50 minutes of each window.
  EXPECT_GE(stats->full_scans, 1u);
  EXPECT_GE(stats->delta_scans, 2u);
  EXPECT_GT(stats->rows_reused, 0u);
  // Both sub-selects read through the one shared scan per run.
  EXPECT_GE(stats->consumer_reads, 6u);
}

TEST_F(MonitorTest, DropKeepsHistoryQueryableAndAllowsRebind) {
  MonitorService service(&engine_);
  sql::Executor executor = MakeExecutor();
  ASSERT_TRUE(service.Query(executor, kMonitorSql).ok());
  ASSERT_TRUE(service.RunOnce("hist").ok());
  ASSERT_TRUE(service.Drop("hist").ok());
  EXPECT_EQ(service.active_monitors(), 0u);

  auto rows = engine_.Sql("SELECT COUNT(*) AS n FROM hist");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GT(rows->At(0, 0).AsInt(), 0);

  // Re-registering INTO the same history table rebinds it (fresh runs).
  ASSERT_TRUE(service.Query(executor, kMonitorSql).ok());
  EXPECT_EQ(service.active_monitors(), 1u);
}

TEST_F(MonitorTest, TriggeredMonitorFiresOnInjectedAnomaly) {
  MonitorOptions options;
  options.tick_seconds = 0.002;
  options.anomaly.warmup_points = 8;
  options.trigger_cooldown_seconds = 0.0;
  MonitorService service(&engine_, options);
  sql::Executor executor = MakeExecutor();

  std::string sql(kMonitorSql);
  sql.replace(sql.rfind("EVERY 10m"), 9, "TRIGGERED");
  ASSERT_TRUE(service.Query(executor, sql).ok());
  service.Start();

  // A flat baseline for the target metric past the seeded data, then a
  // level shift: the write tap's EWMA flags it and the scheduler runs an
  // RCA over the trailing window ending at the anomaly.
  tsdb::SeriesStore& store = engine_.store();
  EpochSeconds ts = 120 * 60;
  for (int i = 0; i < 12; ++i, ts += 60) {
    ASSERT_TRUE(store
                    .Write("pipeline_runtime",
                           tsdb::TagSet{{"pipeline_name", "p1"}}, ts, 10.0)
                    .ok());
  }
  ASSERT_TRUE(store
                  .Write("pipeline_runtime",
                         tsdb::TagSet{{"pipeline_name", "p1"}}, ts, 50.0)
                  .ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  MonitorStatus status;
  while (std::chrono::steady_clock::now() < deadline) {
    status = service.Statuses().at(0);
    if (status.runs_ok + status.runs_error >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(status.triggers, 1u);
  ASSERT_GE(status.runs_ok, 1u) << status.last_error;
  // The triggered window keeps the statement's width and ends at the
  // anomalous sample.
  EXPECT_EQ(status.last_window.end, ts + 1);
  EXPECT_EQ(status.last_window.start, ts - 3599);
  auto history = service.History("hist");
  ASSERT_TRUE(history.ok());
  EXPECT_GE((*history)->num_runs(), 1u);
  service.Stop();
}

TEST_F(MonitorTest, TriggeredRunOnceWithoutPendingAnomalyFails) {
  MonitorService service(&engine_);
  sql::Executor executor = MakeExecutor();
  std::string sql(kMonitorSql);
  sql.replace(sql.rfind("EVERY 10m"), 9, "TRIGGERED");
  ASSERT_TRUE(service.Query(executor, sql).ok());
  auto status = service.RunOnce("hist");
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
  EXPECT_TRUE(service.RunOnce("nope").IsNotFound());
}

}  // namespace
}  // namespace explainit::monitor
