#include "monitor/anomaly.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

namespace explainit::monitor {
namespace {

TEST(AnomalyTest, WarmupReturnsZero) {
  AnomalyOptions options;
  options.warmup_points = 8;
  EwmaAnomalyDetector detector(options);
  for (size_t i = 0; i < options.warmup_points; ++i) {
    EXPECT_EQ(detector.Observe("s", 100.0 + i), 0.0) << i;
  }
  // First post-warmup point scores against the accumulated baseline.
  EXPECT_GT(detector.Observe("s", 1000.0), 0.0);
}

TEST(AnomalyTest, LevelShiftOnConstantSeriesTriggers) {
  AnomalyOptions options;
  options.warmup_points = 16;
  EwmaAnomalyDetector detector(options);
  for (int i = 0; i < 32; ++i) {
    detector.Observe("cpu", 4.0);
  }
  // Zero-variance baseline then a jump: the detector must clamp the
  // z-score at the threshold (not divide by zero) and flag it.
  const double z = detector.Observe("cpu", 9.0);
  EXPECT_TRUE(detector.IsAnomalous(z)) << z;
}

TEST(AnomalyTest, ConstantSeriesDoesNotTriggerOnItself) {
  EwmaAnomalyDetector detector;
  for (int i = 0; i < 256; ++i) {
    EXPECT_FALSE(detector.IsAnomalous(detector.Observe("flat", 7.5))) << i;
  }
}

TEST(AnomalyTest, StationaryNoiseStaysQuiet) {
  EwmaAnomalyDetector detector;  // default z_threshold = 6
  std::mt19937 rng(42);
  std::normal_distribution<double> noise(50.0, 2.0);
  for (int i = 0; i < 2000; ++i) {
    const double z = detector.Observe("noisy", noise(rng));
    EXPECT_FALSE(detector.IsAnomalous(z)) << "i=" << i << " z=" << z;
  }
  // A 20-sigma excursion after the same baseline does trigger.
  EXPECT_TRUE(detector.IsAnomalous(detector.Observe("noisy", 50.0 + 40.0)));
}

TEST(AnomalyTest, SeriesAreIndependent) {
  AnomalyOptions options;
  options.warmup_points = 4;
  EwmaAnomalyDetector detector(options);
  for (int i = 0; i < 16; ++i) {
    detector.Observe("a", 1.0);
    detector.Observe("b", 1000.0);
  }
  EXPECT_EQ(detector.num_series(), 2u);
  // 1000 is normal for b but a huge excursion for a.
  EXPECT_TRUE(detector.IsAnomalous(detector.Observe("a", 1000.0)));
  EXPECT_FALSE(detector.IsAnomalous(detector.Observe("b", 1000.0)));
}

TEST(AnomalyTest, ConcurrentObserversAreSafe) {
  EwmaAnomalyDetector detector;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&detector, t] {
      const std::string key = "series_" + std::to_string(t % 2);
      for (int i = 0; i < 1000; ++i) {
        detector.Observe(key, static_cast<double>(i % 10));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(detector.num_series(), 2u);
}

}  // namespace
}  // namespace explainit::monitor
