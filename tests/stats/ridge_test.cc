#include "stats/ridge.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "la/blas.h"

namespace explainit::stats {
namespace {

// Builds Y = X w + noise with a known linear signal.
struct LinearProblem {
  la::Matrix x;
  la::Matrix y;
};

LinearProblem MakeLinear(size_t t, size_t p, double noise, uint64_t seed) {
  Rng rng(seed);
  LinearProblem prob;
  prob.x = la::Matrix(t, p);
  rng.FillNormal(prob.x.data(), prob.x.size());
  std::vector<double> w(p);
  for (size_t j = 0; j < p; ++j) w[j] = rng.Normal();
  prob.y = la::Matrix(t, 1);
  for (size_t r = 0; r < t; ++r) {
    double acc = 0.0;
    for (size_t j = 0; j < p; ++j) acc += prob.x(r, j) * w[j];
    prob.y(r, 0) = acc + rng.Normal() * noise;
  }
  return prob;
}

TEST(RidgeTest, StrongSignalScoresHigh) {
  auto prob = MakeLinear(400, 5, 0.05, 1);
  RidgeRegression ridge;
  auto res = ridge.FitCv(prob.x, prob.y);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GT(res->cv_r2, 0.95);
}

TEST(RidgeTest, PureNoiseScoresNearZeroOrNegative) {
  Rng rng(2);
  la::Matrix x(300, 10), y(300, 1);
  rng.FillNormal(x.data(), x.size());
  rng.FillNormal(y.data(), y.size());
  RidgeRegression ridge;
  auto res = ridge.FitCv(x, y);
  ASSERT_TRUE(res.ok());
  EXPECT_LT(res->cv_r2, 0.15);  // out-of-sample: no spurious confidence
}

TEST(RidgeTest, DualPathMatchesPrimalOnSquareishData) {
  // Same problem solved with p < T (primal) and padded to p > T (dual);
  // signal columns identical, so scores should be close.
  auto prob = MakeLinear(120, 30, 0.1, 3);
  RidgeRegression ridge;
  auto primal = ridge.FitCv(prob.x, prob.y);
  ASSERT_TRUE(primal.ok());
  // Add 200 pure-noise columns to push into the dual regime.
  Rng rng(4);
  la::Matrix pad(120, 200);
  rng.FillNormal(pad.data(), pad.size());
  la::Matrix wide = prob.x.ConcatCols(pad);
  auto dual = ridge.FitCv(wide, prob.y);
  ASSERT_TRUE(dual.ok());
  EXPECT_GT(primal->cv_r2, 0.9);
  // The dual fit still detects the signal; 200 noise features on 120 rows
  // dilute the out-of-sample score but must not erase it.
  EXPECT_GT(dual->cv_r2, 0.3);
}

TEST(RidgeTest, SolvePrimalDualAgree) {
  // Direct check of the two Solve code paths on identical data: the ridge
  // solution is unique, so primal (p<=T) and dual (forced by padding rows
  // vs features) must agree.
  Rng rng(5);
  const size_t t = 40, p = 25;
  la::Matrix x(t, p), y(t, 2);
  rng.FillNormal(x.data(), x.size());
  rng.FillNormal(y.data(), y.size());
  auto primal = RidgeRegression::Solve(x, y, 3.0);
  ASSERT_TRUE(primal.ok());
  // Dual path triggered by slicing rows so T < p.
  la::Matrix xs = x.SliceRows(0, 20);
  la::Matrix ys = y.SliceRows(0, 20);
  auto dual = RidgeRegression::Solve(xs, ys, 3.0);
  ASSERT_TRUE(dual.ok());
  // Verify dual solution satisfies the primal normal equations:
  // (X^T X + l I) B = X^T Y.
  la::Matrix lhs = la::MatMul(la::Gram(xs), dual.value());
  la::Matrix reg = dual.value();
  reg.ScaleInPlace(3.0);
  lhs.AddInPlace(reg);
  la::Matrix rhs = la::MatTMul(xs, ys);
  for (size_t i = 0; i < lhs.rows(); ++i) {
    for (size_t j = 0; j < lhs.cols(); ++j) {
      EXPECT_NEAR(lhs(i, j), rhs(i, j), 1e-8);
    }
  }
}

TEST(RidgeTest, ResidualsPlusFittedEqualY) {
  auto prob = MakeLinear(200, 8, 0.3, 6);
  RidgeRegression ridge;
  auto res = ridge.FitCv(prob.x, prob.y);
  ASSERT_TRUE(res.ok());
  for (size_t r = 0; r < 200; ++r) {
    EXPECT_NEAR(res->fitted(r, 0) + res->residuals(r, 0), prob.y(r, 0), 1e-9);
  }
}

TEST(RidgeTest, LambdaGridSelectionPrefersSmallLambdaOnCleanSignal) {
  auto prob = MakeLinear(500, 4, 0.01, 7);
  RidgeOptions opts;
  opts.lambdas = {0.01, 1.0, 10000.0};
  RidgeRegression ridge(opts);
  auto res = ridge.FitCv(prob.x, prob.y);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->best_lambda, 0.01);
  // Huge penalty shrinks predictions to ~0 -> r2 near 0.
  EXPECT_LT(res->per_lambda_r2[2], res->per_lambda_r2[0]);
}

TEST(RidgeTest, MultiOutputAveragesR2) {
  Rng rng(8);
  const size_t t = 300;
  la::Matrix x(t, 3), y(t, 2);
  rng.FillNormal(x.data(), x.size());
  for (size_t r = 0; r < t; ++r) {
    y(r, 0) = 2.0 * x(r, 0) + rng.Normal() * 0.01;  // explainable
    y(r, 1) = rng.Normal();                          // noise
  }
  RidgeRegression ridge;
  auto res = ridge.FitCv(x, y);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->cv_r2, 0.3);
  EXPECT_LT(res->cv_r2, 0.75);  // average of ~1 and ~0
}

TEST(RidgeTest, RejectsShapeMismatch) {
  la::Matrix x(10, 2), y(12, 1);
  RidgeRegression ridge;
  EXPECT_FALSE(ridge.FitCv(x, y).ok());
}

TEST(RidgeTest, RejectsTooFewPoints) {
  la::Matrix x(4, 2), y(4, 1);
  RidgeRegression ridge;
  EXPECT_FALSE(ridge.FitCv(x, y).ok());
}

TEST(RidgeTest, RejectsEmptyFeatures) {
  la::Matrix x(20, 0), y(20, 1);
  RidgeRegression ridge;
  EXPECT_FALSE(ridge.FitCv(x, y).ok());
}

TEST(RidgeTest, CachedFitMatchesUncachedBitwise) {
  // The ScoringCache only changes *where* designs and factors come from,
  // never what is computed, so a cached fit must equal a plain one
  // exactly (same kernel table, same operation order).
  LinearProblem prob = MakeLinear(90, 7, 0.5, 21);
  RidgeRegression ridge;
  auto plain = ridge.FitCv(prob.x, prob.y);
  ASSERT_TRUE(plain.ok());

  ScoringCache cache;
  StageCounters counters;
  FitContext ctx{&cache, &counters};
  auto first = ridge.FitCv(prob.x, prob.y, &ctx);
  ASSERT_TRUE(first.ok());
  auto second = ridge.FitCv(prob.x, prob.y, &ctx);
  ASSERT_TRUE(second.ok());

  EXPECT_EQ(plain->cv_r2, first->cv_r2);
  EXPECT_EQ(plain->best_lambda, first->best_lambda);
  EXPECT_TRUE(plain->coefficients == first->coefficients);
  EXPECT_TRUE(plain->residuals == first->residuals);
  EXPECT_TRUE(first->coefficients == second->coefficients);
  EXPECT_TRUE(first->residuals == second->residuals);

  // The second fit of the same (X, Y) serves its design and every factor
  // from the cache.
  EXPECT_GT(cache.hits(ScoringCache::Slot::kDesign), 0u);
  EXPECT_GT(cache.hits(ScoringCache::Slot::kFactor), 0u);
  // Stage timers accumulated (the fits above did real work).
  EXPECT_GT(counters.gram_ns.load() + counters.factor_ns.load() +
                counters.solve_ns.load() + counters.predict_ns.load(),
            0);
}

TEST(RidgeTest, CacheSharesDesignAcrossTargets) {
  // Two fits against different Y but the same X share the standardized
  // design (the Gram/fold plans depend only on X).
  LinearProblem a = MakeLinear(80, 5, 0.5, 22);
  LinearProblem b = MakeLinear(80, 5, 0.5, 23);
  RidgeRegression ridge;
  ScoringCache cache;
  FitContext ctx{&cache, nullptr};
  ASSERT_TRUE(ridge.FitCv(a.x, a.y, &ctx).ok());
  const size_t misses_after_first = cache.misses(ScoringCache::Slot::kDesign);
  ASSERT_TRUE(ridge.FitCv(a.x, b.y, &ctx).ok());
  EXPECT_GT(cache.hits(ScoringCache::Slot::kDesign), 0u);
  // Only the new Y needs a design; the X design is served from cache.
  EXPECT_EQ(cache.misses(ScoringCache::Slot::kDesign),
            misses_after_first + 1);
}

TEST(RidgeTest, ZeroBudgetCacheStillCorrect) {
  // With a zero byte budget every entry is dropped after computation; the
  // fits must still come out identical (recompute path).
  LinearProblem prob = MakeLinear(60, 4, 0.5, 24);
  RidgeRegression ridge;
  auto plain = ridge.FitCv(prob.x, prob.y);
  ASSERT_TRUE(plain.ok());
  ScoringCache cache(/*byte_budget=*/0);
  FitContext ctx{&cache, nullptr};
  auto cached = ridge.FitCv(prob.x, prob.y, &ctx);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(plain->coefficients == cached->coefficients);
  auto again = ridge.FitCv(prob.x, prob.y, &ctx);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(plain->coefficients == again->coefficients);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(RSquaredTest, PerfectPredictionIsOne) {
  la::Matrix y(5, 1, {1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(RSquared(y, y), 1.0);
}

TEST(RSquaredTest, MeanPredictionIsZero) {
  la::Matrix y(4, 1, {1, 2, 3, 4});
  la::Matrix pred(4, 1, {2.5, 2.5, 2.5, 2.5});
  EXPECT_DOUBLE_EQ(RSquared(y, pred), 0.0);
}

TEST(RSquaredTest, ConstantTargetSkipped) {
  la::Matrix y(4, 2, {1, 7, 2, 7, 3, 7, 4, 7});
  la::Matrix pred(4, 2, {1, 0, 2, 0, 3, 0, 4, 0});
  // Column 0 perfect, column 1 constant (skipped) -> 1.0.
  EXPECT_DOUBLE_EQ(RSquared(y, pred), 1.0);
}

// Property sweep: CV r2 grows monotonically (in expectation) as noise falls.
class RidgeNoiseTest : public ::testing::TestWithParam<double> {};

TEST_P(RidgeNoiseTest, ScoreReflectsSignalToNoise) {
  const double noise = GetParam();
  // Fixed unit weights so the signal variance is exactly p = 6 and the
  // population r2 is 6 / (6 + noise^2).
  Rng rng(42);
  const size_t t = 1200, p = 6;
  la::Matrix x(t, p), y(t, 1);
  rng.FillNormal(x.data(), x.size());
  for (size_t r = 0; r < t; ++r) {
    double acc = 0.0;
    for (size_t j = 0; j < p; ++j) acc += x(r, j);
    y(r, 0) = acc + rng.Normal() * noise;
  }
  RidgeRegression ridge;
  auto res = ridge.FitCv(x, y);
  ASSERT_TRUE(res.ok());
  const double expected_r2 = 6.0 / (6.0 + noise * noise);
  EXPECT_NEAR(res->cv_r2, expected_r2, 0.1) << "noise=" << noise;
}

INSTANTIATE_TEST_SUITE_P(NoiseSweep, RidgeNoiseTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace explainit::stats
