#include "stats/lasso.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "la/standardize.h"

namespace explainit::stats {
namespace {

TEST(LassoTest, RecoverySparseSignal) {
  Rng rng(1);
  const size_t t = 300, p = 20;
  la::Matrix x(t, p), y(t, 1);
  rng.FillNormal(x.data(), x.size());
  // Only features 3 and 11 matter.
  for (size_t r = 0; r < t; ++r) {
    y(r, 0) = 2.0 * x(r, 3) - 1.5 * x(r, 11) + rng.Normal() * 0.1;
  }
  la::Matrix xs = la::Standardize(x);
  la::Matrix ys = la::Standardize(y);
  la::Matrix beta = LassoRegression::Solve(xs, ys, 0.05);
  // Signal features survive; most noise features are exactly zero.
  EXPECT_GT(std::abs(beta(3, 0)), 0.2);
  EXPECT_GT(std::abs(beta(11, 0)), 0.2);
  size_t zeros = 0;
  for (size_t j = 0; j < p; ++j) {
    if (j != 3 && j != 11 && beta(j, 0) == 0.0) ++zeros;
  }
  EXPECT_GE(zeros, 14u);
}

TEST(LassoTest, LargePenaltyZeroesEverything) {
  Rng rng(2);
  la::Matrix x(100, 5), y(100, 1);
  rng.FillNormal(x.data(), x.size());
  rng.FillNormal(y.data(), y.size());
  la::Matrix beta = LassoRegression::Solve(x, y, 100.0);
  for (size_t j = 0; j < 5; ++j) EXPECT_EQ(beta(j, 0), 0.0);
}

TEST(LassoTest, ZeroPenaltyApproachesLeastSquares) {
  Rng rng(3);
  const size_t t = 200;
  la::Matrix x(t, 2), y(t, 1);
  rng.FillNormal(x.data(), x.size());
  for (size_t r = 0; r < t; ++r) {
    y(r, 0) = 1.0 * x(r, 0) + 0.5 * x(r, 1) + rng.Normal() * 0.05;
  }
  la::Matrix xs = la::Standardize(x);
  la::Matrix ys = la::Standardize(y);
  la::Matrix beta = LassoRegression::Solve(xs, ys, 1e-8, 2000, 1e-10);
  // In standardised coordinates the weights keep their ratio 2:1.
  EXPECT_NEAR(beta(0, 0) / beta(1, 0), 2.0, 0.1);
}

TEST(LassoTest, CvPicksSignalAndScoresWell) {
  Rng rng(4);
  const size_t t = 240, p = 15;
  la::Matrix x(t, p), y(t, 1);
  rng.FillNormal(x.data(), x.size());
  for (size_t r = 0; r < t; ++r) {
    y(r, 0) = 3.0 * x(r, 0) + rng.Normal() * 0.2;
  }
  LassoRegression lasso;
  auto res = lasso.FitCv(x, y);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GT(res->cv_r2, 0.85);
  EXPECT_GE(res->support_size, 1u);
}

TEST(LassoTest, SupportShrinksWithPenalty) {
  Rng rng(5);
  const size_t t = 150, p = 30;
  la::Matrix x(t, p), y(t, 1);
  rng.FillNormal(x.data(), x.size());
  for (size_t r = 0; r < t; ++r) {
    double acc = 0.0;
    for (size_t j = 0; j < 5; ++j) acc += x(r, j) * 0.5;
    y(r, 0) = acc + rng.Normal() * 0.3;
  }
  la::Matrix xs = la::Standardize(x);
  la::Matrix ys = la::Standardize(y);
  auto count_nonzero = [&](double lambda) {
    la::Matrix beta = LassoRegression::Solve(xs, ys, lambda);
    size_t nz = 0;
    for (size_t j = 0; j < p; ++j) {
      if (beta(j, 0) != 0.0) ++nz;
    }
    return nz;
  };
  EXPECT_GE(count_nonzero(0.001), count_nonzero(0.05));
  EXPECT_GE(count_nonzero(0.05), count_nonzero(0.3));
}

TEST(LassoTest, RejectsBadShapes) {
  la::Matrix x(10, 2), y(12, 1);
  LassoRegression lasso;
  EXPECT_FALSE(lasso.FitCv(x, y).ok());
  la::Matrix x2(4, 2), y2(4, 1);
  EXPECT_FALSE(lasso.FitCv(x2, y2).ok());
}

}  // namespace
}  // namespace explainit::stats
