#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "la/matrix.h"
#include "stats/ols.h"

namespace explainit::stats {
namespace {

TEST(LogGammaTest, KnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);           // Gamma(1) = 1
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);           // Gamma(2) = 1
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);  // 4!
  EXPECT_NEAR(LogGamma(0.5), std::log(std::sqrt(M_PI)), 1e-10);
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetricCaseAtHalf) {
  // I_{0.5}(a, a) = 0.5 by symmetry.
  for (double a : {0.5, 1.0, 2.0, 7.5}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(a, a, 0.5), 0.5, 1e-10) << a;
  }
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // Beta(1,1) is uniform: CDF(x) = x.
  for (double x : {0.1, 0.25, 0.7, 0.95}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, x), x, 1e-12);
  }
}

TEST(BetaDistributionTest, MeanAndVariance) {
  BetaDistribution b(2.0, 3.0);
  EXPECT_NEAR(b.Mean(), 0.4, 1e-12);
  EXPECT_NEAR(b.Variance(), 2.0 * 3.0 / (25.0 * 6.0), 1e-12);
}

TEST(BetaDistributionTest, PdfIntegratesToOne) {
  BetaDistribution b(2.5, 4.0);
  const int n = 20000;
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = (i + 0.5) / n;
    acc += b.Pdf(x) / n;
  }
  EXPECT_NEAR(acc, 1.0, 1e-4);
}

TEST(BetaDistributionTest, CdfMonotone) {
  BetaDistribution b(3.0, 2.0);
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double c = b.Cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(b.Cdf(1.0), 1.0, 1e-12);
}

TEST(NullR2Test, MeanMatchesTheory) {
  // Appendix A: mean of the null r2 is (p-1)/(n-1).
  const size_t n = 1000, p = 500;
  BetaDistribution d = NullR2Distribution(n, p);
  EXPECT_NEAR(d.Mean(), (500.0 - 1.0) / (1000.0 - 1.0), 1e-9);
}

TEST(NullR2Test, VarianceFallsAsOneOverN) {
  // Appendix A: var <= 1 / (4 (1 + (n-1)/2)) = O(1/n).
  for (size_t n : {100u, 1000u, 10000u}) {
    const size_t p = n / 2;
    BetaDistribution d = NullR2Distribution(n, p);
    const double bound = 1.0 / (4.0 * (1.0 + (static_cast<double>(n) - 1.0) / 2.0));
    EXPECT_LE(d.Variance(), bound * 1.0001) << n;
  }
}

TEST(NullR2Test, EmpiricalOlsR2MatchesBeta) {
  // Monte-Carlo: the in-sample r2 of OLS on pure noise should follow
  // Beta((p-1)/2, (n-p)/2). Checked with a KS threshold.
  Rng rng(99);
  const size_t n = 120, p = 30;
  std::vector<double> samples;
  for (int rep = 0; rep < 60; ++rep) {
    la::Matrix x(n, p), y(n, 1);
    rng.FillNormal(x.data(), x.size());
    rng.FillNormal(y.data(), y.size());
    auto ols = OlsFit(x, y);
    ASSERT_TRUE(ols.ok());
    samples.push_back(ols->r2);
  }
  BetaDistribution null_dist = NullR2Distribution(n, p);
  const double ks = KolmogorovSmirnovStatistic(
      samples, [&](double v) { return null_dist.Cdf(v); });
  // 60 samples: the KS critical value at alpha=0.01 is ~1.63/sqrt(60)=0.21.
  EXPECT_LT(ks, 0.25);
}

TEST(ChiSquaredTest, CdfKnownValues) {
  ChiSquaredDistribution c2(2.0);
  // Chi2(2) is Exp(1/2): CDF(x) = 1 - exp(-x/2).
  for (double x : {0.5, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(c2.Cdf(x), 1.0 - std::exp(-x / 2.0), 1e-9) << x;
  }
  EXPECT_EQ(c2.Cdf(0.0), 0.0);
}

TEST(ChiSquaredTest, MeanVariance) {
  ChiSquaredDistribution c2(7.5);
  EXPECT_EQ(c2.Mean(), 7.5);
  EXPECT_EQ(c2.Variance(), 15.0);
}

TEST(NormalTest, PdfCdf) {
  EXPECT_NEAR(NormalPdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(KsTest, ZeroForExactCdfSamples) {
  // Uniform grid against uniform CDF: KS is ~ 1/(2n).
  std::vector<double> sample;
  const int n = 100;
  for (int i = 0; i < n; ++i) sample.push_back((i + 0.5) / n);
  const double ks =
      KolmogorovSmirnovStatistic(sample, [](double x) { return x; });
  EXPECT_LT(ks, 0.01);
}

}  // namespace
}  // namespace explainit::stats
