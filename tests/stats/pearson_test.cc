#include "stats/pearson.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace explainit::stats {
namespace {

TEST(PearsonTest, PerfectPositiveCorrelation) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegativeCorrelation) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesGivesZero) {
  std::vector<double> a = {3, 3, 3, 3};
  std::vector<double> b = {1, 2, 3, 4};
  EXPECT_EQ(PearsonCorrelation(a, b), 0.0);
  EXPECT_EQ(PearsonCorrelation(b, a), 0.0);
}

TEST(PearsonTest, IndependentSeriesNearZero) {
  Rng rng(1);
  const size_t n = 20000;
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
  }
  EXPECT_LT(std::abs(PearsonCorrelation(a, b)), 0.03);
}

TEST(PearsonTest, InvariantToAffineTransform) {
  Rng rng(2);
  std::vector<double> a(100), b(100), a2(100);
  for (size_t i = 0; i < 100; ++i) {
    a[i] = rng.Normal();
    b[i] = a[i] * 0.5 + rng.Normal() * 0.3;
    a2[i] = 100.0 * a[i] - 42.0;
  }
  EXPECT_NEAR(PearsonCorrelation(a, b), PearsonCorrelation(a2, b), 1e-12);
}

TEST(PearsonTest, MatrixMatchesScalarKernel) {
  Rng rng(3);
  const size_t t = 200;
  la::Matrix x(t, 3), y(t, 2);
  rng.FillNormal(x.data(), x.size());
  for (size_t r = 0; r < t; ++r) {
    y(r, 0) = x(r, 0) * 2.0 + rng.Normal() * 0.1;
    y(r, 1) = rng.Normal();
  }
  la::Matrix corr = CorrelationMatrix(x, y);
  ASSERT_EQ(corr.rows(), 3u);
  ASSERT_EQ(corr.cols(), 2u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(corr(i, j), PearsonCorrelation(x.Col(i), y.Col(j)), 1e-10);
    }
  }
}

TEST(PearsonTest, SummaryMeanAndMax) {
  Rng rng(4);
  const size_t t = 300;
  la::Matrix x(t, 4), y(t, 1);
  rng.FillNormal(x.data(), x.size());
  for (size_t r = 0; r < t; ++r) y(r, 0) = x(r, 2) + rng.Normal() * 0.05;
  CorrSummary s = CorrelationSummary(x, y);
  EXPECT_GT(s.max_abs, 0.99);      // column 2 is nearly perfectly correlated
  EXPECT_LT(s.mean_abs, 0.5);      // other columns dilute the mean
  EXPECT_GE(s.max_abs, s.mean_abs);
  EXPECT_LE(s.max_abs, 1.0);
}

TEST(PearsonTest, CorrelationBoundedByOne) {
  // Near-duplicate columns can numerically overshoot 1; must be clamped.
  la::Matrix x(50, 1), y(50, 1);
  for (size_t r = 0; r < 50; ++r) {
    x(r, 0) = static_cast<double>(r);
    y(r, 0) = static_cast<double>(r) * (1.0 + 1e-15);
  }
  la::Matrix corr = CorrelationMatrix(x, y);
  EXPECT_LE(corr(0, 0), 1.0);
  EXPECT_NEAR(corr(0, 0), 1.0, 1e-9);
}

}  // namespace
}  // namespace explainit::stats
