#include "stats/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "la/blas.h"

namespace explainit::stats {
namespace {

TEST(PcaTest, FindsDominantDirection) {
  Rng rng(1);
  const size_t t = 500;
  la::Matrix x(t, 3);
  // Data varies mostly along (1, 1, 0)/sqrt(2).
  for (size_t r = 0; r < t; ++r) {
    const double main = rng.Normal() * 5.0;
    x(r, 0) = main + rng.Normal() * 0.2;
    x(r, 1) = main + rng.Normal() * 0.2;
    x(r, 2) = rng.Normal() * 0.2;
  }
  auto pca = ComputePca(x, 1);
  ASSERT_TRUE(pca.ok());
  const double c0 = pca->components(0, 0);
  const double c1 = pca->components(1, 0);
  const double c2 = pca->components(2, 0);
  EXPECT_NEAR(std::abs(c0), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(std::abs(c1), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(c2, 0.0, 0.05);
  EXPECT_GT(pca->eigenvalues[0], 20.0);  // ~2 * 25/2
}

TEST(PcaTest, ComponentsOrthonormal) {
  Rng rng(2);
  la::Matrix x(300, 6);
  rng.FillNormal(x.data(), x.size());
  auto pca = ComputePca(x, 3);
  ASSERT_TRUE(pca.ok());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < 6; ++k) {
        dot += pca->components(k, i) * pca->components(k, j);
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-4) << i << "," << j;
    }
  }
}

TEST(PcaTest, EigenvaluesDescending) {
  Rng rng(3);
  la::Matrix x(400, 5);
  for (size_t r = 0; r < 400; ++r) {
    x(r, 0) = rng.Normal() * 4.0;
    x(r, 1) = rng.Normal() * 2.0;
    x(r, 2) = rng.Normal() * 1.0;
    x(r, 3) = rng.Normal() * 0.5;
    x(r, 4) = rng.Normal() * 0.25;
  }
  auto pca = ComputePca(x, 5);
  ASSERT_TRUE(pca.ok());
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_GE(pca->eigenvalues[i - 1], pca->eigenvalues[i] - 1e-9);
  }
  EXPECT_NEAR(pca->eigenvalues[0], 16.0, 3.0);
}

TEST(PcaTest, TransformShape) {
  Rng rng(4);
  la::Matrix x(100, 8);
  rng.FillNormal(x.data(), x.size());
  auto pca = ComputePca(x, 2);
  ASSERT_TRUE(pca.ok());
  la::Matrix z = PcaTransform(x, pca.value());
  EXPECT_EQ(z.rows(), 100u);
  EXPECT_EQ(z.cols(), 2u);
}

TEST(PcaTest, KClampedToColumns) {
  Rng rng(5);
  la::Matrix x(50, 3);
  rng.FillNormal(x.data(), x.size());
  auto pca = ComputePca(x, 10);
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ(pca->components.cols(), 3u);
}

TEST(PcaTest, RejectsDegenerate) {
  la::Matrix x(1, 3);
  EXPECT_FALSE(ComputePca(x, 1).ok());
  la::Matrix empty(10, 0);
  EXPECT_FALSE(ComputePca(empty, 1).ok());
}

TEST(EigenvaluesTest, DiagonalMatrix) {
  la::Matrix a(3, 3);
  a(0, 0) = 5.0;
  a(1, 1) = 2.0;
  a(2, 2) = 1.0;
  auto eig = SymmetricEigenvalues(a);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], 5.0, 1e-10);
  EXPECT_NEAR(eig[1], 2.0, 1e-10);
  EXPECT_NEAR(eig[2], 1.0, 1e-10);
}

TEST(EigenvaluesTest, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  la::Matrix a(2, 2, {2, 1, 1, 2});
  auto eig = SymmetricEigenvalues(a);
  EXPECT_NEAR(eig[0], 3.0, 1e-9);
  EXPECT_NEAR(eig[1], 1.0, 1e-9);
}

TEST(EigenvaluesTest, TraceAndFrobeniusPreserved) {
  Rng rng(6);
  la::Matrix x(30, 6);
  rng.FillNormal(x.data(), x.size());
  la::Matrix g = la::Gram(x);
  double trace = 0.0;
  for (size_t i = 0; i < 6; ++i) trace += g(i, i);
  auto eig = SymmetricEigenvalues(g);
  double eig_sum = 0.0;
  for (double e : eig) eig_sum += e;
  EXPECT_NEAR(eig_sum, trace, 1e-6);
}

}  // namespace
}  // namespace explainit::stats
