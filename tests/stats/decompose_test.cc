#include "stats/decompose.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace explainit::stats {
namespace {

std::vector<double> SeasonalSeries(size_t n, size_t period, double amp,
                                   double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = amp * std::sin(2.0 * M_PI * static_cast<double>(i % period) /
                          static_cast<double>(period)) +
           rng.Normal() * noise;
  }
  return y;
}

TEST(MovingAverageTest, ConstantSeriesUnchanged) {
  std::vector<double> y(20, 5.0);
  auto ma = MovingAverage(y, 5);
  for (double v : ma) EXPECT_NEAR(v, 5.0, 1e-12);
}

TEST(MovingAverageTest, SmoothsLinearExactlyInInterior) {
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) y.push_back(static_cast<double>(i));
  auto ma = MovingAverage(y, 5);
  // Centred window on a linear ramp returns the ramp (away from edges).
  for (size_t i = 2; i < 28; ++i) EXPECT_NEAR(ma[i], y[i], 1e-12);
}

TEST(MovingAverageTest, EvenWindowForcedOdd) {
  std::vector<double> y = {0, 10, 0, 10, 0, 10};
  auto a = MovingAverage(y, 4);  // becomes 5
  auto b = MovingAverage(y, 5);
  EXPECT_EQ(a, b);
}

TEST(DecomposeTest, RecoversSeasonalAmplitude) {
  const size_t period = 24;
  auto y = SeasonalSeries(24 * 20, period, 3.0, 0.2, 1);
  auto d = DecomposeAdditive(y, period);
  // The seasonal profile should reach close to +-3.
  double max_s = 0.0;
  for (double v : d.seasonal) max_s = std::max(max_s, std::abs(v));
  EXPECT_NEAR(max_s, 3.0, 0.4);
  // Residual variance is much smaller than the raw variance.
  double var_y = 0.0, var_r = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    var_y += y[i] * y[i];
    var_r += d.residual[i] * d.residual[i];
  }
  EXPECT_LT(var_r, 0.2 * var_y);
}

TEST(DecomposeTest, ComponentsSumToSeries) {
  auto y = SeasonalSeries(200, 10, 2.0, 0.5, 2);
  auto d = DecomposeAdditive(y, 10);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(d.trend[i] + d.seasonal[i] + d.residual[i], y[i], 1e-10);
  }
  // Systematic = trend + seasonal.
  auto sys = d.Systematic();
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(sys[i] + d.residual[i], y[i], 1e-10);
  }
}

TEST(DecomposeTest, SeasonalProfileSumsToZero) {
  auto y = SeasonalSeries(300, 15, 4.0, 0.3, 3);
  auto d = DecomposeAdditive(y, 15);
  double acc = 0.0;
  for (size_t i = 0; i < 15; ++i) acc += d.seasonal[i];
  EXPECT_NEAR(acc, 0.0, 1e-9);
}

TEST(DecomposeTest, TrendOnlyCapturesDrift) {
  Rng rng(4);
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    y.push_back(0.1 * i + rng.Normal() * 0.5);
  }
  auto d = DecomposeTrend(y, 21);
  // The trend should track the ramp in the interior.
  for (size_t i = 30; i < 170; ++i) {
    EXPECT_NEAR(d.trend[i], 0.1 * static_cast<double>(i), 0.5);
  }
  for (double s : d.seasonal) EXPECT_EQ(s, 0.0);
}

TEST(AutocorrelationTest, LagZeroIsOne) {
  auto y = SeasonalSeries(100, 10, 1.0, 0.1, 5);
  EXPECT_NEAR(Autocorrelation(y, 0), 1.0, 1e-12);
}

TEST(AutocorrelationTest, PeriodicSeriesPeaksAtPeriod) {
  auto y = SeasonalSeries(400, 20, 2.0, 0.1, 6);
  EXPECT_GT(Autocorrelation(y, 20), 0.8);
  EXPECT_LT(Autocorrelation(y, 10), 0.0);  // anti-phase at half period
}

TEST(AutocorrelationTest, WhiteNoiseNearZero) {
  Rng rng(7);
  std::vector<double> y(5000);
  for (auto& v : y) v = rng.Normal();
  EXPECT_LT(std::abs(Autocorrelation(y, 7)), 0.05);
}

TEST(DetectPeriodTest, FindsTruePeriod) {
  auto y = SeasonalSeries(24 * 30, 24, 2.0, 0.3, 8);
  EXPECT_EQ(DetectPeriod(y, 4, 200), 24u);
}

TEST(DetectPeriodTest, NoPeriodInNoise) {
  Rng rng(9);
  std::vector<double> y(1000);
  for (auto& v : y) v = rng.Normal();
  EXPECT_EQ(DetectPeriod(y, 4, 100), 0u);
}

TEST(DetectPeriodTest, WeeklyPeriodAtPaperScale) {
  // Figure 8: weekly spikes in minutely data over a month.
  // Scale down: "hours" resolution, 1 month, period = 168 hours.
  auto y = SeasonalSeries(24 * 7 * 5, 168, 5.0, 0.5, 10);
  EXPECT_EQ(DetectPeriod(y, 100, 300), 168u);
}

TEST(MedianTest, OddEven) {
  EXPECT_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_EQ(Median({}), 0.0);
  EXPECT_EQ(Median({5}), 5.0);
}

TEST(DetectSpikesTest, FindsInjectedSpikes) {
  Rng rng(11);
  std::vector<double> y(500);
  for (auto& v : y) v = 10.0 + rng.Normal() * 0.5;
  y[100] = 30.0;
  y[101] = 28.0;
  y[400] = 25.0;
  auto spikes = DetectSpikes(y, 5.0);
  ASSERT_EQ(spikes.size(), 3u);
  EXPECT_EQ(spikes[0], 100u);
  EXPECT_EQ(spikes[1], 101u);
  EXPECT_EQ(spikes[2], 400u);
}

TEST(DetectSpikesTest, NoSpikesInFlatSeries) {
  std::vector<double> y(100, 1.0);
  EXPECT_TRUE(DetectSpikes(y).empty());
}

}  // namespace
}  // namespace explainit::stats

namespace explainit::stats {
namespace {

TEST(RunningMedianTest, ConstantAndRamp) {
  std::vector<double> flat(20, 3.0);
  for (double v : RunningMedian(flat, 5)) EXPECT_EQ(v, 3.0);
  std::vector<double> ramp;
  for (int i = 0; i < 30; ++i) ramp.push_back(i);
  auto rm = RunningMedian(ramp, 7);
  for (size_t i = 3; i < 27; ++i) EXPECT_EQ(rm[i], ramp[i]);
}

TEST(RunningMedianTest, IgnoresShortSpikes) {
  std::vector<double> y(60, 1.0);
  for (int i = 25; i < 30; ++i) y[i] = 100.0;  // spike of 5 < half of 21
  auto rm = RunningMedian(y, 21);
  for (double v : rm) EXPECT_EQ(v, 1.0);
}

TEST(RunningMedianTest, EvenWindowForcedOdd) {
  std::vector<double> y = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(RunningMedian(y, 4), RunningMedian(y, 5));
}

TEST(DecomposeRobustTest, SpikeStaysInResidual) {
  // The property that motivated the robust variant: a transient spike
  // shorter than half the trend window must not leak into trend/seasonal.
  Rng rng(21);
  const size_t period = 24, n = 24 * 20;
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 10.0 +
           2.0 * std::sin(2.0 * M_PI * (i % period) / period) +
           ((i >= 200 && i < 240) ? 5.0 : 0.0) + rng.Normal() * 0.2;
  }
  auto d = DecomposeRobust(y, period, 5 * period + 1);
  double spike_resid = 0.0;
  for (size_t i = 205; i < 235; ++i) spike_resid += d.residual[i];
  EXPECT_GT(spike_resid / 30.0, 3.5);
  // Components still sum to the series.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(d.trend[i] + d.seasonal[i] + d.residual[i], y[i], 1e-9);
  }
}

TEST(DecomposeRobustTest, SeasonalProfileRecovered) {
  Rng rng(22);
  const size_t period = 12, n = 12 * 30;
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 4.0 * std::sin(2.0 * M_PI * (i % period) / period) +
           rng.Normal() * 0.3;
  }
  auto d = DecomposeRobust(y, period, 61);
  double max_s = 0.0;
  for (double v : d.seasonal) max_s = std::max(max_s, std::abs(v));
  EXPECT_NEAR(max_s, 4.0, 0.5);
}

}  // namespace
}  // namespace explainit::stats
