#include "stats/ols.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace explainit::stats {
namespace {

TEST(OlsTest, RecoversExactLinearRelation) {
  const size_t t = 50;
  la::Matrix x(t, 1), y(t, 1);
  for (size_t r = 0; r < t; ++r) {
    x(r, 0) = static_cast<double>(r);
    y(r, 0) = 3.0 * static_cast<double>(r) + 7.0;
  }
  auto res = OlsFit(x, y);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->coefficients(0, 0), 3.0, 1e-9);
  EXPECT_NEAR(res->r2, 1.0, 1e-12);
  for (size_t r = 0; r < t; ++r) {
    EXPECT_NEAR(res->fitted(r, 0), y(r, 0), 1e-8);
  }
}

TEST(OlsTest, ResidualsSumToZero) {
  Rng rng(1);
  la::Matrix x(100, 3), y(100, 1);
  rng.FillNormal(x.data(), x.size());
  for (size_t r = 0; r < 100; ++r) y(r, 0) = x(r, 0) + rng.Normal();
  auto res = OlsFit(x, y);
  ASSERT_TRUE(res.ok());
  double sum = 0.0;
  for (size_t r = 0; r < 100; ++r) sum += res->residuals(r, 0);
  EXPECT_NEAR(sum, 0.0, 1e-8);
}

TEST(OlsTest, ResidualsOrthogonalToPredictors) {
  // The defining property of least squares used in the Appendix B proof.
  Rng rng(2);
  la::Matrix x(80, 4), y(80, 1);
  rng.FillNormal(x.data(), x.size());
  rng.FillNormal(y.data(), y.size());
  auto res = OlsFit(x, y);
  ASSERT_TRUE(res.ok());
  for (size_t j = 0; j < 4; ++j) {
    double dot = 0.0;
    double xmean = 0.0;
    for (size_t r = 0; r < 80; ++r) xmean += x(r, j);
    xmean /= 80.0;
    for (size_t r = 0; r < 80; ++r) {
      dot += (x(r, j) - xmean) * res->residuals(r, 0);
    }
    EXPECT_NEAR(dot, 0.0, 1e-7) << "predictor " << j;
  }
}

TEST(OlsTest, AdjustedR2BelowPlainR2UnderNull) {
  Rng rng(3);
  la::Matrix x(100, 40), y(100, 1);
  rng.FillNormal(x.data(), x.size());
  rng.FillNormal(y.data(), y.size());
  auto res = OlsFit(x, y);
  ASSERT_TRUE(res.ok());
  // With p=40, n=100 and no true relation, r2 inflates to ~p/n.
  EXPECT_GT(res->r2, 0.2);
  EXPECT_LT(res->r2_adjusted, res->r2);
  EXPECT_NEAR(res->r2_adjusted, 0.0, 0.35);
}

TEST(OlsTest, AdjustedR2Formula) {
  // Wherry: 1 - (1-r2)(n-1)/(n-p).
  EXPECT_NEAR(AdjustedR2(0.5, 101, 1), 1.0 - 0.5 * 100.0 / 100.0, 1e-12);
  EXPECT_NEAR(AdjustedR2(0.5, 11, 6), 1.0 - 0.5 * 10.0 / 5.0, 1e-12);
  // Degenerate n <= p falls back to plain r2.
  EXPECT_EQ(AdjustedR2(0.7, 10, 10), 0.7);
}

TEST(OlsTest, RejectsUnderdetermined) {
  la::Matrix x(5, 10), y(5, 1);
  EXPECT_FALSE(OlsFit(x, y).ok());
}

TEST(OlsTest, RejectsRowMismatch) {
  la::Matrix x(10, 2), y(9, 1);
  EXPECT_FALSE(OlsFit(x, y).ok());
}

}  // namespace
}  // namespace explainit::stats
