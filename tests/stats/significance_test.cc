#include "stats/significance.h"

#include <gtest/gtest.h>

#include <cmath>

namespace explainit::stats {
namespace {

TEST(SignificanceTest, PaperExampleChebyshev) {
  // Appendix A.2: n = 1440, p = 50 gives p(s) ~= 4.9e-5 / s^2.
  const double var = NullAdjustedR2Variance(1440, 50);
  EXPECT_NEAR(var, 4.9e-5, 0.3e-5);
  EXPECT_NEAR(ChebyshevPValue(0.5, 1440, 50), var / 0.25, 1e-12);
}

TEST(SignificanceTest, PaperExampleLowScore) {
  // "when s = 0.03, the p-value for n = 1000, p = 50 is ~0.05".
  const double p = ChebyshevPValue(0.03, 1000, 50);
  EXPECT_NEAR(p, 0.115, 0.08);  // Chebyshev bound same order as paper's 0.05
}

TEST(SignificanceTest, PValueClippedToOne) {
  EXPECT_EQ(ChebyshevPValue(0.0001, 100, 50), 1.0);
  EXPECT_EQ(ChebyshevPValue(-1.0, 100, 50), 1.0);
  EXPECT_EQ(ChebyshevPValue(0.0, 100, 50), 1.0);
}

TEST(SignificanceTest, BetaPValueSharperThanChebyshevInTail) {
  const size_t n = 1000, p = 50;
  const double s = 0.2;
  EXPECT_LT(BetaPValue(s, n, p), ChebyshevPValue(s, n, p));
}

TEST(SignificanceTest, BetaPValueMonotoneDecreasing) {
  double prev = 1.1;
  for (double s : {0.01, 0.05, 0.1, 0.2, 0.5}) {
    const double pv = BetaPValue(s, 500, 20);
    EXPECT_LT(pv, prev);
    prev = pv;
  }
}

TEST(SignificanceTest, BonferroniScalesAndClips) {
  auto out = BonferroniCorrect({0.01, 0.2, 0.5});
  EXPECT_NEAR(out[0], 0.03, 1e-12);
  EXPECT_NEAR(out[1], 0.6, 1e-12);
  EXPECT_EQ(out[2], 1.0);
}

TEST(SignificanceTest, BenjaminiHochbergAdjustment) {
  // Classic example: p = {0.01, 0.02, 0.03, 0.04}, m=4.
  auto q = BenjaminiHochbergAdjust({0.01, 0.02, 0.03, 0.04});
  // q_i = min_j>=i (m p_j / j): all equal 0.04 here.
  for (double v : q) EXPECT_NEAR(v, 0.04, 1e-12);
}

TEST(SignificanceTest, BenjaminiHochbergOrderIndependent) {
  auto q1 = BenjaminiHochbergAdjust({0.001, 0.5, 0.04});
  auto q2 = BenjaminiHochbergAdjust({0.5, 0.04, 0.001});
  EXPECT_NEAR(q1[0], q2[2], 1e-12);
  EXPECT_NEAR(q1[1], q2[0], 1e-12);
  EXPECT_NEAR(q1[2], q2[1], 1e-12);
}

TEST(SignificanceTest, BenjaminiHochbergDiscoveries) {
  // Strong signals survive, weak do not.
  std::vector<double> pv = {1e-6, 1e-5, 0.4, 0.9};
  auto disc = BenjaminiHochbergDiscoveries(pv, 0.05);
  ASSERT_EQ(disc.size(), 2u);
  EXPECT_EQ(disc[0], 0u);
  EXPECT_EQ(disc[1], 1u);
}

TEST(SignificanceTest, BhLessConservativeThanBonferroni) {
  std::vector<double> pv = {0.01, 0.011, 0.012, 0.013, 0.9};
  auto bonf = BonferroniCorrect(pv);
  auto bh = BenjaminiHochbergAdjust(pv);
  for (size_t i = 0; i < 4; ++i) EXPECT_LE(bh[i], bonf[i]);
}

TEST(SignificanceTest, RidgeDofLimits) {
  // Eigenvalues of X^T X; Appendix A: df -> p-1-ish as lambda -> 0 and
  // -> 0 as lambda -> infinity.
  const size_t n = 1000;
  std::vector<double> eig(50, 10.0);
  const double df0 = RidgeEffectiveDof(eig, 1e-9, n);
  EXPECT_NEAR(df0, 50.0 * (1.0 - 1.0 / 1000.0), 0.01);
  const double df_inf = RidgeEffectiveDof(eig, 1e12, n);
  EXPECT_NEAR(df_inf, 0.0, 1e-6);
}

TEST(SignificanceTest, RidgeDofMonotoneInLambda) {
  std::vector<double> eig = {100.0, 50.0, 10.0, 1.0, 0.1};
  double prev = 1e9;
  for (double lambda : {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0}) {
    const double df = RidgeEffectiveDof(eig, lambda, 1000);
    EXPECT_LE(df, prev);
    prev = df;
  }
}

TEST(SignificanceTest, PaperTopKSurvivesBonferroni) {
  // The paper notes top-20 scores are significant even after Bonferroni
  // with thousands of data points. Emulate: 800 hypotheses, top scores 0.3.
  // The exact Beta tail is used (Chebyshev is only an order-of-magnitude
  // bound and is too blunt for m = 800).
  const size_t n = 1440, p = 50;
  std::vector<double> pvals;
  for (int i = 0; i < 20; ++i) pvals.push_back(BetaPValue(0.3, n, p));
  for (int i = 0; i < 780; ++i) pvals.push_back(0.9);
  auto bonf = BonferroniCorrect(pvals);
  for (int i = 0; i < 20; ++i) EXPECT_LT(bonf[i], 0.05);
}

}  // namespace
}  // namespace explainit::stats
