#include "stats/kfold.h"

#include <gtest/gtest.h>

#include <set>

namespace explainit::stats {
namespace {

TEST(KFoldTest, PartitionsExactly) {
  auto folds = ContiguousKFold(100, 5);
  ASSERT_EQ(folds.size(), 5u);
  size_t covered = 0;
  size_t expect_begin = 0;
  for (const Fold& f : folds) {
    EXPECT_EQ(f.val_begin, expect_begin);  // contiguous, in order
    covered += f.val_end - f.val_begin;
    expect_begin = f.val_end;
  }
  EXPECT_EQ(covered, 100u);
}

TEST(KFoldTest, UnevenSplitDistributesRemainder) {
  auto folds = ContiguousKFold(103, 5);
  ASSERT_EQ(folds.size(), 5u);
  // 103 = 21 + 21 + 21 + 20 + 20.
  EXPECT_EQ(folds[0].val_end - folds[0].val_begin, 21u);
  EXPECT_EQ(folds[4].val_end - folds[4].val_begin, 20u);
  EXPECT_EQ(folds[4].val_end, 103u);
}

TEST(KFoldTest, TooFewPointsDegradesToSingleTrailingFold) {
  auto folds = ContiguousKFold(7, 5);
  ASSERT_EQ(folds.size(), 1u);
  EXPECT_EQ(folds[0].val_end, 7u);
  EXPECT_LT(folds[0].val_begin, 7u);
  EXPECT_GE(folds[0].val_begin, 5u);  // ~25% validation
}

TEST(KFoldTest, EmptyInput) {
  EXPECT_TRUE(ContiguousKFold(0, 5).empty());
}

TEST(KFoldTest, TrainIndicesExcludeValidationBlock) {
  Fold f{3, 6};
  auto idx = TrainIndices(f, 10);
  std::set<size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(idx.size(), 7u);
  for (size_t i = 3; i < 6; ++i) EXPECT_EQ(s.count(i), 0u);
  for (size_t i : {0u, 1u, 2u, 6u, 9u}) EXPECT_EQ(s.count(i), 1u);
}

TEST(KFoldTest, ValidationRangesNeverOverlapTraining) {
  // The paper's requirement: validation time range disjoint from training.
  for (size_t n : {40u, 97u, 1440u}) {
    for (size_t k : {2u, 5u, 10u}) {
      auto folds = ContiguousKFold(n, k);
      for (const Fold& f : folds) {
        auto train = TrainIndices(f, n);
        for (size_t i : train) {
          EXPECT_TRUE(i < f.val_begin || i >= f.val_end);
        }
      }
    }
  }
}

}  // namespace
}  // namespace explainit::stats
