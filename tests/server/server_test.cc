// Integration suite for the concurrent SQL/EXPLAIN server: protocol
// results must be byte-identical to a direct Engine::Query, concurrent
// sessions must share ONE process-wide worker pool (pinned via
// WorkerPool::constructions()), deadlines/cancellation must surface as
// typed statuses, and admission control must push back with kBusy.
#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "exec/worker_pool.h"
#include "server/client.h"
#include "server/protocol.h"
#include "simulator/case_studies.h"

namespace explainit::server {
namespace {

constexpr const char* kSelect =
    "SELECT timestamp, AVG(value) AS runtime_sec FROM tsdb "
    "WHERE metric_name = 'overall_runtime' "
    "GROUP BY timestamp ORDER BY timestamp LIMIT 50";

constexpr const char* kExplain = R"(
    EXPLAIN (SELECT timestamp, AVG(value) AS runtime_sec
             FROM tsdb WHERE metric_name = 'overall_runtime'
             GROUP BY timestamp)
    USING (SELECT timestamp, CONCAT('net-', tag['host']) AS family,
                  AVG(value) AS v
           FROM tsdb WHERE metric_name = 'tcp_retransmits'
           GROUP BY timestamp, CONCAT('net-', tag['host']))
    SCORE BY 'L2' TOP 5)";

/// Canonical protocol encoding of a result table: the EXPLAIN Score
/// Table's score_seconds column is wall time (volatile across runs), so
/// parity comparisons zero it before byte-comparing.
std::vector<uint8_t> CanonicalTableBytes(const table::Table& t) {
  table::Table out(t.schema());
  const auto seconds_col = t.schema().FieldIndex("score_seconds");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<table::Value> row = t.Row(r);
    if (seconds_col.has_value()) {
      row[*seconds_col] = table::Value::Double(0.0);
    }
    out.AppendRow(std::move(row));
  }
  ByteWriter w;
  EncodeTable(out, &w);
  return w.Take();
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : world_(sim::MakeHypervisorDropCase(120)) {
    core::EngineOptions engine_options;
    engine_options.sql_parallelism = 1;  // match the server sessions
    engine_ = std::make_unique<core::Engine>(world_.store, engine_options);
    engine_->RegisterStoreTable("tsdb", world_.range);
    // A deliberately slow UDF for deadline/cancel tests: ~200us per row.
    engine_->functions().Register(
        "SLOW_ID",
        [](const std::vector<table::Value>& args) -> Result<table::Value> {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          return args[0];
        });
  }

  Server& StartServer(ServerOptions options = {}) {
    server_ = std::make_unique<Server>(engine_.get(), options);
    const Status st = server_->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return *server_;
  }

  Client Connect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  sim::CaseStudyWorld world_;
  std::unique_ptr<core::Engine> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingPong) {
  StartServer();
  Client client = Connect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, SingleSessionParityWithDirectQuery) {
  StartServer();
  Client client = Connect();
  for (const char* sql : {kSelect, kExplain}) {
    auto direct = engine_->Query(sql);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    auto remote = client.Query(sql);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_EQ(remote->statement_kind, static_cast<uint8_t>(direct->kind));
    EXPECT_EQ(remote->rows_output, direct->table.num_rows());
    EXPECT_EQ(CanonicalTableBytes(remote->table),
              CanonicalTableBytes(direct->table))
        << "server result diverged from Engine::Query for:\n" << sql;
  }
}

TEST_F(ServerTest, EightSessionsStayByteIdenticalAndShareOnePool) {
  // Force the global pool into existence before pinning the counter.
  exec::WorkerPool::Global();
  auto direct_select = engine_->Query(kSelect);
  auto direct_explain = engine_->Query(kExplain);
  ASSERT_TRUE(direct_select.ok() && direct_explain.ok());
  const std::vector<uint8_t> want_select =
      CanonicalTableBytes(direct_select->table);
  const std::vector<uint8_t> want_explain =
      CanonicalTableBytes(direct_explain->table);

  StartServer();
  const size_t pools_before = exec::WorkerPool::constructions();

  constexpr int kSessions = 8;
  constexpr int kRounds = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        // Alternate SELECT and EXPLAIN across sessions and rounds.
        const bool explain = (s + round) % 2 == 0;
        auto reply = client->Query(explain ? kExplain : kSelect);
        if (!reply.ok() ||
            CanonicalTableBytes(reply->table) !=
                (explain ? want_explain : want_select)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : sessions) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The tentpole's core claim: serving 8 concurrent sessions constructed
  // ZERO new pools — no per-executor, per-store or per-ranking pools.
  EXPECT_EQ(exec::WorkerPool::constructions(), pools_before);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.queries_ok, static_cast<uint64_t>(kSessions * kRounds));
  EXPECT_EQ(stats.sessions_accepted, static_cast<uint64_t>(kSessions));
}

TEST_F(ServerTest, DeadlineExpiryReturnsDeadlineExceeded) {
  StartServer();
  Client client = Connect();
  // ~200us per row over the whole store: far slower than the deadline.
  auto reply = client.Query(
      "SELECT SLOW_ID(value) FROM tsdb", /*deadline_ms=*/30);
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsDeadlineExceeded())
      << reply.status().ToString();
  // The session and the server survive an expired query.
  EXPECT_TRUE(client.Ping().ok());
  auto ok_reply = client.Query(kSelect);
  EXPECT_TRUE(ok_reply.ok()) << ok_reply.status().ToString();
}

TEST_F(ServerTest, ParseErrorsCarryPosition) {
  StartServer();
  Client client = Connect();
  auto reply = client.Query("SELECT 1e999");
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsParseError()) << reply.status().ToString();
  EXPECT_NE(reply.status().message().find("line 1"), std::string::npos)
      << reply.status().message();
}

TEST_F(ServerTest, SessionCapRejectsWithBusy) {
  ServerOptions options;
  options.max_sessions = 1;
  StartServer(options);
  Client first = Connect();
  ASSERT_TRUE(first.Ping().ok());
  auto second = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(second.ok());
  const Status st = second->Ping();
  EXPECT_TRUE(st.IsUnavailable() || st.code() == StatusCode::kIOError)
      << st.ToString();  // kBusy frame, or the close won the race
  EXPECT_GE(server_->stats().sessions_rejected, 1u);
}

TEST_F(ServerTest, QueryGateRejectsBeyondQueueCap) {
  ServerOptions options;
  options.max_concurrent_queries = 1;
  options.max_queued_queries = 0;
  StartServer(options);
  Client busy_client = Connect();
  Client probe = Connect();
  std::thread slow([&busy_client] {
    // Holds the single execution slot for a while.
    auto r = busy_client.Query("SELECT SLOW_ID(value) FROM tsdb",
                               /*deadline_ms=*/500);
    (void)r;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto rejected = probe.Query(kSelect);
  slow.join();
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable())
      << rejected.status().ToString();
  EXPECT_GE(server_->stats().queries_busy, 1u);
}

TEST_F(ServerTest, StopCancelsInFlightQueries) {
  StartServer();
  std::atomic<bool> finished{false};
  std::thread victim([this, &finished] {
    auto client = Client::Connect("127.0.0.1", server_->port());
    if (client.ok()) {
      auto reply = client->Query("SELECT SLOW_ID(value) FROM tsdb");
      // Cancelled via the token, or the socket died first — both are
      // acceptable shutdown outcomes; hanging is not.
      EXPECT_FALSE(reply.ok());
    }
    finished.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_->Stop();
  victim.join();
  EXPECT_TRUE(finished.load());
}

TEST_F(ServerTest, StopRaceNeverLeavesAQueryUncancelled) {
  // Hammer the admit-then-register window: a query admitted just before
  // Stop() flips stopping_ must still be cancelled (or bounced with
  // kBusy) rather than running its full course while Stop() waits on the
  // session thread. Each cycle would block for the whole SLOW_ID scan
  // (many seconds) if the race were lost; the deadline guards that.
  for (int cycle = 0; cycle < 4; ++cycle) {
    StartServer();
    std::vector<std::thread> hammers;
    for (int t = 0; t < 4; ++t) {
      hammers.emplace_back([this] {
        auto client = Client::Connect("127.0.0.1", server_->port());
        if (!client.ok()) return;
        // Loop until the server hangs up; every individual outcome
        // (result, kBusy-as-error, dead socket) is fine.
        while (client->Query("SELECT SLOW_ID(value) FROM tsdb").ok()) {
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5 + 5 * cycle));
    const auto t0 = std::chrono::steady_clock::now();
    server_->Stop();
    const auto stop_elapsed = std::chrono::steady_clock::now() - t0;
    for (auto& h : hammers) h.join();
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                  stop_elapsed)
                  .count(),
              5000)
        << "Stop() waited on an uncancelled query (cycle " << cycle << ")";
  }
}

TEST_F(ServerTest, MonitorStatementsOverTheWire) {
  monitor::MonitorService monitors(engine_.get());
  ServerOptions options;
  options.monitors = &monitors;
  StartServer(options);
  Client client = Connect();

  const std::string standing = std::string(kExplain) +
                               " BETWEEN 0 AND 3599 EVERY 10m INTO wire_hist";
  auto reg = client.Query(standing);
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();
  EXPECT_EQ(reg->statement_kind,
            static_cast<uint8_t>(sql::StatementKind::kExplain));
  EXPECT_EQ(reg->active_monitors, 1u);
  ASSERT_EQ(reg->table.num_rows(), 1u);
  EXPECT_EQ(reg->table.At(0, 0).AsString(), "wire_hist");

  auto show = client.Query("SHOW MONITORS");
  ASSERT_TRUE(show.ok()) << show.status().ToString();
  ASSERT_EQ(show->table.num_rows(), 1u);
  EXPECT_EQ(show->table.At(0, 0).AsString(), "wire_hist");

  // The monitor's history accumulates server-side and is query-visible
  // over the same wire as any table.
  ASSERT_TRUE(monitors.RunOnce("wire_hist").ok());
  auto hist = client.Query("SELECT COUNT(*) AS n FROM wire_hist");
  ASSERT_TRUE(hist.ok()) << hist.status().ToString();
  EXPECT_GT(hist->table.At(0, 0).AsInt(), 0);

  auto dropped = client.Query("DROP MONITOR wire_hist");
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(dropped->active_monitors, 0u);

  server_->Stop();
  monitors.Stop();
}

TEST_F(ServerTest, MonitorStatementsWithoutServiceAreErrors) {
  StartServer();  // no MonitorService attached
  Client client = Connect();
  auto reply = client.Query(std::string(kExplain) +
                            " BETWEEN 0 AND 3599 EVERY 10m INTO nope");
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsInvalidArgument())
      << reply.status().ToString();
}

}  // namespace
}  // namespace explainit::server
