// Decode suite for the server wire protocol. Every length field is
// untrusted: malformed, truncated and oversized frames must come back
// as InvalidArgument — never over-read, never allocate from a hostile
// count. Runs under ASan in CI.
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <cstring>

namespace explainit::server {
namespace {

using table::DataType;
using table::Value;

table::Table SampleTable() {
  table::Schema schema({{"ts", DataType::kTimestamp},
                        {"family", DataType::kString},
                        {"score", DataType::kDouble},
                        {"n", DataType::kInt64},
                        {"v", DataType::kMap},
                        {"hole", DataType::kNull}});
  table::Table t(schema);
  t.AppendRow({Value::Timestamp(1700000000), Value::String("net-host1"),
               Value::Double(0.75), Value::Int(42),
               Value::Map({{"a", Value::Double(1.5)},
                           {"b", Value::String("x")}}),
               Value::Null()});
  t.AppendRow({Value::Timestamp(1700000060), Value::String(""),
               Value::Double(-0.0), Value::Int(-1),
               Value::Map({}), Value::Null()});
  return t;
}

void ExpectTablesEqual(const table::Table& a, const table::Table& b) {
  ASSERT_EQ(a.schema(), b.schema());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_TRUE(a.At(r, c).Equals(b.At(r, c)) ||
                  (a.At(r, c).is_null() && b.At(r, c).is_null()))
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(ProtocolTest, QueryRoundTrip) {
  QueryRequest q{250, "SELECT * FROM tsdb"};
  auto back = DecodeQuery(EncodeQuery(q).data(), EncodeQuery(q).size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->deadline_ms, 250u);
  EXPECT_EQ(back->sql, "SELECT * FROM tsdb");
}

TEST(ProtocolTest, ResultRoundTrip) {
  QueryReply reply;
  reply.latency_us = 12345;
  reply.parallelism = 8;
  reply.rows_output = 2;
  reply.rows_scanned = 999;
  reply.statement_kind = 1;
  reply.table = SampleTable();
  const std::vector<uint8_t> wire = EncodeResult(reply);
  auto back = DecodeResult(wire.data(), wire.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->latency_us, 12345u);
  EXPECT_EQ(back->parallelism, 8u);
  EXPECT_EQ(back->rows_scanned, 999u);
  EXPECT_EQ(back->statement_kind, 1);
  ExpectTablesEqual(back->table, reply.table);
}

TEST(ProtocolTest, ErrorRoundTrip) {
  ErrorReply e{9, "syntax error (line 3, column 7)"};
  const std::vector<uint8_t> wire = EncodeError(e);
  auto back = DecodeError(wire.data(), wire.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->code, 9);
  EXPECT_EQ(back->message, "syntax error (line 3, column 7)");
}

TEST(ProtocolTest, FrameHeaderRoundTrip) {
  const std::vector<uint8_t> frame =
      EncodeFrame(MessageType::kQuery, EncodeQuery({0, "SELECT 1"}));
  auto h = DecodeFrameHeader(frame.data(), frame.size());
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->type, MessageType::kQuery);
  EXPECT_EQ(h->payload_len, frame.size() - kFrameHeaderBytes);
}

TEST(ProtocolTest, HeaderRejectsBadMagic) {
  std::vector<uint8_t> frame = EncodeFrame(MessageType::kPing, {});
  frame[1] ^= 0x55;
  EXPECT_TRUE(DecodeFrameHeader(frame.data(), frame.size())
                  .status()
                  .IsInvalidArgument());
}

TEST(ProtocolTest, HeaderRejectsUnknownType) {
  std::vector<uint8_t> frame = EncodeFrame(MessageType::kPing, {});
  frame[4] = 99;
  EXPECT_TRUE(DecodeFrameHeader(frame.data(), frame.size())
                  .status()
                  .IsInvalidArgument());
}

TEST(ProtocolTest, HeaderRejectsOversizedPayload) {
  std::vector<uint8_t> frame = EncodeFrame(MessageType::kQuery, {});
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(frame.data() + 5, &huge, sizeof(huge));
  EXPECT_TRUE(DecodeFrameHeader(frame.data(), frame.size())
                  .status()
                  .IsInvalidArgument());
}

TEST(ProtocolTest, HeaderRejectsShortBuffer) {
  const std::vector<uint8_t> frame = EncodeFrame(MessageType::kPing, {});
  EXPECT_TRUE(DecodeFrameHeader(frame.data(), kFrameHeaderBytes - 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(ProtocolTest, QueryRejectsTruncationAtEveryLength) {
  // Chopping the payload anywhere must be InvalidArgument, not a crash
  // or an over-read.
  const std::vector<uint8_t> wire = EncodeQuery({1000, "SELECT 1"});
  for (size_t len = 0; len < wire.size(); ++len) {
    auto q = DecodeQuery(wire.data(), len);
    EXPECT_TRUE(q.status().IsInvalidArgument()) << "len=" << len;
  }
}

TEST(ProtocolTest, ResultRejectsTruncationAtEveryLength) {
  QueryReply reply;
  reply.table = SampleTable();
  const std::vector<uint8_t> wire = EncodeResult(reply);
  for (size_t len = 0; len < wire.size(); ++len) {
    auto r = DecodeResult(wire.data(), len);
    EXPECT_TRUE(r.status().IsInvalidArgument()) << "len=" << len;
  }
}

TEST(ProtocolTest, QueryRejectsHostileStringLength) {
  // sql_len claims 4 GiB with 3 bytes behind it.
  ByteWriter w;
  w.U32(0);
  w.U32(0xFFFFFFFFu);
  w.U8('S');
  w.U8('E');
  w.U8('L');
  const auto& wire = w.bytes();
  EXPECT_TRUE(DecodeQuery(wire.data(), wire.size())
                  .status()
                  .IsInvalidArgument());
}

TEST(ProtocolTest, TableRejectsHostileColumnCount) {
  ByteWriter w;
  w.U32(0x10000000u);  // 268M columns in a 4-byte payload
  ByteReader r(w.bytes().data(), w.bytes().size());
  EXPECT_TRUE(DecodeTable(&r).status().IsInvalidArgument());
}

TEST(ProtocolTest, TableRejectsHostileRowCount) {
  ByteWriter w;
  w.U32(1);
  w.Str("c");
  w.U8(static_cast<uint8_t>(DataType::kInt64));
  w.U64(uint64_t{1} << 60);  // 2^60 rows, zero cell bytes behind it
  ByteReader r(w.bytes().data(), w.bytes().size());
  EXPECT_TRUE(DecodeTable(&r).status().IsInvalidArgument());
}

TEST(ProtocolTest, TableRejectsRowsWithoutColumns) {
  ByteWriter w;
  w.U32(0);
  w.U64(5);
  ByteReader r(w.bytes().data(), w.bytes().size());
  EXPECT_TRUE(DecodeTable(&r).status().IsInvalidArgument());
}

TEST(ProtocolTest, TableRejectsUnknownCellTag) {
  ByteWriter w;
  w.U32(1);
  w.Str("c");
  w.U8(static_cast<uint8_t>(DataType::kInt64));
  w.U64(1);
  w.U8(200);  // bogus cell type tag
  ByteReader r(w.bytes().data(), w.bytes().size());
  EXPECT_TRUE(DecodeTable(&r).status().IsInvalidArgument());
}

TEST(ProtocolTest, TableRejectsHostileMapCount) {
  ByteWriter w;
  w.U32(1);
  w.Str("m");
  w.U8(static_cast<uint8_t>(DataType::kMap));
  w.U64(1);
  w.U8(static_cast<uint8_t>(DataType::kMap));
  w.U32(0xFFFFFFFFu);  // 4G map entries, nothing behind them
  ByteReader r(w.bytes().data(), w.bytes().size());
  EXPECT_TRUE(DecodeTable(&r).status().IsInvalidArgument());
}

TEST(ProtocolTest, CellRejectsMapNestingPastDepthCap) {
  // kMaxMapDepth+1 nested single-entry maps.
  ByteWriter w;
  w.U32(1);
  w.Str("m");
  w.U8(static_cast<uint8_t>(DataType::kMap));
  w.U64(1);
  for (int d = 0; d <= kMaxMapDepth; ++d) {
    w.U8(static_cast<uint8_t>(DataType::kMap));
    w.U32(1);
    w.Str("k");
  }
  w.U8(static_cast<uint8_t>(DataType::kNull));
  ByteReader r(w.bytes().data(), w.bytes().size());
  EXPECT_TRUE(DecodeTable(&r).status().IsInvalidArgument());
}

TEST(ProtocolTest, ErrorRejectsTrailingBytes) {
  std::vector<uint8_t> wire = EncodeError({1, "x"});
  wire.push_back(0);
  EXPECT_TRUE(DecodeError(wire.data(), wire.size())
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace explainit::server
