#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "exec/ipc.h"
#include "common/random.h"

namespace explainit::exec {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(500);
  ParallelFor(pool, 500, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 500; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, UsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  ParallelFor(pool, 64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPoolTest, DefaultSizeIsHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

// Regression: a throwing task used to unwind out of WorkerLoop (calling
// std::terminate) and left in_flight_ undecremented, hanging every Wait().
TEST(ThreadPoolTest, ThrowingTaskDoesNotHangWait) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  try {
    pool.Wait();
    FAIL() << "Wait() should rethrow the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, PoolIsReusableAfterTaskThrows) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is cleared once surfaced; workers are still alive.
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, OnlyFirstErrorIsSurfaced) {
  ThreadPool pool(1);  // single worker => deterministic execution order
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::logic_error("second"); });
  try {
    pool.Wait();
    FAIL() << "Wait() should rethrow the first exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  pool.Submit([] {});
  EXPECT_NO_THROW(pool.Wait());
}

TEST(ThreadPoolTest, ParallelForPropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 64,
                           [](size_t i) {
                             if (i == 13) throw std::runtime_error("unlucky");
                           }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForChunksCoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  std::atomic<int> calls{0};
  ParallelForChunks(pool, hits.size(), /*min_grain=*/64,
                    [&](size_t begin, size_t end) {
                      calls.fetch_add(1);
                      for (size_t i = begin; i < end; ++i) {
                        hits[i].fetch_add(1);
                      }
                    });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  // At most one chunk per worker, never more.
  EXPECT_LE(calls.load(), 4);
  EXPECT_GE(calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksSmallInputRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::atomic<size_t> covered{0};
  ParallelForChunks(pool, 10, /*min_grain=*/64,
                    [&](size_t begin, size_t end) {
                      calls.fetch_add(1);
                      covered.fetch_add(end - begin);
                    });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(covered.load(), 10u);
  ParallelForChunks(pool, 0, 64, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);  // empty range: no call at all
}

// ---------------------------------------------------------------------------
// Contention stress: the morsel-parallel operators issue Submit/Wait
// cycles against a shared pool; these tests guard that usage pattern.
// ---------------------------------------------------------------------------

TEST(ThreadPoolStressTest, ConcurrentSubmitWaitFromManyThreads) {
  ThreadPool pool(4);
  constexpr int kClients = 6;
  constexpr int kRounds = 25;
  constexpr int kTasksPerRound = 40;
  std::atomic<int> counter{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (int t = 0; t < kTasksPerRound; ++t) {
          pool.Submit([&counter] { counter.fetch_add(1); });
        }
        // Wait() is pool-global: when it returns, *this* client's tasks
        // are certainly done (possibly along with other clients').
        pool.Wait();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(counter.load(), kClients * kRounds * kTasksPerRound);
}

TEST(ThreadPoolStressTest, ExceptionPropagationUnderContention) {
  ThreadPool pool(3);
  constexpr int kClients = 5;
  constexpr int kRounds = 30;
  std::atomic<int> ran{0};
  std::atomic<int> rethrown{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        for (int t = 0; t < 8; ++t) {
          const bool thrower = (t == 3 && (round + c) % 4 == 0);
          pool.Submit([&ran, thrower] {
            if (thrower) throw std::runtime_error("stress");
            ran.fetch_add(1);
          });
        }
        try {
          pool.Wait();
        } catch (const std::runtime_error&) {
          rethrown.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  // Unsurfaced errors from interleaved rounds drain on the final Wait.
  try {
    pool.Wait();
  } catch (const std::runtime_error&) {
    rethrown.fetch_add(1);
  }
  // Every non-throwing task ran despite the contention and exceptions.
  const int total = kClients * kRounds * 8;
  const int throwers = kClients * kRounds / 4 * 1;  // (round+c)%4==0 rounds
  EXPECT_GE(ran.load(), total - throwers - kClients);
  // At least one exception surfaced through some Wait(); the pool never
  // loses workers to an unwinding task (the counter above proves it).
  EXPECT_GE(rethrown.load(), 1);
  // The pool remains fully usable afterwards.
  std::atomic<int> after{0};
  ParallelFor(pool, 64, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPoolStressTest, ConcurrentParallelForChunksClients) {
  ThreadPool pool(4);
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::atomic<size_t>> sums(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 10; ++round) {
        size_t local = 0;
        std::mutex mu;
        ParallelForChunks(pool, 5000, 64, [&](size_t begin, size_t end) {
          size_t s = 0;
          for (size_t i = begin; i < end; ++i) s += i;
          std::lock_guard<std::mutex> lock(mu);
          local += s;
        });
        sums[c].store(local);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const size_t expected = 5000ull * 4999ull / 2;
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(sums[c].load(), expected);
}

TEST(IpcTest, MatrixRoundTripExact) {
  Rng rng(1);
  la::Matrix m(37, 13);
  rng.FillNormal(m.data(), m.size());
  auto back = DecodeMatrix(EncodeMatrix(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), m);
}

TEST(IpcTest, EmptyMatrix) {
  la::Matrix m;
  auto back = DecodeMatrix(EncodeMatrix(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows(), 0u);
  EXPECT_EQ(back->cols(), 0u);
}

TEST(IpcTest, RejectsCorruptBuffers) {
  EXPECT_FALSE(DecodeMatrix({1, 2, 3}).ok());
  la::Matrix m(2, 2);
  auto buf = EncodeMatrix(m);
  buf[0] ^= 0xFF;  // clobber magic
  EXPECT_FALSE(DecodeMatrix(buf).ok());
  buf[0] ^= 0xFF;
  buf.pop_back();  // truncate
  EXPECT_FALSE(DecodeMatrix(buf).ok());
}

TEST(IpcTest, RoundTripAccumulatesTime) {
  Rng rng(2);
  la::Matrix m(100, 50);
  rng.FillNormal(m.data(), m.size());
  double seconds = 0.0;
  auto back = RoundTripMatrix(m, &seconds);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), m);
  EXPECT_GT(seconds, 0.0);
}

}  // namespace
}  // namespace explainit::exec
