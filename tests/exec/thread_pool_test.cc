#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "exec/ipc.h"
#include "common/random.h"

namespace explainit::exec {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(500);
  ParallelFor(pool, 500, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 500; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, UsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  ParallelFor(pool, 64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPoolTest, DefaultSizeIsHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

// Regression: a throwing task used to unwind out of WorkerLoop (calling
// std::terminate) and left in_flight_ undecremented, hanging every Wait().
TEST(ThreadPoolTest, ThrowingTaskDoesNotHangWait) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  try {
    pool.Wait();
    FAIL() << "Wait() should rethrow the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, PoolIsReusableAfterTaskThrows) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is cleared once surfaced; workers are still alive.
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, OnlyFirstErrorIsSurfaced) {
  ThreadPool pool(1);  // single worker => deterministic execution order
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::logic_error("second"); });
  try {
    pool.Wait();
    FAIL() << "Wait() should rethrow the first exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  pool.Submit([] {});
  EXPECT_NO_THROW(pool.Wait());
}

TEST(ThreadPoolTest, ParallelForPropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 64,
                           [](size_t i) {
                             if (i == 13) throw std::runtime_error("unlucky");
                           }),
               std::runtime_error);
}

TEST(IpcTest, MatrixRoundTripExact) {
  Rng rng(1);
  la::Matrix m(37, 13);
  rng.FillNormal(m.data(), m.size());
  auto back = DecodeMatrix(EncodeMatrix(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), m);
}

TEST(IpcTest, EmptyMatrix) {
  la::Matrix m;
  auto back = DecodeMatrix(EncodeMatrix(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows(), 0u);
  EXPECT_EQ(back->cols(), 0u);
}

TEST(IpcTest, RejectsCorruptBuffers) {
  EXPECT_FALSE(DecodeMatrix({1, 2, 3}).ok());
  la::Matrix m(2, 2);
  auto buf = EncodeMatrix(m);
  buf[0] ^= 0xFF;  // clobber magic
  EXPECT_FALSE(DecodeMatrix(buf).ok());
  buf[0] ^= 0xFF;
  buf.pop_back();  // truncate
  EXPECT_FALSE(DecodeMatrix(buf).ok());
}

TEST(IpcTest, RoundTripAccumulatesTime) {
  Rng rng(2);
  la::Matrix m(100, 50);
  rng.FillNormal(m.data(), m.size());
  double seconds = 0.0;
  auto back = RoundTripMatrix(m, &seconds);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), m);
  EXPECT_GT(seconds, 0.0);
}

}  // namespace
}  // namespace explainit::exec
