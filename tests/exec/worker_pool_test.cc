#include "exec/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace explainit::exec {
namespace {

TEST(WorkerPoolTest, RunsAllTasksInAGroup) {
  WorkerPool pool(4);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Submit([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkerPoolTest, WaitIsGroupLocal) {
  // Group A's Wait must not block on group B's slow task.
  WorkerPool pool(2);
  std::atomic<bool> b_release{false};
  TaskGroup slow(&pool);
  slow.Submit([&b_release] {
    while (!b_release.load()) std::this_thread::yield();
  });
  TaskGroup fast(&pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) fast.Submit([&done] { done.fetch_add(1); });
  fast.Wait();  // must return while `slow` still runs
  EXPECT_EQ(done.load(), 10);
  b_release.store(true);
  slow.Wait();
}

TEST(WorkerPoolTest, ErrorsAreGroupLocalAndFirstOnly) {
  WorkerPool pool(1);  // single worker => deterministic order
  TaskGroup failing(&pool);
  TaskGroup clean(&pool);
  failing.Submit([] { throw std::runtime_error("first"); });
  failing.Submit([] { throw std::runtime_error("second"); });
  std::atomic<int> ok{0};
  clean.Submit([&ok] { ok.fetch_add(1); });
  EXPECT_THROW(
      {
        try {
          failing.Wait();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "first");
          throw;
        }
      },
      std::runtime_error);
  clean.Wait();  // the sibling group never sees the error
  EXPECT_EQ(ok.load(), 1);
  // The failing group stays usable after a rethrow.
  failing.Submit([&ok] { ok.fetch_add(1); });
  failing.Wait();
  EXPECT_EQ(ok.load(), 2);
}

TEST(WorkerPoolTest, SerialGroupPreservesSubmissionOrder) {
  WorkerPool pool(4);
  TaskGroup serial(&pool, /*max_concurrency=*/1);
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 50; ++i) {
    serial.Submit([&order, &m, i] {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    });
  }
  serial.Wait();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkerPoolTest, WaitHelpsOnASaturatedPool) {
  // Every worker is parked on a latch; Wait() must still finish the
  // group by running its queued tasks inline.
  WorkerPool pool(2);
  std::atomic<bool> release{false};
  TaskGroup blockers(&pool);
  for (size_t i = 0; i < pool.num_threads(); ++i) {
    blockers.Submit([&release] {
      while (!release.load()) std::this_thread::yield();
    });
  }
  TaskGroup work(&pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) work.Submit([&done] { done.fetch_add(1); });
  work.Wait();  // helps inline; would deadlock on a non-helping pool
  EXPECT_EQ(done.load(), 8);
  release.store(true);
  blockers.Wait();
}

TEST(WorkerPoolTest, NestedParallelForDoesNotDeadlock) {
  WorkerPool pool(2);
  std::atomic<int> leaf{0};
  ParallelFor(pool, 4, [&pool, &leaf](size_t) {
    ParallelFor(pool, 4, [&leaf](size_t) { leaf.fetch_add(1); });
  });
  EXPECT_EQ(leaf.load(), 16);
}

TEST(WorkerPoolTest, ParallelForCoversRangeExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, ParallelForChunksMatchesSeedBoundaries) {
  // Chunk boundaries must depend only on (n, min_grain, num_threads) —
  // the executor's sharded operators rely on this for determinism.
  WorkerPool pool(4);
  std::mutex m;
  std::set<std::pair<size_t, size_t>> chunks;
  ParallelForChunks(pool, 103, 16, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(m);
    chunks.insert({begin, end});
  });
  // chunks = min(threads=4, 103/16=6) = 4; base 25, extra 3 -> the first
  // three chunks get 26.
  const std::set<std::pair<size_t, size_t>> expected = {
      {0, 26}, {26, 52}, {52, 78}, {78, 103}};
  EXPECT_EQ(chunks, expected);
}

TEST(WorkerPoolTest, ParallelForPropagatesException) {
  WorkerPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 64,
                           [](size_t i) {
                             if (i == 13) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(WorkerPoolTest, ConstructionCounterCountsPools) {
  const size_t before = WorkerPool::constructions();
  { WorkerPool pool(2); }
  { WorkerPool pool(3); }
  EXPECT_EQ(WorkerPool::constructions(), before + 2);
}

TEST(WorkerPoolTest, GlobalIsCreatedOnceAndShared) {
  WorkerPool& a = WorkerPool::Global();
  const size_t after_first = WorkerPool::constructions();
  WorkerPool& b = WorkerPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(WorkerPool::constructions(), after_first);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(WorkerPoolTest, TagCountsAccumulate) {
  WorkerPool pool(2);
  TaskGroup group(&pool);
  for (int i = 0; i < 5; ++i) group.Submit([] {}, "alpha");
  for (int i = 0; i < 3; ++i) group.Submit([] {}, "beta");
  group.Wait();
  const auto counts = pool.TagCounts();
  EXPECT_EQ(counts.at("alpha"), 5u);
  EXPECT_EQ(counts.at("beta"), 3u);
}

TEST(WorkerPoolStressTest, ManyGroupsFromManyThreads) {
  WorkerPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&pool, &total] {
      for (int round = 0; round < 20; ++round) {
        TaskGroup group(&pool);
        for (int i = 0; i < 10; ++i) {
          group.Submit([&total] { total.fetch_add(1); });
        }
        group.Wait();
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(total.load(), 8 * 20 * 10);
}

}  // namespace
}  // namespace explainit::exec
