// Adversarial decode suite for the matrix wire codec: headers are
// untrusted bytes once buffers arrive over a socket, so hostile
// dimensions must be rejected before any size arithmetic (which would
// otherwise wrap uint64 and turn the payload memcpy into a heap
// overflow) — InvalidArgument, never a crash. Runs under ASan in CI.
#include "exec/ipc.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace explainit::exec {
namespace {

constexpr size_t kHeaderBytes = sizeof(uint32_t) + 2 * sizeof(uint64_t);

/// Builds a buffer with the given header and payload size.
std::vector<uint8_t> MakeBuffer(uint64_t rows, uint64_t cols,
                                size_t payload_bytes) {
  la::Matrix probe(1, 1);
  std::vector<uint8_t> buf = EncodeMatrix(probe);
  buf.resize(kHeaderBytes + payload_bytes);
  std::memcpy(buf.data() + sizeof(uint32_t), &rows, sizeof(rows));
  std::memcpy(buf.data() + sizeof(uint32_t) + sizeof(uint64_t), &cols,
              sizeof(cols));
  return buf;
}

TEST(IpcTest, RoundTripsAMatrix) {
  la::Matrix m(3, 5);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 5; ++c) m(r, c) = static_cast<double>(r * 5 + c);
  }
  auto back = DecodeMatrix(EncodeMatrix(m));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->rows(), 3u);
  ASSERT_EQ(back->cols(), 5u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 5; ++c) EXPECT_EQ((*back)(r, c), m(r, c));
  }
}

TEST(IpcTest, RejectsTruncatedHeader) {
  const std::vector<uint8_t> buf(kHeaderBytes - 1, 0);
  auto m = DecodeMatrix(buf);
  EXPECT_TRUE(m.status().IsInvalidArgument());
}

TEST(IpcTest, RejectsBadMagic) {
  std::vector<uint8_t> buf = EncodeMatrix(la::Matrix(2, 2));
  buf[0] ^= 0xFF;
  auto m = DecodeMatrix(buf);
  EXPECT_TRUE(m.status().IsInvalidArgument());
}

TEST(IpcTest, RejectsRowsColsProductWrappingToZeroPayload) {
  // rows = 2^61, cols = 8: rows*cols*sizeof(double) wraps uint64 to 0,
  // so the unchecked `expected` would equal the bare header size and the
  // la::Matrix(2^61, 8) construction would explode.
  auto m = DecodeMatrix(MakeBuffer(uint64_t{1} << 61, 8, 0));
  ASSERT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidArgument());
}

TEST(IpcTest, RejectsElementCountWrappingToSmallPayload) {
  // rows = cols = 2^32: the product wraps to 0 elements; a short buffer
  // would satisfy the unchecked size equation exactly.
  auto m = DecodeMatrix(MakeBuffer(uint64_t{1} << 32, uint64_t{1} << 32, 0));
  ASSERT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidArgument());
}

TEST(IpcTest, RejectsByteSizeWrap) {
  // Dimensions under the per-dimension cap whose element count exceeds
  // the element cap (and whose byte size would overflow downstream
  // allocations on 32-bit size_t).
  auto m = DecodeMatrix(MakeBuffer(uint64_t{1} << 24, uint64_t{1} << 24, 0));
  ASSERT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidArgument());
}

TEST(IpcTest, RejectsDimensionPastCap) {
  auto m = DecodeMatrix(MakeBuffer(kMaxMatrixDim + 1, 1, 8));
  ASSERT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidArgument());
}

TEST(IpcTest, RejectsPayloadSizeMismatch) {
  // Honest dimensions, dishonest payload length (one row short).
  auto m = DecodeMatrix(MakeBuffer(4, 2, 3 * 2 * sizeof(double)));
  ASSERT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidArgument());
}

TEST(IpcTest, RejectsTrailingGarbage) {
  std::vector<uint8_t> buf = EncodeMatrix(la::Matrix(2, 2));
  buf.push_back(0x00);
  auto m = DecodeMatrix(buf);
  EXPECT_TRUE(m.status().IsInvalidArgument());
}

TEST(IpcTest, AcceptsZeroByZero) {
  auto m = DecodeMatrix(EncodeMatrix(la::Matrix(0, 0)));
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->rows(), 0u);
  EXPECT_EQ(m->cols(), 0u);
}

}  // namespace
}  // namespace explainit::exec
