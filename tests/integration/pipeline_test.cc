// End-to-end integration tests of the Figure 4 pipeline: tsdb -> SQL
// (Appendix C queries, including the Listing 5 hypothesis join) ->
// feature families -> scoring -> Score Table -> SQL over the Score Table.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "simulator/case_studies.h"
#include "sql/executor.h"

namespace explainit {
namespace {

class PipelineIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = sim::MakeHypervisorDropCase(240, 777);
    engine_ = std::make_unique<core::Engine>(world_.store);
    engine_->RegisterStoreTable("tsdb", world_.range);
  }

  sim::CaseStudyWorld world_;
  std::unique_ptr<core::Engine> engine_;
};

TEST_F(PipelineIntegrationTest, Listing5HypothesisJoin) {
  // Stage 1-3 results registered as tables, then the paper's hypothesis
  // join: (FF_1 UNION FF_2) FF FULL OUTER JOIN Target FULL OUTER JOIN
  // Condition, all ON timestamp.
  auto ff1 = engine_->Sql(R"(
      SELECT timestamp, AVG(value) AS retransmits
      FROM tsdb WHERE metric_name = 'tcp_retransmits'
      GROUP BY timestamp)");
  auto target = engine_->Sql(R"(
      SELECT timestamp, AVG(value) AS runtime_sec
      FROM tsdb WHERE metric_name = 'overall_runtime'
      GROUP BY timestamp)");
  auto condition = engine_->Sql(R"(
      SELECT timestamp, AVG(value) AS input_events
      FROM tsdb WHERE metric_name LIKE 'input_rate%'
      GROUP BY timestamp)");
  ASSERT_TRUE(ff1.ok() && target.ok() && condition.ok());
  engine_->catalog().RegisterTable("FF_1", *ff1);
  engine_->catalog().RegisterTable("FF_2", *ff1);  // stand-in second source
  engine_->catalog().RegisterTable("Target", *target);
  engine_->catalog().RegisterTable("Cond", *condition);

  auto hypothesis = engine_->Sql(R"(
      SELECT FF.timestamp, FF.retransmits, Target.runtime_sec,
             Cond.input_events
      FROM (SELECT * FROM FF_1 UNION ALL SELECT * FROM FF_2) FF
      FULL OUTER JOIN Target ON (FF.timestamp = Target.timestamp)
      FULL OUTER JOIN Cond ON Target.timestamp = Cond.timestamp
      ORDER BY FF.timestamp ASC)");
  ASSERT_TRUE(hypothesis.ok()) << hypothesis.status().ToString();
  // Two FF copies x 240 timestamps, all matching the 240 target rows.
  EXPECT_EQ(hypothesis->num_rows(), 480u);
  EXPECT_EQ(hypothesis->num_columns(), 4u);
  // Every row carries a joined runtime and condition value.
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_FALSE(hypothesis->At(r, 2).is_null());
    EXPECT_FALSE(hypothesis->At(r, 3).is_null());
  }
}

TEST_F(PipelineIntegrationTest, ScoreTableIsQueryable) {
  // The Score Table of Figure 4 feeds back into SQL, closing the loop.
  core::Session session(engine_.get(), world_.range);
  ASSERT_TRUE(session.SetTargetByMetric("overall_runtime").ok());
  core::GroupingOptions g;
  g.key = core::GroupingKey::kMetricName;
  ASSERT_TRUE(session.SetSearchSpaceByGrouping(g).ok());
  ASSERT_TRUE(session.SetScorer("CorrMax").ok());
  auto table = session.Run();
  ASSERT_TRUE(table.ok());
  engine_->catalog().RegisterTable("scores", table->ToTable());
  auto strong = engine_->Sql(
      "SELECT family, score FROM scores WHERE score > 0.5 "
      "ORDER BY score DESC");
  ASSERT_TRUE(strong.ok()) << strong.status().ToString();
  EXPECT_GT(strong->num_rows(), 0u);
  EXPECT_LE(strong->num_rows(), table->rows.size());
  auto count = engine_->Sql("SELECT COUNT(*) AS n FROM scores");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(static_cast<size_t>(count->At(0, 0).AsInt()),
            table->rows.size());
}

TEST_F(PipelineIntegrationTest, LaggedFeaturesViaSqlLag) {
  // §3.5 footnote: "the user could specify lagged features from the past
  // ... by using LAG function in SQL".
  // LAG windows over row order, so aggregate first in a subquery and lag
  // over the aggregated rows.
  auto lagged = engine_->Sql(R"(
      SELECT timestamp, v, LAG(v) AS v_lag1
      FROM (SELECT timestamp, AVG(value) AS v
            FROM tsdb WHERE metric_name = 'overall_runtime'
            GROUP BY timestamp ORDER BY timestamp ASC) agg)");
  ASSERT_TRUE(lagged.ok()) << lagged.status().ToString();
  ASSERT_GT(lagged->num_rows(), 2u);
  EXPECT_TRUE(lagged->At(0, 2).is_null());  // no previous row
  EXPECT_EQ(lagged->At(1, 2).AsDouble(), lagged->At(0, 1).AsDouble());
}

TEST_F(PipelineIntegrationTest, FamiliesFromQueryFeedEngineRank) {
  auto families = engine_->FamiliesFromQuery(R"(
      SELECT timestamp, metric_name, AVG(value) AS v
      FROM tsdb
      WHERE metric_name IN ('tcp_retransmits', 'disk_utilization',
                            'jvm_gc_ms')
      GROUP BY timestamp, metric_name)");
  ASSERT_TRUE(families.ok()) << families.status().ToString();
  EXPECT_EQ(families->size(), 3u);
  core::RankRequest req;
  auto target = engine_->FamilyFromMetric("overall_runtime", world_.range,
                                          "target");
  ASSERT_TRUE(target.ok());
  req.target = std::move(target).value();
  req.candidates = std::move(families).value();
  // Query results and store scans share the minute grid, so ranking works
  // without explicit alignment.
  req.scorer_name = "CorrMax";
  auto table = engine_->Rank(req);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->rows.size(), 3u);
  EXPECT_EQ(table->rows[0].family_name, "tcp_retransmits");
}

TEST_F(PipelineIntegrationTest, SnapshotPreservesAnalysis) {
  // Persist the store, reload, and verify the ranking is identical.
  const std::string path = ::testing::TempDir() + "/world.snap";
  ASSERT_TRUE(world_.store->SaveSnapshot(path).ok());
  auto reloaded = std::make_shared<tsdb::SeriesStore>();
  ASSERT_TRUE(reloaded->LoadSnapshot(path).ok());
  core::Engine engine2(reloaded);
  auto run = [&](core::Engine& e) {
    core::Session s(&e, world_.range);
    EXPECT_TRUE(s.SetTargetByMetric("overall_runtime").ok());
    core::GroupingOptions g;
    EXPECT_TRUE(s.SetSearchSpaceByGrouping(g).ok());
    EXPECT_TRUE(s.SetScorer("CorrMax").ok());
    auto t = s.Run();
    EXPECT_TRUE(t.ok());
    return t.ok() ? std::move(t).value() : core::ScoreTable{};
  };
  core::ScoreTable a = run(*engine_);
  core::ScoreTable b = run(engine2);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].family_name, b.rows[i].family_name);
    EXPECT_DOUBLE_EQ(a.rows[i].score, b.rows[i].score);
  }
}

}  // namespace
}  // namespace explainit
