// End-to-end tests of the declarative EXPLAIN statement over the
// simulator's fault-injection scenarios: the injected cause must rank in
// the top-k, GIVEN conditioning must behave like the Session API, and —
// the acceptance bar of the statement redesign — an EXPLAIN statement
// must return a Score Table identical (same families, same order) to the
// equivalent programmatic Session run at parallelism 1 and N.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "core/engine.h"
#include "simulator/case_studies.h"

namespace explainit {
namespace {

// The three stage queries of the declarative workflow (Appendix C shapes)
// over the registered `tsdb` table. The search space groups per metric
// name and excludes the target metric (§3.3: no overlap between X and Y).
const char* kTargetQuery =
    "SELECT timestamp, AVG(value) AS runtime_sec FROM tsdb "
    "WHERE metric_name = 'overall_runtime' GROUP BY timestamp";
const char* kConditionQuery =
    "SELECT timestamp, AVG(value) AS input_events FROM tsdb "
    "WHERE metric_name LIKE 'input_rate%' GROUP BY timestamp";
const char* kSpaceQuery =
    "SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb "
    "WHERE metric_name != 'overall_runtime' "
    "GROUP BY timestamp, metric_name";

std::string ExplainStatementText(const std::string& scorer, size_t top_k) {
  return std::string("EXPLAIN (") + kTargetQuery + ") GIVEN (" +
         kConditionQuery + ") USING (" + kSpaceQuery + ") SCORE BY '" +
         scorer + "' TOP " + std::to_string(top_k);
}

TEST(ExplainE2eTest, InjectedCauseRanksTopKAcrossScenarios) {
  // Global first-pass search with the univariate scorer, as the §6.1
  // takeaway recommends (the table3 bench uses the same recipe through
  // the Session API); the injected cause must land in the top 10.
  struct Scenario {
    const char* name;
    sim::CaseStudyWorld world;
  };
  Scenario scenarios[] = {
      {"packet_drop", sim::MakePacketDropCase(240, 1101)},
      {"hypervisor_drop", sim::MakeHypervisorDropCase(240, 1202)},
      {"namenode_scan", sim::MakeNamenodeScanCase(240, 1303)},
  };
  for (Scenario& s : scenarios) {
    SCOPED_TRACE(s.name);
    core::Engine engine(s.world.store);
    engine.RegisterStoreTable("tsdb", s.world.range);
    auto result = engine.Query(std::string("EXPLAIN (") + kTargetQuery +
                               ") USING (" + kSpaceQuery +
                               ") SCORE BY 'CorrMax' TOP 20");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->score_table.has_value());
    size_t best_cause_rank = 0;
    for (const std::string& cause : s.world.labels.causes) {
      const size_t r = result->score_table->RankOf(cause);
      if (r > 0 && (best_cause_rank == 0 || r < best_cause_rank)) {
        best_cause_rank = r;
      }
    }
    EXPECT_GT(best_cause_rank, 0u)
        << "no labelled cause in the Score Table";
    EXPECT_LE(best_cause_rank, 10u);
  }
}

TEST(ExplainE2eTest, ExplainRangeFocusesOnFaultWindow) {
  sim::CaseStudyWorld world = sim::MakePacketDropCase(240, 1404);
  core::Engine engine(world.store);
  engine.RegisterStoreTable("tsdb", world.range);
  const std::string stmt =
      ExplainStatementText("L2", 10) + " BETWEEN " +
      std::to_string(world.fault_window.start) + " AND " +
      std::to_string(world.fault_window.end - 1);
  auto result = engine.Query(stmt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The window score is populated (Figure 2's range-to-explain view).
  bool any_window_score = false;
  for (const auto& row : result->score_table->rows) {
    if (row.explain_window_score > 0.0) any_window_score = true;
  }
  EXPECT_TRUE(any_window_score);
}

// The acceptance bar: declarative and programmatic RCA share one engine,
// so the same queries produce byte-identical rankings — at a serial and a
// parallel pipeline alike.
TEST(ExplainE2eTest, ExplainMatchesSessionRunAtEveryParallelism) {
  sim::CaseStudyWorld world = sim::MakeHypervisorDropCase(240, 1505);

  auto session_table = [&](size_t parallelism) {
    core::EngineOptions opt;
    opt.sql_parallelism = parallelism;
    core::Engine engine(world.store, opt);
    engine.RegisterStoreTable("tsdb", world.range);
    core::Session session(&engine, world.range);
    EXPECT_TRUE(session.SetTargetByQuery(kTargetQuery).ok());
    EXPECT_TRUE(session.SetConditionByQuery(kConditionQuery).ok());
    EXPECT_TRUE(session.SetSearchSpaceByQuery(kSpaceQuery).ok());
    EXPECT_TRUE(session.SetScorer("L2").ok());
    auto table = session.Run();
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    return table.ok() ? std::move(table).value() : core::ScoreTable{};
  };
  auto explain_table = [&](size_t parallelism) {
    core::EngineOptions opt;
    opt.sql_parallelism = parallelism;
    core::Engine engine(world.store, opt);
    engine.RegisterStoreTable("tsdb", world.range);
    auto result = engine.Query(ExplainStatementText("L2", 20));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(*result->score_table)
                       : core::ScoreTable{};
  };

  const core::ScoreTable reference = session_table(1);
  ASSERT_GT(reference.rows.size(), 2u);
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    for (const core::ScoreTable& got :
         {explain_table(parallelism), session_table(parallelism)}) {
      ASSERT_EQ(got.rows.size(), reference.rows.size());
      for (size_t i = 0; i < reference.rows.size(); ++i) {
        EXPECT_EQ(got.rows[i].family_name, reference.rows[i].family_name)
            << "rank " << i + 1;
        // Parallel sub-select aggregation re-associates FP sums, so the
        // family data (and hence scores) match to tolerance, not bits.
        EXPECT_NEAR(got.rows[i].score, reference.rows[i].score,
                    1e-9 * (1.0 + std::abs(reference.rows[i].score)))
            << "rank " << i + 1;
        EXPECT_EQ(got.rows[i].num_features, reference.rows[i].num_features);
      }
    }
  }
}

}  // namespace
}  // namespace explainit
