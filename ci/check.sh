#!/usr/bin/env bash
# Tier-1 verification gate: Release build + full ctest + bench smoke, an
# ASan/UBSan Debug build + full ctest, and a ThreadSanitizer build running
# the concurrency-sensitive suites (operators, differential, thread pool).
# Run from anywhere.
#
# Usage: check.sh [release|asan|tsan|all]   (default: all)
# CI runs the stages as separate jobs; `all` reproduces the full gate
# locally.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
STAGE="${1:-all}"

run_suite() {
  local build_dir="$1"
  shift
  echo "=== configure: ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S "${ROOT}" "$@"
  echo "=== build: ${build_dir} ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ctest: ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

if [[ "${STAGE}" == "release" || "${STAGE}" == "all" ]]; then
  run_suite "${ROOT}/build" -DCMAKE_BUILD_TYPE=Release

  # The Release tree builds the bench binaries; smoke-run the SQL pipeline
  # bench (tiny scale, seed-vs-pipeline cross-validation across the
  # parallelism sweep) so it cannot rot.
  echo "=== bench smoke: sql_pipeline ==="
  "${ROOT}/build/bench/sql_pipeline" --smoke \
    "${ROOT}/build/BENCH_sql_pipeline.smoke.json"

  # End-to-end EXPLAIN statement: ranking parity across the parallelism
  # sweep, plus the declarative example (the examples are built above).
  # Concurrent ingest over the tiered store: streamed write + query
  # threads, then three-way parity (live tiered / bulk reference / seed
  # interpreter) and proof the grid queries were tier-served.
  echo "=== bench smoke: ingest ==="
  "${ROOT}/build/bench/ingest" --smoke \
    "${ROOT}/build/BENCH_ingest.smoke.json"

  echo "=== bench smoke: explain_rca ==="
  "${ROOT}/build/bench/explain_rca" --smoke \
    "${ROOT}/build/BENCH_explain.smoke.json"

  # SIMD kernel gates: scalar-vs-AVX2 differential correctness, the
  # silent-fallback dispatch check (an AVX2-capable host must auto-select
  # the AVX2 table), and one timed repetition per kernel. The >=2x speedup
  # gate only runs in full (non-smoke) invocations.
  echo "=== bench smoke: kernels_microbench ==="
  "${ROOT}/build/bench/kernels_microbench" --smoke \
    "${ROOT}/build/BENCH_kernels.smoke.json"
  echo "=== example smoke: explain_sql ==="
  "${ROOT}/build/examples/explain_sql" >/dev/null

  # Concurrent server: start the daemon on an ephemeral port, drive it
  # with concurrent client sessions over real TCP, then run the server
  # bench's smoke sweep (1/8 sessions, every reply parity-gated against
  # Engine::Query, zero-new-pools gate).
  echo "=== server smoke: explainit_serverd + concurrent clients ==="
  SERVERD_LOG="${ROOT}/build/serverd.smoke.log"
  "${ROOT}/build/src/server/explainit_serverd" --port=0 --minutes=120 \
    > "${SERVERD_LOG}" &
  SERVERD_PID=$!
  trap 'kill "${SERVERD_PID}" 2>/dev/null || true' EXIT
  SERVERD_PORT=""
  for _ in $(seq 1 100); do
    SERVERD_PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' \
      "${SERVERD_LOG}" 2>/dev/null || true)"
    [[ -n "${SERVERD_PORT}" ]] && break
    sleep 0.1
  done
  if [[ -z "${SERVERD_PORT}" ]]; then
    echo "explainit_serverd did not come up:" >&2
    cat "${SERVERD_LOG}" >&2
    exit 1
  fi
  "${ROOT}/build/src/server/explainit_server_smoke" \
    --port="${SERVERD_PORT}" --sessions=8
  kill "${SERVERD_PID}"
  wait "${SERVERD_PID}" 2>/dev/null || true
  trap - EXIT

  echo "=== bench smoke: server ==="
  "${ROOT}/build/bench/server" --smoke "${ROOT}/build/BENCH_server.smoke.json"

  # Standing-query monitor: sliding-window runs under live ingestion must
  # be byte-identical to bounded one-shot EXPLAINs, the shared scan must
  # reuse window overlap, and a triggered monitor must fire on an injected
  # §5.1 packet-drop fault with the true cause in a top-10.
  echo "=== bench smoke: monitor ==="
  "${ROOT}/build/bench/monitor" --smoke \
    "${ROOT}/build/BENCH_monitor.smoke.json"
fi

if [[ "${STAGE}" == "asan" || "${STAGE}" == "all" ]]; then
  run_suite "${ROOT}/build-asan" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DEXPLAINIT_SANITIZE=ON
fi

if [[ "${STAGE}" == "tsan" || "${STAGE}" == "all" ]]; then
  # ThreadSanitizer job: the suites that drive the morsel-parallel
  # operators, the partitioned join/sort/materialisation paths, the
  # worker pool itself, the tiered store's write/scan/seal concurrency,
  # and the monitor scheduler/write-tap/shared-scan paths. (ASan and
  # TSan cannot share a build tree.)
  echo "=== configure: ${ROOT}/build-tsan (ThreadSanitizer) ==="
  cmake -B "${ROOT}/build-tsan" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DEXPLAINIT_TSAN=ON
  echo "=== build: ${ROOT}/build-tsan ==="
  cmake --build "${ROOT}/build-tsan" -j "${JOBS}"
  echo "=== ctest (tsan): operator, differential and thread-pool suites ==="
  ctest --test-dir "${ROOT}/build-tsan" --output-on-failure -j "${JOBS}" \
    -R 'operators_test|differential_test|executor_test|planner_test|logical_plan_test|optimizer_test|fuzz_roundtrip_test|thread_pool_test|worker_pool_test|server_test|concurrency_test|tiered_store_test|ranking_test|ridge_test|anomaly_test|monitor_test|monitor_stress_test'
fi

echo "=== checks passed (${STAGE}) ==="
