#!/usr/bin/env bash
# Tier-1 verification gate: Release build + full ctest + bench smoke, and
# an ASan/UBSan Debug build + full ctest. Run from anywhere.
#
# Usage: check.sh [release|asan|all]   (default: all)
# CI runs the two stages as separate jobs; `all` reproduces the full gate
# locally.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
STAGE="${1:-all}"

run_suite() {
  local build_dir="$1"
  shift
  echo "=== configure: ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S "${ROOT}" "$@"
  echo "=== build: ${build_dir} ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ctest: ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

if [[ "${STAGE}" == "release" || "${STAGE}" == "all" ]]; then
  run_suite "${ROOT}/build" -DCMAKE_BUILD_TYPE=Release

  # The Release tree builds the bench binaries; smoke-run the SQL pipeline
  # bench (tiny scale, seed-vs-pipeline cross-validation across the
  # parallelism sweep) so it cannot rot.
  echo "=== bench smoke: sql_pipeline ==="
  "${ROOT}/build/bench/sql_pipeline" --smoke \
    "${ROOT}/build/BENCH_sql_pipeline.smoke.json"

  # End-to-end EXPLAIN statement: ranking parity across the parallelism
  # sweep, plus the declarative example (the examples are built above).
  echo "=== bench smoke: explain_rca ==="
  "${ROOT}/build/bench/explain_rca" --smoke \
    "${ROOT}/build/BENCH_explain.smoke.json"
  echo "=== example smoke: explain_sql ==="
  "${ROOT}/build/examples/explain_sql" >/dev/null
fi

if [[ "${STAGE}" == "asan" || "${STAGE}" == "all" ]]; then
  run_suite "${ROOT}/build-asan" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DEXPLAINIT_SANITIZE=ON
fi

echo "=== checks passed (${STAGE}) ==="
