#!/usr/bin/env bash
# Tier-1 verification gate: Release build + full ctest, then an
# ASan/UBSan Debug build + full ctest. Run from anywhere.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"
  shift
  echo "=== configure: ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S "${ROOT}" "$@"
  echo "=== build: ${build_dir} ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ctest: ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_suite "${ROOT}/build" -DCMAKE_BUILD_TYPE=Release

# The Release tree builds the bench binaries; smoke-run the SQL pipeline
# bench (tiny scale, seed-vs-pipeline cross-validation) so it cannot rot.
echo "=== bench smoke: sql_pipeline ==="
"${ROOT}/build/bench/sql_pipeline" --smoke "${ROOT}/build/BENCH_sql_pipeline.smoke.json"

run_suite "${ROOT}/build-asan" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DEXPLAINIT_SANITIZE=ON

echo "=== all checks passed ==="
