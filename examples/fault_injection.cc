// §5.1 walkthrough: a fault is injected into a live(ly simulated) system —
// a firewall rule dropping 10% of packets to every datanode — and
// ExplainIt! is pointed at the runtime regression with no prior hints.
// The interactive loop narrows from a global search to the network layer.
#include <cstdio>

#include "core/engine.h"
#include "simulator/case_studies.h"

using namespace explainit;

int main() {
  sim::CaseStudyWorld world = sim::MakePacketDropCase(480);
  std::printf("%s\n\n", world.description.c_str());

  core::Engine engine(world.store);
  core::Session session(&engine, world.range);

  // Step 1: the KPI and the time range of the regression (Figure 2).
  if (!session.SetTargetByMetric("overall_runtime").ok()) return 1;
  if (!session.SetExplainRange(world.fault_window).ok()) return 1;

  // Step 2: global search space — every metric family, grouped by name.
  core::GroupingOptions grouping;
  grouping.key = core::GroupingKey::kMetricName;
  if (!session.SetSearchSpaceByGrouping(grouping).ok()) return 1;
  std::printf("search space: %zu feature families\n",
              session.num_candidates());

  // Step 3: rank.
  if (!session.SetScorer("CorrMax").ok()) return 1;
  auto round1 = session.Run();
  if (!round1.ok()) return 1;
  std::printf("\nround 1 — global search:\n%s\n",
              round1->ToString(10).c_str());
  std::printf(
      "interpretation: the pipeline runtime/latency families at the top are"
      "\nknown effects (runtime is the sum of save times); the TCP"
      " retransmit\nfamily is the first *independent* subsystem.\n");

  // Round 2: drill down into the network families only (the human in the
  // loop recognised retransmissions as the lead).
  if (!session.DrillDown({"tcp_*", "network_*", "hdfs_*"}).ok()) return 1;
  auto round2 = session.Run();
  if (!round2.ok()) return 1;
  std::printf("\nround 2 — drill-down into network families:\n%s\n",
              round2->ToString(5).c_str());

  const size_t rank = round2->RankOf("tcp_retransmits");
  std::printf(
      "tcp_retransmits rank: %zu. Root cause confirmed: packet drops at the"
      "\ndatanodes (we injected them ourselves).\n",
      rank);
  return rank >= 1 && rank <= 3 ? 0 : 1;
}
