// Appendix C walkthrough, fully declarative: the whole three-stage RCA
// workflow — (1) target metric family, (2) feature-family search space,
// (3) conditioning variables — written as ONE first-class EXPLAIN
// statement and executed through Engine::Query, the same statement API
// that serves plain SELECTs. (This replaces the Session-only flow the
// sql_session example used to drive programmatically.)
#include <cstdio>

#include "common/strings.h"
#include "core/engine.h"
#include "simulator/case_studies.h"

using namespace explainit;

int main() {
  sim::CaseStudyWorld world = sim::MakeHypervisorDropCase(480);
  core::Engine engine(world.store);
  // Expose the store as the paper's `tsdb` table:
  // (timestamp, metric_name, tag, value).
  engine.RegisterStoreTable("tsdb", world.range);

  // A domain UDF, as Appendix C suggests (hostgroup of "datanode-3").
  engine.functions().Register(
      "DATANODE_ID",
      [](const std::vector<table::Value>& args) -> Result<table::Value> {
        const std::string host = args[0].AsString();
        const auto parts = StrSplit(host, '-');
        return table::Value::String(parts.size() > 1 ? parts[1] : "");
      });

  // The declarative statement. Target (Listing 1), search space as a
  // UNION ALL of two feature-family queries (network + disk, Listing 2
  // shape), conditioning on the input load (Listing 4):
  const char* kExplain = R"(
      EXPLAIN (SELECT timestamp, AVG(value) AS runtime_sec
               FROM tsdb
               WHERE metric_name = 'overall_runtime'
               GROUP BY timestamp)
      GIVEN (SELECT timestamp, AVG(value) AS input_events
             FROM tsdb
             WHERE metric_name LIKE 'input_rate%'
             GROUP BY timestamp)
      USING (SELECT timestamp, CONCAT('net-', tag['host']) AS family,
                    AVG(value) AS v
             FROM tsdb WHERE metric_name = 'tcp_retransmits'
             GROUP BY timestamp, CONCAT('net-', tag['host'])
             UNION ALL
             SELECT timestamp, CONCAT('disk-', tag['host']) AS family,
                    AVG(value) AS v
             FROM tsdb WHERE metric_name = 'disk_read_latency_ms'
             GROUP BY timestamp, CONCAT('disk-', tag['host']))
      SCORE BY 'L2' TOP 10)";
  std::printf("EXPLAIN statement:%s\n\n", kExplain);

  auto result = engine.Query(kExplain);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const core::ScoreTable& table = *result->score_table;
  std::printf("%s\n", table.ToString(10).c_str());

  // The Score Table is an ordinary relation: register it and drill down
  // with plain SQL (soft keywords like `score` stay addressable).
  engine.catalog().RegisterTable("scores", result->table);
  auto strong = engine.Sql(
      "SELECT rank, family, score FROM scores WHERE score > 0.2 "
      "ORDER BY score DESC LIMIT 5");
  if (strong.ok()) {
    std::printf("re-queried Score Table (score > 0.2):\n%s\n",
                strong->ToString().c_str());
  }

  // The network families must outrank the disk families once load is
  // conditioned away.
  size_t best_net = 0, best_disk = 0;
  for (size_t i = 0; i < table.rows.size(); ++i) {
    const std::string& name = table.rows[i].family_name;
    if (best_net == 0 && name.rfind("net-", 0) == 0) best_net = i + 1;
    if (best_disk == 0 && name.rfind("disk-", 0) == 0) best_disk = i + 1;
  }
  std::printf("first network family: rank %zu; first disk family: rank %zu\n",
              best_net, best_disk);
  return best_net >= 1 && (best_disk == 0 || best_net < best_disk) ? 0 : 1;
}
