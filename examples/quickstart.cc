// Quickstart: the Figure 1 system — an event stream (Z) feeding a
// processing pipeline (Y) writing to a file system (X) — analysed end to
// end with ExplainIt!.
//
//   exogenous input  Z = (Z1)        events/sec
//   processing       Y = (Y1)        runtime seconds
//   file system      X = (X1,X2,X3)  usage kB, read/write latency ms
//
// We (1) ingest the metrics into the embedded tsdb, (2) pick Y as the
// target, (3) rank candidate causes, and (4) use conditioning to check the
// chain structure Z -> Y -> X.
#include <cstdio>

#include "core/engine.h"
#include "simulator/causal_network.h"

using namespace explainit;

int main() {
  // --- Build the Figure 1 world with a known causal chain. ---
  sim::CausalNetwork net;
  sim::NodeSpec z;
  z.metric_name = "input_rate";
  z.tags = tsdb::TagSet{{"type", "event-1"}};
  z.base = 1000.0;
  z.noise_sd = 80.0;
  z.seasonal_amp = 120.0;
  z.seasonal_period = 240;
  auto z_id = net.AddNode(z);

  sim::NodeSpec y;
  y.metric_name = "runtime";
  y.tags = tsdb::TagSet{{"component", "pipeline-1"}};
  y.base = 5.0;
  y.noise_sd = 1.0;
  y.edges.push_back(sim::Edge{z_id.value(), 0.02, 0, sim::LinkFn::kLinear});
  auto y_id = net.AddNode(y);

  const char* x_names[3] = {"disk_usage_kb", "disk_read_latency_ms",
                            "disk_write_latency_ms"};
  for (int i = 0; i < 3; ++i) {
    sim::NodeSpec x;
    x.metric_name = x_names[i];
    x.tags = tsdb::TagSet{{"host", "datanode-1"}};
    x.base = 10.0 + i;
    x.noise_sd = 1.0;
    x.edges.push_back(
        sim::Edge{y_id.value(), 0.8 + 0.2 * i, 0, sim::LinkFn::kLinear});
    if (!net.AddNode(x).ok()) return 1;
  }
  // An unrelated metric to show ranking separation.
  sim::NodeSpec other;
  other.metric_name = "fan_speed_rpm";
  other.tags = tsdb::TagSet{{"host", "datanode-1"}};
  other.base = 4000.0;
  other.noise_sd = 30.0;
  if (!net.AddNode(other).ok()) return 1;

  auto store = std::make_shared<tsdb::SeriesStore>();
  Rng rng(1);
  const size_t steps = 480;  // 8 hours of minutely data
  if (!net.WriteTo(store.get(), steps, 0, rng).ok()) return 1;
  std::printf("ingested %zu series, %zu points (%zu compressed bytes)\n",
              store->num_series(), store->num_points(),
              store->compressed_bytes());

  // --- Step 1-3 of the workflow: target, search space, ranking. ---
  core::Engine engine(store);
  core::Session session(&engine,
                        TimeRange{0, static_cast<int64_t>(steps) * 60});
  if (!session.SetTargetByMetric("runtime").ok()) return 1;
  core::GroupingOptions grouping;
  grouping.key = core::GroupingKey::kMetricName;
  if (!session.SetSearchSpaceByGrouping(grouping).ok()) return 1;
  if (!session.SetScorer("L2").ok()) return 1;
  auto ranking = session.Run();
  if (!ranking.ok()) {
    std::fprintf(stderr, "%s\n", ranking.status().ToString().c_str());
    return 1;
  }
  std::printf("\nWhat explains the pipeline runtime?\n%s\n",
              ranking->ToString().c_str());

  // --- Checking the direction: is it a chain Z -> Y -> X? ---
  // If so, X and Z are dependent marginally but independent given Y.
  auto x_fam = engine.FamilyFromMetric("disk_*", session.total_range(), "X");
  auto z_fam = engine.FamilyFromMetric("input_rate",
                                       session.total_range(), "Z");
  auto y_fam = engine.FamilyFromMetric("runtime", session.total_range(),
                                       "Y");
  if (!x_fam.ok() || !z_fam.ok() || !y_fam.ok()) return 1;
  core::RidgeScorer scorer;
  la::Matrix empty;
  auto marginal = scorer.Score(x_fam->data, z_fam->data, empty);
  auto conditional = scorer.Score(x_fam->data, z_fam->data, y_fam->data);
  if (!marginal.ok() || !conditional.ok()) return 1;
  std::printf(
      "chain check (Z -> Y -> X implies Z dep X, Z indep X | Y):\n"
      "  score(X, Z)      = %.3f   (dependent)\n"
      "  score(X, Z | Y)  = %.3f   (blocked by conditioning on Y)\n",
      marginal->score, conditional->score);
  std::printf(
      "\nConditioning collapsed the dependence: consistent with the chain"
      " Z -> Y -> X of Figure 1.\n");
  return 0;
}
