// §5.2 walkthrough: disentangling multiple sources of variation. The
// runtime varies mostly with input load; an unmonitored hypervisor fault
// adds a second source. A global search is dominated by load-correlated
// families; conditioning on the input size (Z) reorders the ranking and
// surfaces the network-stack evidence.
#include <cstdio>

#include "core/engine.h"
#include "simulator/case_studies.h"

using namespace explainit;

int main() {
  sim::CaseStudyWorld world = sim::MakeHypervisorDropCase(720);
  std::printf("%s\n\n", world.description.c_str());

  core::Engine engine(world.store);
  core::Session session(&engine, world.range);
  if (!session.SetTargetByMetric("overall_runtime").ok()) return 1;
  core::GroupingOptions grouping;
  grouping.key = core::GroupingKey::kMetricName;
  if (!session.SetSearchSpaceByGrouping(grouping).ok()) return 1;
  if (!session.SetScorer("L2").ok()) return 1;

  // Round 1: unconditioned. "We found many explanations for variation."
  auto before = session.Run();
  if (!before.ok()) return 1;
  std::printf("without conditioning (everything load-correlated ranks):\n%s\n",
              before->ToString(8).c_str());

  // Round 2: condition on the observed load (§5.2's key move).
  if (!session.SetConditionByMetric("input_rate_*").ok()) return 1;
  auto after = session.Run();
  if (!after.ok()) return 1;
  std::printf("conditioned on input size:\n%s\n", after->ToString(8).c_str());

  const size_t retrans_before = before->RankOf("tcp_retransmits");
  const size_t retrans_after = after->RankOf("tcp_retransmits");
  std::printf(
      "tcp_retransmits: rank %zu before conditioning, %zu after.\n",
      retrans_before, retrans_after);
  std::printf(
      "\nAs in the paper, we cannot see the hypervisor drop counter itself"
      "\n(insufficient monitoring) but conditioning surfaced the network"
      "\nstack as the place to look — the fix (§ Figure 6) confirmed it.\n");
  const bool improved =
      retrans_after >= 1 &&
      (retrans_before == 0 || retrans_after <= retrans_before);
  return improved ? 0 : 1;
}
