// Client/server walkthrough: stands up the concurrent SQL/EXPLAIN server
// in-process over the hypervisor packet-drop world, then talks to it the
// way an external tool would — over TCP with the binary protocol. Runs a
// plain SELECT, the declarative EXPLAIN statement, a statement with a
// deadline, and shows the admission-control backpressure knobs.
#include <cstdio>

#include "core/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "simulator/case_studies.h"

using namespace explainit;

int main() {
  sim::CaseStudyWorld world = sim::MakeHypervisorDropCase(240);
  core::EngineOptions engine_options;
  engine_options.sql_parallelism = 1;
  core::Engine engine(world.store, engine_options);
  engine.RegisterStoreTable("tsdb", world.range);

  server::ServerOptions options;
  options.max_sessions = 8;        // admission: concurrent session cap
  options.max_queued_queries = 4;  // queries waiting beyond this get kBusy
  server::Server srv(&engine, options);
  if (Status st = srv.Start(); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("server listening on 127.0.0.1:%u\n\n", srv.port());

  auto client = server::Client::Connect("127.0.0.1", srv.port());
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  // 1. A plain SELECT over the wire.
  auto rows = client->Query(
      "SELECT timestamp, AVG(value) AS runtime_sec FROM tsdb "
      "WHERE metric_name = 'overall_runtime' "
      "GROUP BY timestamp ORDER BY timestamp LIMIT 5");
  if (!rows.ok()) {
    std::fprintf(stderr, "select: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("SELECT over TCP (%llu us server-side):\n%s\n",
              static_cast<unsigned long long>(rows->latency_us),
              rows->table.ToString(5).c_str());

  // 2. The declarative RCA statement — same wire, same session.
  auto scores = client->Query(R"(
      EXPLAIN (SELECT timestamp, AVG(value) AS runtime_sec
               FROM tsdb WHERE metric_name = 'overall_runtime'
               GROUP BY timestamp)
      USING (SELECT timestamp, CONCAT('net-', tag['host']) AS family,
                    AVG(value) AS v
             FROM tsdb WHERE metric_name = 'tcp_retransmits'
             GROUP BY timestamp, CONCAT('net-', tag['host']))
      SCORE BY 'L2' TOP 5)");
  if (!scores.ok()) {
    std::fprintf(stderr, "explain: %s\n",
                 scores.status().ToString().c_str());
    return 1;
  }
  std::printf("EXPLAIN over TCP (%llu us server-side):\n%s\n",
              static_cast<unsigned long long>(scores->latency_us),
              scores->table.ToString(5).c_str());

  // 3. Per-query deadline: the server cancels cooperatively at batch
  // boundaries and replies DeadlineExceeded. A 1 ms budget cannot cover
  // the EXPLAIN above... usually; a fast box may still finish. Either
  // way the session survives.
  auto rushed = client->Query("SELECT COUNT(*) AS n FROM tsdb",
                              /*deadline_ms=*/1);
  std::printf("1ms-deadline query: %s\n",
              rushed.ok() ? "finished in time"
                          : rushed.status().ToString().c_str());

  // 4. Errors come back typed, with the parser's position info intact.
  auto bad = client->Query("SELECT 1e999");
  std::printf("hostile literal:    %s\n\n",
              bad.status().ToString().c_str());

  const server::ServerStats stats = srv.stats();
  std::printf("server stats: %llu ok, %llu error, %llu busy\n",
              static_cast<unsigned long long>(stats.queries_ok),
              static_cast<unsigned long long>(stats.queries_error),
              static_cast<unsigned long long>(stats.queries_busy));
  srv.Stop();
  return scores->table.num_rows() > 0 ? 0 : 1;
}
