// §5.3/§5.4 walkthrough: periodicity-aware root-cause analysis. A
// 15-minute periodic spike is traced to the namenode; the pseudocause
// mechanism (§3.4) is used to focus on the residual variation instead of
// the seasonal pattern.
#include <cstdio>

#include "core/engine.h"
#include "core/pseudocause.h"
#include "simulator/case_studies.h"
#include "stats/decompose.h"

using namespace explainit;

int main() {
  sim::CaseStudyWorld world = sim::MakeNamenodeScanCase(480);
  std::printf("%s\n\n", world.description.c_str());

  // Inspect the KPI: is there periodic structure?
  tsdb::ScanRequest req;
  req.metric_glob = "overall_runtime";
  req.range = world.range;
  auto scan = world.store->Scan(req);
  if (!scan.ok() || scan->empty()) return 1;
  const size_t period =
      stats::DetectPeriod((*scan)[0].values, 5, 60);
  std::printf("overall_runtime: %s\n",
              core::RenderSparkline((*scan)[0].values, 72).c_str());
  std::printf("detected period: %zu minutes (the paper's case: ~15)\n\n",
              period);

  core::Engine engine(world.store);
  core::Session session(&engine, world.range);
  if (!session.SetTargetByMetric("overall_runtime").ok()) return 1;
  core::GroupingOptions grouping;
  grouping.key = core::GroupingKey::kMetricName;
  if (!session.SetSearchSpaceByGrouping(grouping).ok()) return 1;
  if (!session.SetScorer("L2").ok()) return 1;

  auto global = session.Run();
  if (!global.ok()) return 1;
  std::printf("global search:\n%s\n", global->ToString(8).c_str());

  // Drill into the namenode family, as the ranking suggests.
  if (!session.DrillDown({"namenode_*"}).ok()) return 1;
  auto drill = session.Run();
  if (!drill.ok()) return 1;
  std::printf("namenode drill-down:\n%s\n", drill->ToString(5).c_str());
  std::printf(
      "namenode_gc_ms ranks low / scores weakly: GC is ruled out (it is"
      "\n*negatively* correlated — §5.3); the RPC rate and live threads"
      "\npoint at a chatty client calling GetContentSummary every 15 min.\n");

  // Pseudocause variant: condition on the systematic component of the
  // target so only residual-specific causes shine (§3.4 / Figure 3).
  core::Session residual_session(&engine, world.range);
  if (!residual_session.SetTargetByMetric("overall_runtime").ok()) return 1;
  core::PseudocauseOptions pc;
  pc.period = period >= 2 ? period : 15;
  if (!residual_session.ConditionOnPseudocause(pc).ok()) return 1;
  if (!residual_session.SetSearchSpaceByGrouping(grouping).ok()) return 1;
  if (!residual_session.SetScorer("L2").ok()) return 1;
  auto residual = residual_session.Run();
  if (!residual.ok()) return 1;
  std::printf(
      "\nconditioned on the pseudocause Ys (seasonal+trend of the target):\n"
      "%s\n",
      residual->ToString(5).c_str());
  const size_t nn_rank = global->RankOf("namenode_rpc_rate");
  std::printf("namenode_rpc_rate global rank: %zu\n", nn_rank);
  return nn_rank >= 1 && nn_rank <= 10 ? 0 : 1;
}
