// Appendix C walkthrough: the declarative workflow. The user writes SQL at
// three stages — (1) the target metric family, (2) the feature-family
// search space, (3) the conditioning variables — and ExplainIt! joins them
// into a hypothesis table and ranks.
#include <cstdio>

#include "common/strings.h"
#include "core/engine.h"
#include "simulator/case_studies.h"

using namespace explainit;

int main() {
  sim::CaseStudyWorld world = sim::MakeHypervisorDropCase(480);
  core::Engine engine(world.store);
  // Expose the store as the paper's `tsdb` table:
  // (timestamp, metric_name, tag, value).
  engine.RegisterStoreTable("tsdb", world.range);

  // A domain UDF, as Appendix C suggests (hostgroup of "datanode-3").
  engine.functions().Register(
      "DATANODE_ID",
      [](const std::vector<table::Value>& args) -> Result<table::Value> {
        const std::string host = args[0].AsString();
        const auto parts = StrSplit(host, '-');
        return table::Value::String(parts.size() > 1 ? parts[1] : "");
      });

  // --- Stage 1: target metric family (Listing 1). ---
  const char* kTargetQuery = R"(
      SELECT timestamp, AVG(value) AS runtime_sec
      FROM tsdb
      WHERE metric_name = 'overall_runtime'
      GROUP BY timestamp
      ORDER BY timestamp ASC)";
  std::printf("stage 1 — target query:%s\n", kTargetQuery);
  auto preview = engine.Sql(std::string(kTargetQuery) + " LIMIT 3");
  if (!preview.ok()) {
    std::fprintf(stderr, "%s\n", preview.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", preview->ToString().c_str());

  // --- Stage 2: the search space (Listing 2 shape: per-host network
  // features; each host becomes one feature family). ---
  const char* kNetworkQuery = R"(
      SELECT timestamp, CONCAT('net-', tag['host']) AS family,
             AVG(value) AS retransmits
      FROM tsdb
      WHERE metric_name = 'tcp_retransmits'
      GROUP BY timestamp, CONCAT('net-', tag['host'])
      ORDER BY timestamp ASC)";
  const char* kDiskQuery = R"(
      SELECT timestamp, CONCAT('disk-', tag['host']) AS family,
             AVG(value) AS read_latency
      FROM tsdb
      WHERE metric_name = 'disk_read_latency_ms'
      GROUP BY timestamp, CONCAT('disk-', tag['host'])
      ORDER BY timestamp ASC)";
  std::printf("stage 2 — feature family queries (network + disk):\n");

  // --- Stage 3: conditioning variables (Listing 4). ---
  const char* kConditionQuery = R"(
      SELECT timestamp, AVG(value) AS input_events
      FROM tsdb
      WHERE metric_name LIKE 'input_rate%'
      GROUP BY timestamp
      ORDER BY timestamp ASC)";

  core::Session session(&engine, world.range);
  if (!session.SetTargetByQuery(kTargetQuery).ok()) return 1;
  auto net_families = engine.FamiliesFromQuery(kNetworkQuery);
  auto disk_families = engine.FamiliesFromQuery(kDiskQuery);
  if (!net_families.ok() || !disk_families.ok()) {
    std::fprintf(stderr, "family query failed\n");
    return 1;
  }
  std::printf("  %zu network families, %zu disk families\n\n",
              net_families->size(), disk_families->size());
  // Union of the two declarative search spaces, like the paper's
  // (FF_1 UNION FF_2 ... ) FF.
  std::vector<core::FeatureFamily> space = std::move(net_families).value();
  for (auto& f : disk_families.value()) space.push_back(std::move(f));
  // Hand the combined space to the session via drill-down-free path:
  // the Session API accepts search spaces from queries; here we combined
  // two queries, so populate through SetSearchSpaceByQuery on a UNION.
  const std::string kUnionQuery = std::string(R"(
      SELECT timestamp, CONCAT('net-', tag['host']) AS family,
             AVG(value) AS v
      FROM tsdb WHERE metric_name = 'tcp_retransmits'
      GROUP BY timestamp, CONCAT('net-', tag['host'])
      UNION ALL
      SELECT timestamp, CONCAT('disk-', tag['host']) AS family,
             AVG(value) AS v
      FROM tsdb WHERE metric_name = 'disk_read_latency_ms'
      GROUP BY timestamp, CONCAT('disk-', tag['host']))");
  if (!session.SetSearchSpaceByQuery(kUnionQuery).ok()) return 1;
  if (!session.SetConditionByQuery(kConditionQuery).ok()) return 1;
  if (!session.SetScorer("L2").ok()) return 1;
  std::printf("stage 3 — conditioned ranking over %zu families:\n",
              session.num_candidates());
  auto table = session.Run();
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", table->ToString(10).c_str());
  // The network families must outrank the disk families once load is
  // conditioned away.
  size_t best_net = 0, best_disk = 0;
  for (size_t i = 0; i < table->rows.size(); ++i) {
    const std::string& name = table->rows[i].family_name;
    if (best_net == 0 && name.rfind("net-", 0) == 0) best_net = i + 1;
    if (best_disk == 0 && name.rfind("disk-", 0) == 0) best_disk = i + 1;
  }
  std::printf("first network family: rank %zu; first disk family: rank %zu\n",
              best_net, best_disk);
  return best_net >= 1 && (best_disk == 0 || best_net < best_disk) ? 0 : 1;
}
