// Figure 14: a single score can mislead — CPU-temperature explains the
// sawtooth background of the runtime but not the spike the user cares
// about. The diagnostic overlay (Y vs E[Y|X]) makes this visible, and the
// range-to-explain score (Figure 2) quantifies it.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/ranking.h"
#include "core/scorer.h"

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Figure 14: overlay diagnostics — good score, wrong explanation");
  const size_t t = 480;
  Rng rng(7);
  // Sawtooth "CPU temperature" drives the runtime background; an
  // unexplained spike sits in the middle.
  la::Matrix temp(t, 1);
  core::FeatureFamily target;
  target.name = "runtime";
  target.feature_names = {"runtime"};
  target.data = la::Matrix(t, 1);
  TimeRange spike_range{static_cast<int64_t>(t / 2) * 60,
                        static_cast<int64_t>(t / 2 + 40) * 60};
  for (size_t i = 0; i < t; ++i) {
    target.timestamps.push_back(static_cast<int64_t>(i) * 60);
    const double saw =
        static_cast<double>(i % 60) / 60.0 * 4.0;  // sawtooth, period 1h
    temp(i, 0) = 35.0 + saw + rng.Normal() * 0.2;
    const bool spiking = i >= t / 2 && i < t / 2 + 40;
    target.data(i, 0) =
        10.0 + saw * 1.5 + (spiking ? 6.0 : 0.0) + rng.Normal() * 0.4;
  }
  core::RidgeScorer scorer;
  la::Matrix empty;
  auto res = scorer.Score(temp, target.data, empty);
  if (!res.ok()) return 1;
  std::printf("global score of runtime ~ cpu_temperature: %.3f\n",
              res->score);
  std::printf("\nY:       %s\n",
              core::RenderSparkline(target.data.Col(0), 72).c_str());
  std::printf("E[Y|X]:  %s\n",
              core::RenderSparkline(res->fitted.Col(0), 72).c_str());
  // The explain-window score exposes the mismatch.
  core::RankingOptions opts;
  opts.explain_range = spike_range;
  opts.render_viz = false;
  core::FeatureFamily cand;
  cand.name = "cpu_temperature";
  cand.feature_names = {"cpu_temperature"};
  cand.timestamps = target.timestamps;
  cand.data = temp;
  auto ranked =
      core::RankFamilies(scorer, target, nullptr, {cand}, opts);
  if (!ranked.ok() || ranked->rows.empty()) return 1;
  const double window_score = ranked->rows[0].explain_window_score;
  std::printf(
      "\nscore on the spike window only: %.3f (global %.3f) — the spike is"
      " NOT explained,\nexactly the situation the visualisation catches"
      " (§D, Figure 14).\n",
      window_score, ranked->rows[0].score);
  return window_score < ranked->rows[0].score ? 0 : 1;
}
