// Concurrent-server throughput/latency bench: an in-process
// server::Server over the hypervisor packet-drop world, driven by 1 / 8 /
// 64 concurrent client sessions running a mixed SELECT + EXPLAIN
// workload over real TCP connections.
//
// Parity gate: every protocol reply is byte-compared (canonicalised:
// the EXPLAIN Score Table's volatile score_seconds column zeroed)
// against the direct Engine::Query result — the server must be a
// transport, never a semantic layer. Pool gate: serving every sweep
// constructs ZERO new worker pools (WorkerPool::constructions() delta),
// proving sessions share the process-wide pool.
//
// Emits BENCH_server.json: qps + p50/p99 latency per session count.
//
// Usage: server [--smoke] [output.json]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/time_util.h"
#include "core/engine.h"
#include "exec/worker_pool.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "simulator/case_studies.h"

namespace explainit {
namespace {

const char* kSelect =
    "SELECT timestamp, AVG(value) AS runtime_sec FROM tsdb "
    "WHERE metric_name = 'overall_runtime' "
    "GROUP BY timestamp ORDER BY timestamp LIMIT 50";

const char* kExplain = R"(
    EXPLAIN (SELECT timestamp, AVG(value) AS runtime_sec
             FROM tsdb WHERE metric_name = 'overall_runtime'
             GROUP BY timestamp)
    USING (SELECT timestamp, CONCAT('net-', tag['host']) AS family,
                  AVG(value) AS v
           FROM tsdb WHERE metric_name = 'tcp_retransmits'
           GROUP BY timestamp, CONCAT('net-', tag['host']))
    SCORE BY 'L2' TOP 5)";

std::vector<uint8_t> CanonicalTableBytes(const table::Table& t) {
  table::Table out(t.schema());
  const auto seconds_col = t.schema().FieldIndex("score_seconds");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<table::Value> row = t.Row(r);
    if (seconds_col.has_value()) {
      row[*seconds_col] = table::Value::Double(0.0);
    }
    out.AppendRow(std::move(row));
  }
  server::ByteWriter w;
  server::EncodeTable(out, &w);
  return w.Take();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct SweepResult {
  size_t sessions = 0;
  size_t queries = 0;
  size_t parity_failures = 0;
  double wall_seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

SweepResult RunSweep(server::Server& srv, size_t sessions,
                     size_t queries_per_session,
                     const std::vector<uint8_t>& want_select,
                     const std::vector<uint8_t>& want_explain) {
  SweepResult result;
  result.sessions = sessions;
  std::atomic<size_t> parity_failures{0};
  std::atomic<size_t> completed{0};
  std::mutex latency_mutex;
  std::vector<double> latencies_ms;

  const double t0 = MonotonicSeconds();
  std::vector<std::thread> clients;
  for (size_t s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      auto client = server::Client::Connect("127.0.0.1", srv.port());
      if (!client.ok()) {
        parity_failures.fetch_add(queries_per_session);
        return;
      }
      std::vector<double> local_ms;
      local_ms.reserve(queries_per_session);
      for (size_t q = 0; q < queries_per_session; ++q) {
        const bool explain = (s + q) % 2 == 0;
        const double qt0 = MonotonicSeconds();
        auto reply = client->Query(explain ? kExplain : kSelect);
        local_ms.push_back((MonotonicSeconds() - qt0) * 1e3);
        if (!reply.ok() ||
            CanonicalTableBytes(reply->table) !=
                (explain ? want_explain : want_select)) {
          parity_failures.fetch_add(1);
        } else {
          completed.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(latency_mutex);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
    });
  }
  for (auto& t : clients) t.join();
  result.wall_seconds = MonotonicSeconds() - t0;
  result.queries = completed.load();
  result.parity_failures = parity_failures.load();
  result.qps = result.wall_seconds > 0
                   ? static_cast<double>(result.queries) / result.wall_seconds
                   : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  return result;
}

}  // namespace
}  // namespace explainit

int main(int argc, char** argv) {
  using namespace explainit;
  bool smoke = false;
  std::string out_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const size_t minutes = smoke ? 120 : 480;
  sim::CaseStudyWorld world = sim::MakeHypervisorDropCase(minutes);
  core::EngineOptions engine_options;
  engine_options.sql_parallelism = 1;  // sessions run serial SQL; the
                                       // concurrency is across sessions
  core::Engine engine(world.store, engine_options);
  engine.RegisterStoreTable("tsdb", world.range);

  // Reference results for the parity gate.
  auto direct_select = engine.Query(kSelect);
  auto direct_explain = engine.Query(kExplain);
  if (!direct_select.ok() || !direct_explain.ok()) {
    std::fprintf(stderr, "reference query failed: %s\n",
                 (direct_select.ok() ? direct_explain : direct_select)
                     .status()
                     .ToString()
                     .c_str());
    return 1;
  }
  const std::vector<uint8_t> want_select =
      CanonicalTableBytes(direct_select->table);
  const std::vector<uint8_t> want_explain =
      CanonicalTableBytes(direct_explain->table);

  exec::WorkerPool::Global();  // settle the pool before pinning the counter

  server::ServerOptions server_options;
  server_options.max_sessions = 128;
  // Deep admission queue: the 64-session sweep measures saturated
  // throughput/tail latency, so queries must queue rather than be
  // rejected (the backpressure path has its own integration test).
  server_options.max_queued_queries = 4096;
  server_options.sql_parallelism = 1;
  server::Server srv(&engine, server_options);
  const Status started = srv.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  const size_t pools_before = exec::WorkerPool::constructions();
  const std::vector<size_t> sweeps =
      smoke ? std::vector<size_t>{1, 8} : std::vector<size_t>{1, 8, 64};
  const size_t queries_per_session = smoke ? 4 : 16;

  std::printf("server bench: %zu-minute world, %zu queries/session%s\n",
              minutes, queries_per_session, smoke ? " [smoke]" : "");
  std::vector<SweepResult> results;
  size_t total_parity_failures = 0;
  for (size_t sessions : sweeps) {
    SweepResult r = RunSweep(srv, sessions, queries_per_session, want_select,
                             want_explain);
    std::printf(
        "  sessions=%-3zu  qps=%8.1f  p50=%7.2fms  p99=%7.2fms  "
        "parity_failures=%zu\n",
        r.sessions, r.qps, r.p50_ms, r.p99_ms, r.parity_failures);
    total_parity_failures += r.parity_failures;
    results.push_back(r);
  }
  const size_t pools_created =
      exec::WorkerPool::constructions() - pools_before;
  srv.Stop();

  if (total_parity_failures != 0) {
    std::fprintf(stderr,
                 "PARITY FAILED: %zu replies diverged from Engine::Query\n",
                 total_parity_failures);
    return 1;
  }
  if (pools_created != 0) {
    std::fprintf(stderr,
                 "POOL GATE FAILED: serving created %zu new worker pools "
                 "(sessions must share the global pool)\n",
                 pools_created);
    return 1;
  }
  std::printf("parity: every reply byte-identical to Engine::Query; "
              "pools created while serving: 0\n");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"server\",\n  \"smoke\": %s,\n"
               "  \"world_minutes\": %zu,\n"
               "  \"queries_per_session\": %zu,\n"
               "  \"pools_created_while_serving\": %zu,\n"
               "  \"sweeps\": [\n",
               smoke ? "true" : "false", minutes, queries_per_session,
               pools_created);
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(f,
                 "    {\"sessions\": %zu, \"queries\": %zu, "
                 "\"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"parity_failures\": %zu}%s\n",
                 r.sessions, r.queries, r.qps, r.p50_ms, r.p99_ms,
                 r.parity_failures, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
