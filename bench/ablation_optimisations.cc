// §4.2 ablations: the engineering claims behind ExplainIt!'s pipeline.
//  1. Dense arrays: "a naive implementation of our scorer ... was at
//     least 10x slower than the optimised implementation" — we compare
//     correlation scoring over dynamically-typed table cells (the
//     row-store path a naive implementation would use) against the dense
//     matrix path.
//  2. Broadcast/hash join vs nested loop for the hypothesis join of
//     Appendix C: the same equi-join executed via the hash path and via a
//     semantically equivalent non-equi condition that forces the
//     nested-loop fallback.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/feature_family.h"
#include "common/time_util.h"
#include "sql/executor.h"
#include "stats/pearson.h"
#include "table/table.h"

namespace explainit {
namespace {

// Correlation computed directly off the Figure 4 Feature Family Table
// (one row per timestamp, features in a string-keyed map) — the path a
// naive implementation takes when it skips the dense-array conversion.
double NaiveFfTableCorrMax(const table::Table& x_ff,
                           const std::vector<std::string>& x_features,
                           const table::Table& y_ff,
                           const std::vector<std::string>& y_features) {
  const size_t t = x_ff.num_rows();
  const size_t v_col = *x_ff.schema().FieldIndex("v");
  double best = 0.0;
  for (const std::string& fx : x_features) {
    for (const std::string& fy : y_features) {
      double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
      for (size_t r = 0; r < t; ++r) {
        const table::ValueMap* xv = x_ff.At(r, v_col).AsMap();
        const table::ValueMap* yv = y_ff.At(r, v_col).AsMap();
        const double a = xv->at(fx).AsDouble();
        const double b = yv->at(fy).AsDouble();
        sx += a;
        sy += b;
        sxx += a * a;
        syy += b * b;
        sxy += a * b;
      }
      const double n = static_cast<double>(t);
      const double cov = sxy - sx * sy / n;
      const double vx = sxx - sx * sx / n;
      const double vy = syy - sy * sy / n;
      if (vx > 1e-24 && vy > 1e-24) {
        best = std::max(best, std::abs(cov / std::sqrt(vx * vy)));
      }
    }
  }
  return best;
}

int Run() {
  bench::PrintHeader("§4.2 ablations: dense arrays and broadcast joins");

  // --- Dense arrays. ---
  const size_t t = 480, nx = 512, ny = 64;
  Rng rng(1);
  core::FeatureFamily xfam, yfam;
  xfam.name = "x";
  yfam.name = "y";
  xfam.data = la::Matrix(t, nx);
  yfam.data = la::Matrix(t, ny);
  rng.FillNormal(xfam.data.data(), xfam.data.size());
  rng.FillNormal(yfam.data.data(), yfam.data.size());
  for (size_t i = 0; i < t; ++i) {
    xfam.timestamps.push_back(static_cast<int64_t>(i) * 60);
    yfam.timestamps.push_back(static_cast<int64_t>(i) * 60);
  }
  for (size_t c = 0; c < nx; ++c) {
    xfam.feature_names.push_back("x" + std::to_string(c));
  }
  for (size_t c = 0; c < ny; ++c) {
    yfam.feature_names.push_back("y" + std::to_string(c));
  }
  const table::Table xt = core::FamilyToTable(xfam);
  const table::Table yt = core::FamilyToTable(yfam);

  double t0 = MonotonicSeconds();
  const double naive = NaiveFfTableCorrMax(xt, xfam.feature_names, yt,
                                           yfam.feature_names);
  const double naive_sec = MonotonicSeconds() - t0;
  t0 = MonotonicSeconds();
  // The optimised path includes the one-off dense conversion, exactly as
  // the pipeline performs it.
  auto fams = core::FamiliesFromTable(xt);
  auto yfams = core::FamiliesFromTable(yt);
  if (!fams.ok() || !yfams.ok()) return 1;
  const double dense = stats::CorrelationSummary((*fams)[0].data,
                                                 (*yfams)[0].data)
                           .max_abs;
  const double dense_sec = MonotonicSeconds() - t0;
  const la::Matrix& x = xfam.data;
  const la::Matrix& y = yfam.data;
  (void)x;
  (void)y;
  std::printf(
      "CorrMax over %zux%zu vs %zux%zu:\n"
      "  row-store (Value cells): %8.4fs  (score %.4f)\n"
      "  dense arrays:            %8.4fs  (score %.4f)\n"
      "  speedup: %.1fx  (paper: 'at least 10x')\n",
      t, nx, t, ny, naive_sec, naive, dense_sec, dense,
      naive_sec / dense_sec);
  const bool scores_agree = std::abs(naive - dense) < 1e-9;
  const bool dense_wins = naive_sec / dense_sec > 5.0;

  // --- Broadcast/hash join vs nested loop. ---
  const size_t rows = bench::PaperScale() ? 20000 : 4000;
  table::Schema fs({{"ts", table::DataType::kInt64},
                    {"v", table::DataType::kDouble}});
  table::Table ff(fs), target(fs);
  Rng jrng(2);
  for (size_t i = 0; i < rows; ++i) {
    ff.AppendRow({table::Value::Int(static_cast<int64_t>(i)),
                  table::Value::Double(jrng.Normal())});
    target.AppendRow({table::Value::Int(static_cast<int64_t>(i)),
                      table::Value::Double(jrng.Normal())});
  }
  sql::Catalog catalog;
  catalog.RegisterTable("FF", std::move(ff));
  catalog.RegisterTable("Target", std::move(target));
  sql::FunctionRegistry functions = sql::FunctionRegistry::Builtins();
  sql::Executor executor(&catalog, &functions);

  t0 = MonotonicSeconds();
  auto hash = executor.Query(
      "SELECT FF.ts, FF.v, Target.v FROM FF "
      "JOIN Target ON FF.ts = Target.ts");
  const double hash_sec = MonotonicSeconds() - t0;
  t0 = MonotonicSeconds();
  // <= AND >= is the same predicate but not extractable as an equi-key:
  // the executor falls back to the nested loop.
  auto loop = executor.Query(
      "SELECT FF.ts, FF.v, Target.v FROM FF "
      "JOIN Target ON FF.ts <= Target.ts AND FF.ts >= Target.ts");
  const double loop_sec = MonotonicSeconds() - t0;
  const auto& st = executor.stats();
  std::printf(
      "\nhypothesis join of %zu x %zu rows:\n"
      "  hash (broadcast) join: %8.4fs (%zu rows)\n"
      "  nested loop:           %8.4fs (%zu rows)\n"
      "  speedup: %.0fx   [hash joins: %zu, nested: %zu]\n",
      rows, rows, hash_sec, hash.ok() ? hash->num_rows() : 0, loop_sec,
      loop.ok() ? loop->num_rows() : 0, loop_sec / hash_sec,
      st.hash_joins, st.nested_loop_joins);
  const bool joins_agree = hash.ok() && loop.ok() &&
                           hash->num_rows() == loop->num_rows();
  const bool hash_wins = loop_sec / hash_sec > 10.0;

  const bool ok = scores_agree && dense_wins && joins_agree && hash_wins;
  std::printf("\nablation reproduces the §4.2 claims: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace explainit

int main() { return explainit::Run(); }
