// Shared helpers for the experiment binaries. Each bench reproduces one
// table or figure of the paper and prints it; EXPLAINIT_SCALE=paper runs
// closer to the paper's data sizes.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/eval_metrics.h"
#include "core/ranking.h"
#include "core/scorer.h"
#include "simulator/scenarios.h"

namespace explainit::bench {

/// True when EXPLAINIT_SCALE=paper is set: larger T and feature counts.
inline bool PaperScale() {
  const char* v = std::getenv("EXPLAINIT_SCALE");
  return v != nullptr && std::string(v) == "paper";
}

/// Time steps per scenario for the current scale.
inline size_t ScenarioSteps() { return PaperScale() ? 1440 : 480; }

/// Feature-scale multiplier for the current scale.
inline double FeatureScale() { return PaperScale() ? 6.0 : 1.0; }

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s%s\n", title.c_str(),
              PaperScale() ? "   [EXPLAINIT_SCALE=paper]" : "");
  std::printf("================================================================\n");
}

/// The five scoring methods of Table 6, in paper order.
inline std::vector<std::string> PaperScorers() {
  return {"CorrMean", "CorrMax", "L2", "L2-P50", "L2-P500"};
}

/// Ranks one scenario with one scorer; returns the ordered family names.
inline std::vector<std::string> RankScenario(const sim::Scenario& scenario,
                                             const core::Scorer& scorer,
                                             core::ScoreTable* table_out =
                                                 nullptr,
                                             size_t top_k = 20) {
  core::RankingOptions opts;
  opts.top_k = top_k;
  auto table = core::RankFamilies(scorer, scenario.target, nullptr,
                                  scenario.families, opts);
  std::vector<std::string> names;
  if (!table.ok()) {
    std::fprintf(stderr, "ranking failed: %s\n",
                 table.status().ToString().c_str());
    return names;
  }
  for (const auto& row : table->rows) names.push_back(row.family_name);
  if (table_out != nullptr) *table_out = std::move(table).value();
  return names;
}

}  // namespace explainit::bench
