// Figure 15: after conditioning the runtime on input size, the residual
// spikes ABOVE the mean are explained by packet retransmissions while the
// dips below are not — an asymmetry visible in E[Yr | X].
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/scorer.h"
#include "stats/ridge.h"

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Figure 15: residual spikes above the mean explained, dips not");
  const size_t t = 720;
  Rng rng(15);
  la::Matrix load(t, 1), retrans(t, 1);
  la::Matrix y(t, 1);
  for (size_t i = 0; i < t; ++i) {
    load(i, 0) = 1000.0 + 200.0 * std::sin(2.0 * M_PI * i / 240.0) +
                 rng.Normal() * 50.0;
    // Retransmission bursts: only ever push the runtime UP.
    const bool burst = (i % 120) < 18;
    retrans(i, 0) = (burst ? 25.0 : 2.0) + rng.Normal() * 1.0;
    // Dips come from an unrelated source (e.g. cache warm-ups).
    const bool dip = (i % 95) < 8;
    y(i, 0) = 0.01 * load(i, 0) + 0.3 * retrans(i, 0) -
              (dip ? 4.0 : 0.0) + rng.Normal() * 0.5;
  }
  // Condition on the input size, then fit the residual on retransmits.
  stats::RidgeRegression ridge;
  auto yz = ridge.FitCv(load, y);
  if (!yz.ok()) return 1;
  auto final_fit = ridge.FitCv(retrans, yz->residuals);
  if (!final_fit.ok()) return 1;
  const la::Matrix& yr = yz->residuals;
  const la::Matrix& pred = final_fit->fitted;
  std::printf("Yr (runtime | input):  %s\n",
              core::RenderSparkline(yr.Col(0), 72).c_str());
  std::printf("E[Yr | retransmits]:   %s\n",
              core::RenderSparkline(pred.Col(0), 72).c_str());
  // r^2 computed separately on above-mean and below-mean points.
  double above_rss = 0, above_tss = 0, below_rss = 0, below_tss = 0;
  double mean = 0.0;
  for (size_t i = 0; i < t; ++i) mean += yr(i, 0);
  mean /= static_cast<double>(t);
  for (size_t i = 0; i < t; ++i) {
    const double d = yr(i, 0) - mean;
    const double e = yr(i, 0) - pred(i, 0);
    if (d > 0) {
      above_rss += e * e;
      above_tss += d * d;
    } else {
      below_rss += e * e;
      below_tss += d * d;
    }
  }
  const double r2_above = 1.0 - above_rss / above_tss;
  const double r2_below = 1.0 - below_rss / below_tss;
  std::printf(
      "\nvariance explained above the mean: %.2f; below the mean: %.2f\n",
      r2_above, r2_below);
  std::printf(
      "retransmissions explain increases in runtime but not dips: %s\n",
      r2_above > r2_below + 0.2 ? "yes (Figure 15 reproduced)" : "NO");
  return r2_above > r2_below + 0.2 ? 0 : 1;
}
