// google-benchmark microbenchmarks of the dense kernels that dominate
// hypothesis-scoring cost (supports the Table 2 cost model with per-kernel
// numbers).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "la/blas.h"
#include "la/cholesky.h"
#include "la/random_projection.h"
#include "stats/pearson.h"
#include "stats/ridge.h"

namespace explainit {
namespace {

la::Matrix RandomMatrix(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(r, c);
  rng.FillNormal(m.data(), m.size());
  return m;
}

void BM_Gram(benchmark::State& state) {
  const size_t t = 480, nx = static_cast<size_t>(state.range(0));
  la::Matrix x = RandomMatrix(t, nx, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Gram(x));
  }
  state.SetComplexityN(static_cast<int64_t>(nx));
}
BENCHMARK(BM_Gram)->Arg(32)->Arg(128)->Arg(512)->Complexity(
    benchmark::oNSquared);

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  la::Matrix a = RandomMatrix(n, n, 2);
  la::Matrix b = RandomMatrix(n, n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::MatMul(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256)->Complexity(
    benchmark::oNCubed);

void BM_Cholesky(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  la::Matrix x = RandomMatrix(n + 8, n, 4);
  la::Matrix spd = la::Gram(x);
  for (size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::CholeskyFactor(spd));
  }
}
BENCHMARK(BM_Cholesky)->Arg(64)->Arg(128)->Arg(256);

void BM_CorrelationSummary(benchmark::State& state) {
  const size_t t = 480, nx = static_cast<size_t>(state.range(0));
  la::Matrix x = RandomMatrix(t, nx, 5);
  la::Matrix y = RandomMatrix(t, 2, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::CorrelationSummary(x, y));
  }
}
BENCHMARK(BM_CorrelationSummary)->Arg(128)->Arg(1024)->Arg(8192);

void BM_RidgeFitCvPrimal(benchmark::State& state) {
  const size_t t = 480, nx = static_cast<size_t>(state.range(0));
  la::Matrix x = RandomMatrix(t, nx, 7);
  la::Matrix y = RandomMatrix(t, 1, 8);
  stats::RidgeRegression ridge;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ridge.FitCv(x, y));
  }
}
BENCHMARK(BM_RidgeFitCvPrimal)->Arg(32)->Arg(128)->Arg(320);

void BM_RidgeFitCvDual(benchmark::State& state) {
  const size_t t = 240, nx = static_cast<size_t>(state.range(0));
  la::Matrix x = RandomMatrix(t, nx, 9);
  la::Matrix y = RandomMatrix(t, 1, 10);
  stats::RidgeRegression ridge;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ridge.FitCv(x, y));
  }
}
BENCHMARK(BM_RidgeFitCvDual)->Arg(512)->Arg(2048);

void BM_RandomProjection(benchmark::State& state) {
  const size_t t = 480, nx = static_cast<size_t>(state.range(0));
  la::Matrix x = RandomMatrix(t, nx, 11);
  Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::ProjectIfWide(x, 50, rng));
  }
}
BENCHMARK(BM_RandomProjection)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace explainit

BENCHMARK_MAIN();
