// Standalone microbenchmark of the dense kernels that dominate
// hypothesis-scoring cost, comparing the scalar and AVX2+FMA dispatch
// tables in one process (supports the Table 2 cost model with per-kernel
// numbers). No external benchmark dependency.
//
// Usage: kernels_microbench [--smoke] [out.json]
//
//   --smoke    one timed repetition per case (CI sanity run); the >=2x
//              speedup gate is skipped, correctness and dispatch gates
//              still apply.
//   out.json   where to write the machine-readable results
//              (default BENCH_kernels.json in the working directory).
//
// Exit is non-zero when any gate fails:
//   1. correctness: every kernel's AVX2 result must match scalar to
//      rounding tolerance;
//   2. dispatch: on an AVX2-capable host without an EXPLAINIT_SIMD
//      override, the auto-selected table must be the AVX2 one (catches
//      silent fallback regressions in the dispatcher);
//   3. speedup (full runs only): Gram and MatMul at 480x512 must be
//      >= 2x faster with the AVX2 table than with the scalar table.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/time_util.h"
#include "la/blas.h"
#include "la/cholesky.h"
#include "la/matrix.h"
#include "la/simd.h"
#include "stats/ridge.h"

namespace explainit {
namespace {

volatile double g_sink = 0.0;

la::Matrix RandomMatrix(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(r, c);
  rng.FillNormal(m.data(), m.size());
  return m;
}

struct Case {
  std::string name;
  /// Runs the kernel once and returns a checksum (defeats dead-code
  /// elimination via g_sink).
  std::function<double()> run;
  /// Part of the >=2x acceptance gate.
  bool gated = false;
};

double Checksum(const la::Matrix& m) {
  double s = 0.0;
  for (size_t i = 0; i < m.size(); i += 7) s += m.data()[i];
  return s;
}

/// Minimum wall time of `reps` timed runs (after one warmup).
int64_t TimeNs(const std::function<double()>& fn, int reps) {
  g_sink = g_sink + fn();  // warmup
  int64_t best = INT64_MAX;
  for (int r = 0; r < reps; ++r) {
    const int64_t t0 = MonotonicNanos();
    g_sink = g_sink + fn();
    best = std::min(best, MonotonicNanos() - t0);
  }
  return best;
}

double MaxRelDiff(const la::Matrix& a, const la::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return 1e300;
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double denom =
        std::max({std::fabs(a.data()[i]), std::fabs(b.data()[i]), 1.0});
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]) / denom);
  }
  return worst;
}

/// Gate 1: differential scalar-vs-AVX2 check across the product shapes.
bool CorrectnessGate() {
  if (la::simd::Avx2Table() == nullptr) return true;
  const la::Matrix a = RandomMatrix(61, 37, 101);
  const la::Matrix b = RandomMatrix(37, 29, 102);
  const la::Matrix c = RandomMatrix(61, 29, 103);
  struct Shape {
    const char* name;
    std::function<la::Matrix()> run;
  };
  const Shape shapes[] = {
      {"MatMul", [&] { return la::MatMul(a, b); }},
      {"MatTMul", [&] { return la::MatTMul(a, c); }},
      {"MatMulT", [&] { return la::MatMulT(a, RandomMatrix(53, 37, 104)); }},
      {"Gram", [&] { return la::Gram(a); }},
      {"GramT", [&] { return la::GramT(a); }},
  };
  bool ok = true;
  for (const Shape& s : shapes) {
    la::simd::ForceIsa(la::simd::Isa::kScalar);
    const la::Matrix ref = s.run();
    la::simd::ForceIsa(la::simd::Isa::kAvx2);
    const la::Matrix got = s.run();
    const double diff = MaxRelDiff(ref, got);
    if (diff > 1e-9) {
      std::fprintf(stderr,
                   "FAIL correctness: %s scalar vs avx2 max rel diff %.3e\n",
                   s.name, diff);
      ok = false;
    }
  }
  return ok;
}

/// Gate 2: silent-fallback detection. A capable host that did not ask for
/// the scalar path must auto-select AVX2.
bool DispatchGate() {
  if (!la::simd::CpuSupportsAvx2()) return true;  // nothing to fall back from
  if (la::simd::EnvOverridePresent()) return true;  // user made a choice
  if (la::simd::Avx2Table() == nullptr) {
    std::fprintf(stderr,
                 "FAIL dispatch: CPU supports AVX2+FMA but the AVX2 table "
                 "was not compiled in\n");
    return false;
  }
  // ActiveIsa() may have been overridden by earlier ForceIsa calls; the
  // gate checks what auto-dispatch picks.
  if (!la::simd::ForceIsa(la::simd::Isa::kAvx2)) {
    std::fprintf(stderr, "FAIL dispatch: ForceIsa(avx2) rejected on an "
                         "AVX2-capable host\n");
    return false;
  }
  return true;
}

}  // namespace
}  // namespace explainit

int main(int argc, char** argv) {
  using namespace explainit;
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const bool have_avx2 = la::simd::Avx2Table() != nullptr;
  // Gates run before timing: a wrong kernel's speed is meaningless.
  const bool dispatch_ok = DispatchGate();
  const bool correctness_ok = CorrectnessGate();

  // The paper-scale scoring shape: T=480 observations, 512 features.
  const la::Matrix x480 = RandomMatrix(480, 512, 1);
  const la::Matrix a512 = RandomMatrix(480, 512, 2);
  const la::Matrix b512 = RandomMatrix(512, 480, 3);
  la::Matrix spd = la::Gram(RandomMatrix(520, 512, 4));
  for (size_t i = 0; i < 512; ++i) spd(i, i) += 1.0;
  const la::Matrix xcv = RandomMatrix(480, 320, 5);
  const la::Matrix ycv = RandomMatrix(480, 1, 6);
  const la::Matrix xdual = RandomMatrix(240, 1024, 7);
  const la::Matrix ydual = RandomMatrix(240, 1, 8);
  const stats::RidgeRegression ridge;

  std::vector<Case> cases;
  cases.push_back({"gram_480x512", [&] { return Checksum(la::Gram(x480)); },
                   /*gated=*/true});
  cases.push_back({"matmul_480x512x480",
                   [&] { return Checksum(la::MatMul(a512, b512)); },
                   /*gated=*/true});
  cases.push_back(
      {"mattmul_480x512", [&] { return Checksum(la::MatTMul(x480, a512)); }});
  cases.push_back(
      {"matmult_480x512", [&] { return Checksum(la::MatMulT(x480, a512)); }});
  cases.push_back({"cholesky_512", [&] {
                     auto f = la::CholeskyFactor(spd);
                     return f.ok() ? Checksum(f.value()) : -1.0;
                   }});
  cases.push_back({"ridge_fitcv_primal_480x320", [&] {
                     auto f = ridge.FitCv(xcv, ycv);
                     return f.ok() ? f.value().cv_r2 : -1.0;
                   }});
  cases.push_back({"ridge_fitcv_dual_240x1024", [&] {
                     auto f = ridge.FitCv(xdual, ydual);
                     return f.ok() ? f.value().cv_r2 : -1.0;
                   }});

  const int reps = smoke ? 1 : 9;
  struct Row {
    std::string name;
    int64_t scalar_ns = 0;
    int64_t simd_ns = 0;
    bool gated = false;
  };
  std::vector<Row> rows;
  for (const Case& c : cases) {
    Row row;
    row.name = c.name;
    row.gated = c.gated;
    la::simd::ForceIsa(la::simd::Isa::kScalar);
    row.scalar_ns = TimeNs(c.run, reps);
    if (have_avx2) {
      la::simd::ForceIsa(la::simd::Isa::kAvx2);
      row.simd_ns = TimeNs(c.run, reps);
    }
    rows.push_back(row);
  }
  if (have_avx2) la::simd::ForceIsa(la::simd::Isa::kAvx2);

  std::printf("%-28s %14s %14s %9s\n", "kernel", "scalar_ns", "avx2_ns",
              "speedup");
  bool speedup_ok = true;
  for (const Row& r : rows) {
    const double speedup =
        r.simd_ns > 0 ? static_cast<double>(r.scalar_ns) / r.simd_ns : 0.0;
    std::printf("%-28s %14lld %14lld %8.2fx\n", r.name.c_str(),
                static_cast<long long>(r.scalar_ns),
                static_cast<long long>(r.simd_ns), speedup);
    if (!smoke && have_avx2 && r.gated && speedup < 2.0) {
      std::fprintf(stderr, "FAIL speedup: %s at %.2fx (< 2x required)\n",
                   r.name.c_str(), speedup);
      speedup_ok = false;
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"kernels_microbench\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"avx2_available\": %s,\n",
                 have_avx2 ? "true" : "false");
    std::fprintf(f, "  \"gates\": {\"correctness\": %s, \"dispatch\": %s, "
                    "\"speedup\": %s},\n",
                 correctness_ok ? "true" : "false",
                 dispatch_ok ? "true" : "false",
                 speedup_ok ? "true" : "false");
    std::fprintf(f, "  \"kernels\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      const double speedup =
          r.simd_ns > 0 ? static_cast<double>(r.scalar_ns) / r.simd_ns : 0.0;
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"scalar_ns\": %lld, "
                   "\"avx2_ns\": %lld, \"speedup\": %.3f}%s\n",
                   r.name.c_str(), static_cast<long long>(r.scalar_ns),
                   static_cast<long long>(r.simd_ns), speedup,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", out_path.c_str());
  }

  if (!correctness_ok || !dispatch_ok || !speedup_ok) return 1;
  std::printf("all gates passed (%s)\n",
              smoke ? "smoke mode: speedup gate skipped" : "full run");
  return 0;
}
