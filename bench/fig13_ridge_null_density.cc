// Figure 13: the empirical density of ridge-regression r^2 under the null
// for n=1000, p=500. Small lambda behaves like plain OLS r^2 (biased
// toward (p-1)/(n-1)); huge lambda shrinks to ~0; cross-validated lambda
// selection behaves like the adjusted r^2 — near 0 with small variance.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "exec/thread_pool.h"
#include "la/blas.h"
#include "stats/ridge.h"

namespace {

// In-sample r^2 of a fixed-lambda ridge fit on standardised null data.
double InSampleRidgeR2(size_t n, size_t p, double lambda, uint64_t seed) {
  using namespace explainit;
  Rng rng(seed);
  la::Matrix x(n, p), y(n, 1);
  rng.FillNormal(x.data(), x.size());
  rng.FillNormal(y.data(), y.size());
  auto beta = stats::RidgeRegression::Solve(x, y, lambda);
  if (!beta.ok()) return 0.0;
  la::Matrix fitted = la::MatMul(x, beta.value());
  return stats::RSquared(y, fitted);
}

}  // namespace

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Figure 13: ridge r^2 under the null (n=1000, p=500)");
  const size_t n = 1000, p = 500;
  const int reps = bench::PaperScale() ? 100 : 40;

  for (double lambda : {0.1, 1e6}) {
    std::vector<double> r2s(reps);
    exec::ThreadPool pool;
    exec::ParallelFor(pool, reps, [&](size_t i) {
      r2s[i] = InSampleRidgeR2(n, p, lambda, 2000 + i);
    });
    double mean = 0.0, var = 0.0;
    for (double v : r2s) mean += v;
    mean /= reps;
    for (double v : r2s) var += (v - mean) * (v - mean);
    var /= reps;
    std::printf("lambda = %-8.2g  in-sample r^2: mean %.3f  sd %.4f\n",
                lambda, mean, std::sqrt(var));
  }

  // Cross-validated selection: the score ExplainIt! actually reports.
  std::vector<double> cv_r2(reps);
  std::vector<double> chosen_lambda(reps);
  stats::RidgeOptions opts;
  opts.lambdas = {0.1, 10.0, 1000.0, 1e5, 1e6};
  exec::ThreadPool pool;
  exec::ParallelFor(pool, reps, [&](size_t i) {
    Rng rng(3000 + i);
    la::Matrix x(n, p), y(n, 1);
    rng.FillNormal(x.data(), x.size());
    rng.FillNormal(y.data(), y.size());
    stats::RidgeRegression ridge(opts);
    auto fit = ridge.FitCv(x, y);
    if (!fit.ok()) return;
    cv_r2[i] = fit->cv_r2;
    chosen_lambda[i] = fit->best_lambda;
  });
  double mean = 0.0, var = 0.0, big_lambda = 0.0;
  for (int i = 0; i < reps; ++i) {
    mean += cv_r2[i];
    if (chosen_lambda[i] >= 1e5) big_lambda += 1.0;
  }
  mean /= reps;
  for (int i = 0; i < reps; ++i) {
    var += (cv_r2[i] - mean) * (cv_r2[i] - mean);
  }
  var /= reps;
  std::printf(
      "cross-validated   out-of-sample r^2: mean %.3f  sd %.4f;"
      "  lambda >= 1e5 chosen in %.0f%% of runs\n",
      mean, std::sqrt(var), 100.0 * big_lambda / reps);
  std::printf(
      "\nPaper shape: small lambda ~ OLS r^2 (~%.2f); CV selects a huge"
      " penalty and the score is ~0 with small variance.\n",
      499.0 / 999.0);
  const bool ok = std::abs(mean) < 0.1 && big_lambda / reps > 0.5;
  std::printf("matches: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
