// Table 2: asymptotic CPU cost of scoring a hypothesis.
//   CorrMean/CorrMax: O(nx ny T)
//   Joint/Multivariate: O(kL (Cx,y + ...)), Cx,y = O(ny min(T nx^2, T^2 nx))
//   Random projection d: O(kL T d (nx + ny + nz + d))
// This bench measures wall time across sweeps and reports the scaling
// ratios that the big-O terms predict.
#include <cstdio>

#include "la/random_projection.h"

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/time_util.h"
#include "stats/pearson.h"
#include "stats/ridge.h"

namespace explainit {
namespace {

la::Matrix RandomMatrix(size_t r, size_t c, Rng& rng) {
  la::Matrix m(r, c);
  rng.FillNormal(m.data(), m.size());
  return m;
}

double TimeIt(const std::function<void()>& fn, int reps = 3) {
  double best = 1e18;
  for (int i = 0; i < reps; ++i) {
    const double t0 = MonotonicSeconds();
    fn();
    best = std::min(best, MonotonicSeconds() - t0);
  }
  return best;
}

int Run() {
  bench::PrintHeader("Table 2: asymptotic CPU cost of scoring a hypothesis");
  Rng rng(1);
  const size_t t = bench::PaperScale() ? 1440 : 480;

  std::printf("Univariate (CorrMean/CorrMax): expect time ~ nx (ny, T fixed)\n");
  std::printf("%8s %12s %14s\n", "nx", "seconds", "sec/prev");
  double prev = 0.0;
  for (size_t nx : {256u, 512u, 1024u, 2048u}) {
    la::Matrix x = RandomMatrix(t, nx, rng);
    la::Matrix y = RandomMatrix(t, 4, rng);
    const double sec =
        TimeIt([&] { stats::CorrelationSummary(x, y); });
    std::printf("%8zu %12.5f %14.2f\n", nx, sec,
                prev > 0 ? sec / prev : 0.0);
    prev = sec;
  }

  std::printf(
      "\nJoint ridge (primal, nx <= T): expect time ~ nx^2 (T fixed)\n");
  std::printf("%8s %12s %14s\n", "nx", "seconds", "sec/prev");
  prev = 0.0;
  stats::RidgeRegression ridge;
  for (size_t nx : {32u, 64u, 128u, 256u}) {
    la::Matrix x = RandomMatrix(t, nx, rng);
    la::Matrix y = RandomMatrix(t, 1, rng);
    const double sec = TimeIt([&] { (void)ridge.FitCv(x, y); }, 2);
    std::printf("%8zu %12.5f %14.2f\n", nx, sec,
                prev > 0 ? sec / prev : 0.0);
    prev = sec;
  }

  std::printf(
      "\nJoint ridge (dual, nx > T): expect time ~ nx (T fixed; T^2 nx"
      " regime)\n");
  std::printf("%8s %12s %14s\n", "nx", "seconds", "sec/prev");
  prev = 0.0;
  for (size_t nx : {600u, 1200u, 2400u}) {
    la::Matrix x = RandomMatrix(t, nx, rng);
    la::Matrix y = RandomMatrix(t, 1, rng);
    const double sec = TimeIt([&] { (void)ridge.FitCv(x, y); }, 2);
    std::printf("%8zu %12.5f %14.2f\n", nx, sec,
                prev > 0 ? sec / prev : 0.0);
    prev = sec;
  }

  std::printf(
      "\nRandom projection + ridge: time ~ T d nx for the projection, then"
      " constant-size regression\n");
  std::printf("%8s %8s %12s\n", "nx", "d", "seconds");
  for (size_t nx : {1024u, 4096u}) {
    for (size_t d : {50u, 500u}) {
      la::Matrix x = RandomMatrix(t, nx, rng);
      la::Matrix y = RandomMatrix(t, 1, rng);
      Rng prng(2);
      const double sec = TimeIt(
          [&] {
            la::Matrix px = la::ProjectIfWide(x, d, prng);
            (void)ridge.FitCv(px, y);
          },
          2);
      std::printf("%8zu %8zu %12.5f\n", nx, d, sec);
    }
  }

  std::printf(
      "\nPrimal/dual switch check: cost at nx slightly above T should not"
      " blow up (min() in the cost model).\n");
  for (size_t nx : {static_cast<size_t>(t * 0.9),
                    static_cast<size_t>(t * 1.2)}) {
    la::Matrix x = RandomMatrix(t, nx, rng);
    la::Matrix y = RandomMatrix(t, 1, rng);
    const double sec = TimeIt([&] { (void)ridge.FitCv(x, y); }, 2);
    std::printf("  nx=%5zu (T=%zu): %.4fs\n", nx, t, sec);
  }
  return 0;
}

}  // namespace
}  // namespace explainit

int main() { return explainit::Run(); }
