// Figure 6: distribution of pipeline runtimes for the same input before
// and after the hypervisor buffer fix (§5.2). The paper reports a ~10%
// runtime reduction and a bimodal shape driven by input variation.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "simulator/case_studies.h"

namespace {

std::vector<double> Runtimes(const explainit::sim::CaseStudyWorld& world) {
  explainit::tsdb::ScanRequest req;
  req.metric_glob = "overall_runtime";
  req.range = world.range;
  auto scan = world.store->Scan(req);
  if (!scan.ok() || scan->empty()) return {};
  return (*scan)[0].values;
}

void PrintHistogram(const char* label, const std::vector<double>& v,
                    double lo, double hi, int bins = 24) {
  std::vector<int> counts(bins, 0);
  for (double x : v) {
    int b = static_cast<int>((x - lo) / (hi - lo) * bins);
    b = std::clamp(b, 0, bins - 1);
    ++counts[b];
  }
  const int max_count = *std::max_element(counts.begin(), counts.end());
  std::printf("%s\n", label);
  for (int b = 0; b < bins; ++b) {
    const int width = max_count > 0 ? counts[b] * 40 / max_count : 0;
    std::printf("  %7.1f |%s\n", lo + (hi - lo) * (b + 0.5) / bins,
                std::string(static_cast<size_t>(width), '#').c_str());
  }
}

}  // namespace

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Figure 6: runtime distribution before/after the hypervisor fix");
  const size_t steps = bench::PaperScale() ? 1440 : 720;
  auto before = Runtimes(sim::MakeHypervisorDropCase(steps, 202, false));
  auto after = Runtimes(sim::MakeHypervisorDropCase(steps, 202, true));
  if (before.empty() || after.empty()) return 1;
  double lo = 1e18, hi = -1e18, mean_b = 0.0, mean_a = 0.0;
  for (double v : before) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    mean_b += v;
  }
  for (double v : after) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    mean_a += v;
  }
  mean_b /= static_cast<double>(before.size());
  mean_a /= static_cast<double>(after.size());
  PrintHistogram("before fix:", before, lo, hi);
  PrintHistogram("after fix:", after, lo, hi);
  const double reduction = (mean_b - mean_a) / mean_b;
  std::printf(
      "\nmean runtime before: %.2f s   after: %.2f s   reduction: %.1f%%"
      " (paper: ~10%%)\n",
      mean_b, mean_a, 100.0 * reduction);
  return reduction > 0.03 ? 0 : 1;
}
