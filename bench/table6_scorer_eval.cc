// Table 6: the main evaluation. Eleven ground-truth scenarios scored by
// the five methods; per-scenario discounted gain (1/rank of first cause,
// top-20 cutoff, "-" on failure) and the summary block (harmonic mean with
// 0.001 failure floor, average, stdev, success@{1,5,10,20}).
#include "bench/bench_util.h"

#include "common/time_util.h"

namespace explainit {
namespace {

int Run() {
  bench::PrintHeader(
      "Table 6: scoring-method comparison over 11 labelled scenarios");
  const size_t t = bench::ScenarioSteps();
  const double scale = bench::FeatureScale();
  std::vector<sim::Scenario> scenarios = sim::MakeTable6Suite(t, scale);
  const std::vector<std::string> scorer_names = bench::PaperScorers();

  // metrics[scorer][scenario]
  std::vector<std::vector<core::RankingMetrics>> metrics(scorer_names.size());
  std::vector<std::vector<std::vector<std::string>>> rankings(
      scorer_names.size());
  std::vector<core::ScenarioLabels> labels;
  for (const sim::Scenario& s : scenarios) labels.push_back(s.labels);

  std::printf("%-22s %9s %9s", "Scenario", "#Families", "#Features");
  for (const std::string& name : scorer_names) {
    std::printf(" %9s", name.c_str());
  }
  std::printf("\n");

  for (size_t si = 0; si < scenarios.size(); ++si) {
    const sim::Scenario& s = scenarios[si];
    std::printf("%-22s %9zu %9zu", s.name.c_str(), s.families.size(),
                s.total_features);
    for (size_t mi = 0; mi < scorer_names.size(); ++mi) {
      auto scorer = core::MakeScorer(scorer_names[mi]);
      if (!scorer.ok()) return 1;
      std::vector<std::string> ranking =
          bench::RankScenario(s, **scorer);
      core::RankingMetrics m = core::EvaluateRanking(ranking, s.labels);
      metrics[mi].push_back(m);
      rankings[mi].push_back(std::move(ranking));
      if (m.failed) {
        std::printf(" %9s", "-");
      } else {
        std::printf(" %9.3f", m.discounted_gain);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\n%-34s", "Summary");
  for (const std::string& name : scorer_names) {
    std::printf(" %9s", name.c_str());
  }
  std::printf("\n");
  std::vector<core::MethodSummary> summaries;
  for (size_t mi = 0; mi < scorer_names.size(); ++mi) {
    summaries.push_back(
        core::SummarizeMethod(metrics[mi], rankings[mi], labels));
  }
  auto row = [&](const char* label, auto getter) {
    std::printf("%-34s", label);
    for (const core::MethodSummary& s : summaries) {
      std::printf(" %9.3f", getter(s));
    }
    std::printf("\n");
  };
  row("Harmonic mean (discounted gain)",
      [](const core::MethodSummary& s) { return s.harmonic_mean_gain; });
  row("Average (discounted gain)",
      [](const core::MethodSummary& s) { return s.average_gain; });
  row("Stdev of average discounted gain",
      [](const core::MethodSummary& s) { return s.stdev_gain; });
  row("Success (%) top-1",
      [](const core::MethodSummary& s) { return s.success_top1; });
  row("Success (%) top-5",
      [](const core::MethodSummary& s) { return s.success_top5; });
  row("Success (%) top-10",
      [](const core::MethodSummary& s) { return s.success_top10; });
  row("Success (%) top-20",
      [](const core::MethodSummary& s) { return s.success_top20; });

  // §6.1: "We observed a similar behaviour for discounted cumulative
  // ranking gain with a discount factor of 1/log(1+r) instead of 1/r."
  std::printf("%-34s", "Average (1/log2(1+r) gain)");
  for (size_t mi = 0; mi < scorer_names.size(); ++mi) {
    double acc = 0.0;
    for (const core::RankingMetrics& m : metrics[mi]) {
      acc += m.failed ? 0.0 : m.log_discounted_gain;
    }
    std::printf(" %9.3f", acc / static_cast<double>(metrics[mi].size()));
  }
  std::printf("\n");

  std::printf(
      "\nPaper shape check: CorrMax strong at top-1; L2/L2-P500 strongest at"
      "\ntop-10/20; L2-P50 combines both; CorrMean weakest overall.\n");
  return 0;
}

}  // namespace
}  // namespace explainit

int main() { return explainit::Run(); }
