// Figure 5: the pipeline runtime over time with a clearly visible hump
// during the injected packet-drop window. Rendered as a sparkline plus
// spike statistics.
#include <cstdio>

#include "bench/bench_util.h"
#include "simulator/case_studies.h"
#include "stats/decompose.h"

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Figure 5: runtime time series during the packet-drop fault (§5.1)");
  const size_t steps = bench::PaperScale() ? 1440 : 480;
  sim::CaseStudyWorld world = sim::MakePacketDropCase(steps);
  tsdb::ScanRequest req;
  req.metric_glob = "overall_runtime";
  req.range = world.range;
  auto scan = world.store->Scan(req);
  if (!scan.ok() || scan->empty()) return 1;
  const auto& s = (*scan)[0];
  std::printf("overall_runtime:\n  %s\n",
              core::RenderSparkline(s.values, 72).c_str());
  auto spikes = stats::DetectSpikes(s.values, 4.0);
  size_t in_window = 0;
  for (size_t idx : spikes) {
    if (world.fault_window.Contains(s.timestamps[idx])) ++in_window;
  }
  double base = 0.0, fault = 0.0;
  size_t nb = 0, nf = 0;
  for (size_t i = 0; i < s.values.size(); ++i) {
    if (world.fault_window.Contains(s.timestamps[i])) {
      fault += s.values[i];
      ++nf;
    } else {
      base += s.values[i];
      ++nb;
    }
  }
  std::printf(
      "\nbaseline mean: %.1f s   fault-window mean: %.1f s   (x%.1f)\n",
      base / nb, fault / nf, (fault / nf) / (base / nb));
  std::printf("spike points detected: %zu (%zu inside the fault window)\n",
              spikes.size(), in_window);
  // The window includes the recovery tail, which dilutes its mean; x1.3
  // is still an unmistakable hump.
  const bool visible = (fault / nf) > 1.3 * (base / nb) && in_window > 0;
  std::printf("fault hump clearly visible: %s\n", visible ? "yes" : "NO");
  return visible ? 0 : 1;
}
