// Figure 12: density of the OLS r^2 and adjusted r^2 under the null
// (no relationship), n = 1000, p = 500. r^2 concentrates near
// (p-1)/(n-1) ~ 0.5; Wherry's r^2_adj concentrates near 0 with larger
// spread. Checked against the closed-form Beta((p-1)/2, (n-p)/2).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "exec/thread_pool.h"
#include "stats/distributions.h"
#include "stats/ols.h"

namespace {

void PrintDensity(const char* label, const std::vector<double>& samples,
                  double lo, double hi, int bins = 20) {
  std::vector<int> counts(bins, 0);
  for (double v : samples) {
    int b = static_cast<int>((v - lo) / (hi - lo) * bins);
    b = std::clamp(b, 0, bins - 1);
    ++counts[b];
  }
  const int maxc = *std::max_element(counts.begin(), counts.end());
  std::printf("%s\n", label);
  for (int b = 0; b < bins; ++b) {
    const int w = maxc > 0 ? counts[b] * 40 / maxc : 0;
    std::printf("  %6.2f |%s\n", lo + (hi - lo) * (b + 0.5) / bins,
                std::string(static_cast<size_t>(w), '#').c_str());
  }
}

}  // namespace

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Figure 12: null density of OLS r^2 vs adjusted r^2 (n=1000, p=500)");
  const size_t n = 1000, p = 500;
  const int reps = bench::PaperScale() ? 200 : 80;
  std::vector<double> r2(reps), r2adj(reps);
  exec::ThreadPool pool;
  exec::ParallelFor(pool, reps, [&](size_t i) {
    Rng rng(1000 + i);
    la::Matrix x(n, p), y(n, 1);
    rng.FillNormal(x.data(), x.size());
    rng.FillNormal(y.data(), y.size());
    auto ols = stats::OlsFit(x, y);
    if (!ols.ok()) return;
    r2[i] = ols->r2;
    r2adj[i] = ols->r2_adjusted;
  });
  PrintDensity("OLS r^2:", r2, -0.2, 1.0);
  PrintDensity("OLS r^2_adj:", r2adj, -0.2, 1.0);

  stats::BetaDistribution null_dist = stats::NullR2Distribution(n, p);
  double mean_r2 = 0.0, mean_adj = 0.0;
  for (int i = 0; i < reps; ++i) {
    mean_r2 += r2[i];
    mean_adj += r2adj[i];
  }
  mean_r2 /= reps;
  mean_adj /= reps;
  const double ks = stats::KolmogorovSmirnovStatistic(
      r2, [&](double v) { return null_dist.Cdf(v); });
  std::printf(
      "\nmean r^2 = %.3f (theory (p-1)/(n-1) = %.3f)   mean r^2_adj = %.3f"
      " (theory 0)\n",
      mean_r2, null_dist.Mean(), mean_adj);
  std::printf("KS statistic of r^2 sample vs Beta((p-1)/2,(n-p)/2): %.3f\n",
              ks);
  const bool ok = std::abs(mean_r2 - null_dist.Mean()) < 0.05 &&
                  std::abs(mean_adj) < 0.05 && ks < 0.2;
  std::printf("matches the Appendix A theory: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
