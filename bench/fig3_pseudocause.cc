// Figure 3: conditioning on the pseudocause Ys blocks the (unknown) causes
// of seasonality Cs and reveals the residual cause Cr. The experiment
// scores both candidate families marginally and conditioned on Ys.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/pseudocause.h"

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Figure 3: pseudocauses — conditioning on Ys reveals Cr");
  const size_t period = 24;
  const size_t t = bench::PaperScale() ? 24 * 60 : 24 * 25;
  Rng rng(42);
  la::Matrix cs(t, 1), cr(t, 1);
  core::FeatureFamily y;
  y.name = "Y1";
  y.feature_names = {"Y1"};
  y.data = la::Matrix(t, 1);
  for (size_t i = 0; i < t; ++i) {
    y.timestamps.push_back(static_cast<int64_t>(i) * 60);
    cs(i, 0) = 3.0 * std::sin(2.0 * M_PI *
                              static_cast<double>(i % period) /
                              static_cast<double>(period)) +
               rng.Normal() * 0.1;
    cr(i, 0) = ((i % 180) >= 60 && (i % 180) < 95)
                   ? 4.0 + rng.Normal() * 0.2
                   : rng.Normal() * 0.2;
    y.data(i, 0) = 10.0 + cs(i, 0) + cr(i, 0) + rng.Normal() * 0.2;
  }
  auto pc = core::BuildPseudocause(y);
  if (!pc.ok()) {
    std::fprintf(stderr, "%s\n", pc.status().ToString().c_str());
    return 1;
  }
  std::printf("detected seasonal period: %zu steps (true: %zu)\n\n",
              pc->period, period);
  core::RidgeScorer scorer;
  la::Matrix empty;
  auto cs_m = scorer.Score(cs, y.data, empty);
  auto cr_m = scorer.Score(cr, y.data, empty);
  auto cs_c = scorer.Score(cs, y.data, pc->systematic.data);
  auto cr_c = scorer.Score(cr, y.data, pc->systematic.data);
  if (!cs_m.ok() || !cr_m.ok() || !cs_c.ok() || !cr_c.ok()) return 1;
  std::printf("%-24s %10s %18s\n", "candidate family", "marginal",
              "conditioned on Ys");
  std::printf("%-24s %10.3f %18.3f\n", "Cs (seasonal cause)", cs_m->score,
              cs_c->score);
  std::printf("%-24s %10.3f %18.3f\n", "Cr (residual cause)", cr_m->score,
              cr_c->score);
  const bool blocked = cs_c->score < cs_m->score * 0.5;
  const bool revealed = cr_c->score > cs_c->score;
  std::printf(
      "\nconditioning %s Cs and %s Cr — %s\n",
      blocked ? "blocked" : "did NOT block",
      revealed ? "boosted" : "did NOT boost",
      blocked && revealed ? "Figure 3 reproduced" : "MISMATCH");
  return blocked && revealed ? 0 : 1;
}
