// Appendix A.2: false-positive control. The Chebyshev bound on
// P(r2_adj >= s | H0), the paper's worked example (n=1440, p=50 gives
// p(s) ~ 4.9e-5 / s^2), and Bonferroni / Benjamini-Hochberg corrections
// over a simulated 800-hypothesis ranking.
#include <cstdio>

#include "bench/bench_util.h"
#include "exec/thread_pool.h"
#include "stats/ols.h"
#include "stats/significance.h"

int main() {
  using namespace explainit;
  bench::PrintHeader("Appendix A: p-values and multiple-testing control");
  const size_t n = 1440, p = 50;
  std::printf("worked example: var(r2_adj | H0) for n=%zu, p=%zu = %.2e"
              " (paper: ~4.9e-5)\n",
              n, p, stats::NullAdjustedR2Variance(n, p));
  std::printf("%8s %14s %14s\n", "score", "Chebyshev p", "Beta-exact p");
  for (double s : {0.03, 0.1, 0.3, 0.5, 0.7}) {
    std::printf("%8.2f %14.3e %14.3e\n", s, stats::ChebyshevPValue(s, n, p),
                stats::BetaPValue(s, n, p));
  }

  // Empirical tail vs the Chebyshev bound (the bound must hold).
  const int reps = bench::PaperScale() ? 400 : 150;
  const size_t nn = 300, pp = 30;
  std::vector<double> adj(reps);
  exec::ThreadPool pool;
  exec::ParallelFor(pool, reps, [&](size_t i) {
    Rng rng(4000 + i);
    la::Matrix x(nn, pp), y(nn, 1);
    rng.FillNormal(x.data(), x.size());
    rng.FillNormal(y.data(), y.size());
    auto ols = stats::OlsFit(x, y);
    if (ols.ok()) adj[i] = ols->r2_adjusted;
  });
  std::printf("\nempirical tail vs Chebyshev (n=%zu, p=%zu, %d reps):\n", nn,
              pp, reps);
  bool bound_holds = true;
  for (double s : {0.05, 0.1, 0.15}) {
    int exceed = 0;
    for (double v : adj) {
      if (v >= s) ++exceed;
    }
    const double emp = static_cast<double>(exceed) / reps;
    const double bound = stats::ChebyshevPValue(s, nn, pp);
    if (emp > bound * 1.05) bound_holds = false;
    std::printf("  s=%.2f: empirical %.3f <= bound %.3f : %s\n", s, emp,
                bound, emp <= bound * 1.05 ? "ok" : "VIOLATED");
  }

  // Multiple testing: 20 true signals at score 0.3 among 780 null scores.
  std::vector<double> pvals;
  for (int i = 0; i < 20; ++i) {
    pvals.push_back(stats::BetaPValue(0.3, n, p));
  }
  Rng rng(99);
  for (int i = 0; i < 780; ++i) {
    pvals.push_back(rng.Uniform(0.05, 1.0));  // nulls
  }
  auto bonf = stats::BonferroniCorrect(pvals);
  auto bh = stats::BenjaminiHochbergAdjust(pvals);
  int bonf_sig = 0, bh_sig = 0;
  for (size_t i = 0; i < pvals.size(); ++i) {
    if (bonf[i] <= 0.05) ++bonf_sig;
    if (bh[i] <= 0.05) ++bh_sig;
  }
  std::printf(
      "\n800 hypotheses, 20 true (score 0.3): Bonferroni keeps %d,"
      " Benjamini-Hochberg keeps %d (both should keep exactly the 20).\n",
      bonf_sig, bh_sig);
  const bool ok = bound_holds && bonf_sig == 20 && bh_sig == 20;
  std::printf("false-positive control behaves as Appendix A describes: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
