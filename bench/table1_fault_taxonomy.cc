// Table 1: root-causes span diverse components. One injected fault per
// component class; the engine must surface the faulted family in the
// top-k of a global name-grouped search.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "simulator/datacentre.h"

namespace explainit {
namespace {

struct FaultCase {
  std::string component;   // Table 1 component class
  std::string fault;       // example cause
  std::string cause_metric;  // family that must rank high
  std::vector<sim::Intervention> interventions;
};

int Run() {
  bench::PrintHeader(
      "Table 1: fault taxonomy — one injected fault per component class");
  const size_t steps = bench::PaperScale() ? 1440 : 360;
  sim::DatacentreConfig config;
  sim::DatacentreModel model(config);
  const size_t w0 = steps / 2, w1 = w0 + steps / 10;

  auto window_add = [&](const std::vector<size_t>& nodes, double add) {
    std::vector<sim::Intervention> out;
    for (size_t n : nodes) {
      sim::Intervention iv;
      iv.node = n;
      iv.begin = w0;
      iv.end = w1;
      iv.add = add;
      out.push_back(iv);
    }
    return out;
  };

  // Recurring-shape interventions: realistic for infrastructure faults
  // (they flap), and they give the time-blocked cross-validation events
  // in every fold.
  auto recurring = [&](const std::vector<size_t>& nodes, double magnitude,
                       size_t period, size_t duty) {
    std::vector<sim::Intervention> out;
    for (size_t n : nodes) {
      sim::Intervention iv;
      iv.node = n;
      iv.begin = 0;
      iv.end = steps;
      iv.shape = [magnitude, period, duty](size_t t) {
        return (t % period) < duty ? magnitude : 0.0;
      };
      out.push_back(iv);
    }
    return out;
  };

  std::vector<FaultCase> cases;
  cases.push_back({"Physical infrastructure", "Slow disks",
                   "disk_read_latency_ms",
                   window_add(model.NodesByMetric("disk_read_latency_ms"),
                              25.0)});
  cases.push_back({"Virtual infrastructure", "Hypervisor network drops",
                   "tcp_retransmits",
                   recurring({model.hypervisor_drop_node()}, 2.5, 60, 15)});
  {
    // Software infrastructure: long JVM GCs stall the pipelines.
    FaultCase c;
    c.component = "Software infrastructure";
    c.fault = "Long JVM garbage collections";
    c.cause_metric = "jvm_gc_ms";
    c.interventions = window_add(model.NodesByMetric("jvm_gc_ms"), 400.0);
    cases.push_back(std::move(c));
  }
  cases.push_back({"Services", "Slow dependent service (namenode)",
                   "namenode_rpc_latency_ms",
                   recurring(model.NodesByMetric("namenode_rpc_latency_ms"),
                             20.0, 50, 12)});
  cases.push_back({"Input data", "Stragglers due to skew in data",
                   "input_rate_pipeline0",
                   window_add(model.NodesByMetric("input_rate_pipeline0"),
                              900.0)});
  {
    // Application code: memory leak — GC time ramps up over the window.
    FaultCase c;
    c.component = "Application code";
    c.fault = "Memory leak (ramping GC)";
    c.cause_metric = "jvm_gc_ms";
    for (size_t n : model.NodesByMetric("jvm_gc_ms")) {
      sim::Intervention iv;
      iv.node = n;
      iv.begin = w0;
      iv.end = steps;
      iv.shape = [w0](size_t t) {
        return 3.0 * static_cast<double>(t - w0);
      };
      c.interventions.push_back(iv);
    }
    cases.push_back(std::move(c));
  }

  std::printf("%-26s %-34s %-26s %5s %6s\n", "Component", "Injected fault",
              "Expected family", "rank", "top20");
  int failures = 0;
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const FaultCase& fc = cases[ci];
    // Faults that stall pipelines must actually reach the KPI: couple GC
    // and input faults through runtime with an extra intervention.
    std::vector<sim::Intervention> ivs = fc.interventions;
    if (fc.cause_metric == "jvm_gc_ms") {
      // GC pauses add directly to pipeline runtimes.
      for (size_t n : model.NodesByMetric("overall_runtime")) {
        for (const sim::Intervention& g : fc.interventions) {
          sim::Intervention iv;
          iv.node = n;
          iv.begin = g.begin;
          iv.end = g.end;
          if (g.shape) {
            auto shape = g.shape;
            iv.shape = [shape](size_t t) { return 0.02 * shape(t); };
          } else {
            iv.add = 0.04 * g.add;
          }
          ivs.push_back(iv);
        }
      }
    }
    auto store = std::make_shared<tsdb::SeriesStore>();
    Rng rng(7000 + ci);
    if (!model.WriteTo(store.get(), steps, 0, rng, ivs).ok()) return 1;
    core::Engine engine(store);
    core::Session session(
        &engine, TimeRange{0, static_cast<int64_t>(steps) * 60});
    if (!session.SetTargetByMetric("overall_runtime").ok()) return 1;
    core::GroupingOptions g;
    g.key = core::GroupingKey::kMetricName;
    if (!session.SetSearchSpaceByGrouping(g).ok()) return 1;
    if (!session.SetScorer("L2").ok()) return 1;
    auto table = session.Run();
    if (!table.ok()) {
      std::fprintf(stderr, "rank failed: %s\n",
                   table.status().ToString().c_str());
      return 1;
    }
    const size_t rank = table->RankOf(fc.cause_metric);
    const bool hit = rank >= 1 && rank <= 20;
    if (!hit) ++failures;
    std::printf("%-26s %-34s %-26s %5zu %6s\n", fc.component.c_str(),
                fc.fault.c_str(), fc.cause_metric.c_str(), rank,
                hit ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf("\n%d/%zu component classes localised in top-20.\n",
              static_cast<int>(cases.size()) - failures, cases.size());
  return 0;
}

}  // namespace
}  // namespace explainit

int main() { return explainit::Run(); }
