// End-to-end EXPLAIN statement benchmark: one declarative statement
// (target query + N candidate feature families + ranking) through
// Engine::Query, swept across the pipeline's parallelism knob {1, 2, hw}.
// The Rank stage rides the executor's worker pool, so its wall time
// (ScoreTable::total_seconds, i.e. the RankFamilies fan-out) is the
// headline number; sub-select execution is shared cost.
//
// Ranking parity across all parallelism levels (same families, same
// order, scores within FP-summation tolerance) AND across SIMD dispatch
// modes (scalar vs the best available kernel table) is verified before
// any timing is recorded; mismatches fail the bench. Per-level output
// includes the Rank stage's linear-algebra breakdown (gram/factor/solve/
// predict ns) and the cross-hypothesis scoring-cache hit counters.
// Emits BENCH_explain.json.
//
// Usage: explain_rca [--smoke] [output.json]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/time_util.h"
#include "core/engine.h"
#include "la/simd.h"
#include "tsdb/store.h"

namespace explainit {
namespace {

/// N candidate hosts each export one `sensor` series; the target
/// `overall_runtime` is driven by host "h3" plus noise, so the ranking
/// has a known answer ("h-h3" first).
std::shared_ptr<tsdb::SeriesStore> BuildStore(size_t num_candidates,
                                              size_t points) {
  auto store = std::make_shared<tsdb::SeriesStore>();
  std::vector<EpochSeconds> ts(points);
  for (size_t i = 0; i < points; ++i) ts[i] = static_cast<int64_t>(i) * 60;
  std::vector<double> driver(points);
  for (size_t h = 0; h < num_candidates; ++h) {
    const tsdb::TagSet tags{{"host", "h" + std::to_string(h)}};
    std::vector<double> vals(points);
    for (size_t i = 0; i < points; ++i) {
      vals[i] = std::sin(0.05 * static_cast<double>(i * (h + 1))) +
                0.1 * static_cast<double>((i * 13 + h * 7) % 17);
    }
    if (h == 3) driver = vals;
    if (!store->WriteSeries("sensor", tags, ts, vals).ok()) std::abort();
  }
  std::vector<double> runtime(points);
  for (size_t i = 0; i < points; ++i) {
    runtime[i] = 2.0 * driver[i] + 0.05 * static_cast<double>(i % 11);
  }
  if (!store
           ->WriteSeries("overall_runtime", tsdb::TagSet{{"host", "h0"}}, ts,
                         runtime)
           .ok()) {
    std::abort();
  }
  return store;
}

// Three derived features per candidate family (v, v^2, v^3 through a
// subquery), so each hypothesis is a real multi-feature ridge fit and the
// Rank stage carries representative weight.
const char* kExplainTemplate =
    "EXPLAIN (SELECT timestamp, AVG(value) AS y FROM tsdb "
    "WHERE metric_name = 'overall_runtime' GROUP BY timestamp) "
    "USING (SELECT ts, family, v, v * v AS v2, v * v * v AS v3 FROM "
    "(SELECT timestamp AS ts, CONCAT('h-', tag['host']) AS family, "
    "AVG(value) AS v FROM tsdb WHERE metric_name = 'sensor' "
    "GROUP BY timestamp, CONCAT('h-', tag['host'])) q) "
    "SCORE BY 'L2' TOP 20";

struct LevelReport {
  size_t parallelism = 1;
  double explain_sec = 1e300;  // whole statement, best of rounds
  double rank_sec = 1e300;     // Rank-stage fan-out (RankFamilies wall)
  core::ScoreTable table;      // last run's ranking (for parity)
};

std::vector<size_t> ParallelismSweep() {
  const size_t hw = std::max<size_t>(2, std::thread::hardware_concurrency());
  std::vector<size_t> sweep{1, 2, hw};
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
  return sweep;
}

bool SameRanking(const core::ScoreTable& a, const core::ScoreTable& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    if (a.rows[i].family_name != b.rows[i].family_name) return false;
    const double tol = 1e-9 * (1.0 + std::abs(a.rows[i].score));
    if (std::abs(a.rows[i].score - b.rows[i].score) > tol) return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_explain.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const size_t num_candidates = smoke ? 24 : 192;
  const size_t points = smoke ? 120 : 480;
  const int rounds = smoke ? 2 : 3;
  auto store = BuildStore(num_candidates, points);
  const TimeRange range{0, static_cast<int64_t>(points) * 60};

  std::printf(
      "EXPLAIN bench: 1 target + %zu candidate families x %zu points, "
      "parallelism sweep {1, 2, hw}%s\n",
      num_candidates, points, smoke ? " [smoke]" : "");

  const std::vector<size_t> sweep = ParallelismSweep();
  std::vector<LevelReport> levels(sweep.size());
  // One engine per level: the parallelism knob is an engine option, and a
  // persistent engine keeps its executor (and pool) across rounds.
  std::vector<std::unique_ptr<core::Engine>> engines;
  for (size_t j = 0; j < sweep.size(); ++j) {
    levels[j].parallelism = sweep[j];
    core::EngineOptions opt;
    opt.sql_parallelism = sweep[j];
    engines.push_back(std::make_unique<core::Engine>(store, opt));
    engines.back()->RegisterStoreTable("tsdb", range);
  }

  auto run_level = [&](size_t j) -> bool {
    const double t0 = MonotonicSeconds();
    auto result = engines[j]->Query(kExplainTemplate);
    const double elapsed = MonotonicSeconds() - t0;
    if (!result.ok()) {
      std::fprintf(stderr, "EXPLAIN failed at parallelism %zu: %s\n",
                   sweep[j], result.status().ToString().c_str());
      return false;
    }
    levels[j].explain_sec = std::min(levels[j].explain_sec, elapsed);
    levels[j].rank_sec =
        std::min(levels[j].rank_sec, result->score_table->total_seconds);
    levels[j].table = std::move(*result->score_table);
    return true;
  };

  // Parity gate: every level must produce the same ranking — and the
  // injected driver family must win — before any timing counts.
  bool parity = true;
  for (size_t j = 0; j < sweep.size(); ++j) {
    if (!run_level(j)) return 1;
    if (levels[j].table.rows.empty() ||
        levels[j].table.rows[0].family_name != "h-h3") {
      std::fprintf(stderr,
                   "parity FAILED: injected cause not first at "
                   "parallelism %zu\n",
                   sweep[j]);
      parity = false;
    }
    if (!SameRanking(levels[0].table, levels[j].table)) {
      std::fprintf(stderr, "parity FAILED at parallelism %zu\n", sweep[j]);
      parity = false;
    }
  }

  // Dispatch parity: the same statement under the scalar kernel table
  // must produce the identical family order (scores agree to rounding —
  // FMA contracts differently, so only the order is byte-comparable).
  bool dispatch_parity = true;
  const la::simd::Isa best_isa = la::simd::ActiveIsa();
  if (parity && la::simd::Avx2Table() != nullptr) {
    la::simd::ForceIsa(la::simd::Isa::kScalar);
    auto scalar_run = engines[0]->Query(kExplainTemplate);
    la::simd::ForceIsa(best_isa);
    if (!scalar_run.ok()) {
      std::fprintf(stderr, "EXPLAIN failed under scalar dispatch: %s\n",
                   scalar_run.status().ToString().c_str());
      dispatch_parity = false;
    } else {
      const core::ScoreTable& st = *scalar_run->score_table;
      if (st.rows.size() != levels[0].table.rows.size()) {
        dispatch_parity = false;
      } else {
        for (size_t i = 0; i < st.rows.size(); ++i) {
          if (st.rows[i].family_name != levels[0].table.rows[i].family_name) {
            dispatch_parity = false;
          }
        }
      }
      if (!dispatch_parity) {
        std::fprintf(stderr,
                     "parity FAILED: scalar vs %s rankings disagree\n",
                     la::simd::IsaName(best_isa));
      }
    }
  }

  // Timed rounds, levels interleaved so drift hits them equally.
  for (int r = 0; r < rounds && parity; ++r) {
    for (size_t j = 0; j < sweep.size(); ++j) {
      if (!run_level(j)) return 1;
    }
  }

  double best_parallel_rank = 1e300;
  double best_parallel_explain = 1e300;
  for (const LevelReport& l : levels) {
    if (l.parallelism > 1) {
      best_parallel_rank = std::min(best_parallel_rank, l.rank_sec);
      best_parallel_explain = std::min(best_parallel_explain, l.explain_sec);
    }
  }
  const double rank_speedup = levels[0].rank_sec / best_parallel_rank;
  const double explain_speedup =
      levels[0].explain_sec / best_parallel_explain;

  for (const LevelReport& l : levels) {
    const core::RankStageStats& s = l.table.stage;
    std::printf(
        "  p=%-3zu | EXPLAIN %8.4fs | Rank stage %8.4fs (%5.2fx serial)\n",
        l.parallelism, l.explain_sec, l.rank_sec,
        levels[0].rank_sec / l.rank_sec);
    std::printf(
        "         gram %6.1fms  factor %6.1fms  solve %6.1fms  "
        "predict %6.1fms | cache hits %zu misses %zu "
        "(design %zu/%zu, factor %zu/%zu, fit %zu/%zu)\n",
        s.gram_ns / 1e6, s.factor_ns / 1e6, s.solve_ns / 1e6,
        s.predict_ns / 1e6, s.total_hits(), s.total_misses(), s.design_hits,
        s.design_misses, s.factor_hits, s.factor_misses, s.fit_hits,
        s.fit_misses);
  }
  std::printf("SIMD dispatch: %s (scalar-vs-%s ranking parity: %s)\n",
              la::simd::IsaName(best_isa), la::simd::IsaName(best_isa),
              la::simd::Avx2Table() != nullptr
                  ? (dispatch_parity ? "ok" : "FAILED")
                  : "skipped, scalar-only host");
  std::printf(
      "Rank-stage parallel speedup over serial pipeline: %.2fx "
      "(end-to-end %.2fx) on %u hardware threads\n",
      rank_speedup, explain_speedup, std::thread::hardware_concurrency());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"explain\",\n  \"candidates\": %zu,\n"
               "  \"points\": %zu,\n  \"levels\": [\n",
               num_candidates, points);
  for (size_t j = 0; j < levels.size(); ++j) {
    const core::RankStageStats& s = levels[j].table.stage;
    std::fprintf(f,
                 "    {\"parallelism\": %zu, \"explain_sec\": %.6f, "
                 "\"rank_sec\": %.6f, \"gram_ns\": %lld, "
                 "\"factor_ns\": %lld, \"solve_ns\": %lld, "
                 "\"predict_ns\": %lld, \"cache_hits\": %zu, "
                 "\"cache_misses\": %zu}%s\n",
                 levels[j].parallelism, levels[j].explain_sec,
                 levels[j].rank_sec, static_cast<long long>(s.gram_ns),
                 static_cast<long long>(s.factor_ns),
                 static_cast<long long>(s.solve_ns),
                 static_cast<long long>(s.predict_ns), s.total_hits(),
                 s.total_misses(), j + 1 < levels.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"rank_parallel_speedup\": %.2f,\n"
               "  \"explain_parallel_speedup\": %.2f,\n"
               "  \"simd_dispatch\": \"%s\",\n"
               "  \"dispatch_results_match\": %s,\n"
               "  \"results_match\": %s\n}\n",
               rank_speedup, explain_speedup, la::simd::IsaName(best_isa),
               dispatch_parity ? "true" : "false",
               parity && dispatch_parity ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!parity) {
    std::printf("FAIL: rankings disagree across parallelism levels\n");
    return 1;
  }
  if (!dispatch_parity) {
    std::printf("FAIL: rankings disagree across SIMD dispatch modes\n");
    return 1;
  }
  // The >1.5x acceptance bar only makes sense with real cores to scale
  // onto; single/dual-core hosts report but do not gate.
  if (!smoke && std::thread::hardware_concurrency() >= 4 &&
      rank_speedup < 1.5) {
    std::printf("FAIL: Rank stage below 1.5x at hw parallelism\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace explainit

int main(int argc, char** argv) { return explainit::Main(argc, argv); }
