// Figure 9: the live intervention of §5.4 — default consistency check
// (20% IO share), then disabled, then re-enabled capped at 5%. The
// instability must track the setting.
#include <cstdio>

#include "bench/bench_util.h"
#include "simulator/case_studies.h"

namespace {

// Mean and peak of the scrub-window runtimes in [from, to) steps.
struct SegmentStats {
  double mean = 0.0;
  double peak = 0.0;
};

SegmentStats ScrubStats(const std::vector<double>& v, size_t from,
                        size_t to) {
  SegmentStats out;
  size_t n = 0;
  for (size_t i = from; i < to && i < v.size(); ++i) {
    if ((i % 168) < 4) {  // the weekly scrub window
      out.mean += v[i];
      out.peak = std::max(out.peak, v[i]);
      ++n;
    }
  }
  if (n > 0) out.mean /= static_cast<double>(n);
  return out;
}

}  // namespace

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Figure 9: RAID consistency-check intervention (§5.4)");
  const size_t steps = 1008;  // six weeks of hourly data
  sim::RaidSchedule schedule;
  schedule.disable_from = 336;  // weeks 3-4: disabled
  schedule.disable_to = 672;
  schedule.cap_from = 672;      // weeks 5-6: capped at 5%
  schedule.cap_share = 0.05;
  sim::CaseStudyWorld world = sim::MakeRaidScrubCase(steps, 404, schedule);
  tsdb::ScanRequest req;
  req.metric_glob = "overall_runtime";
  req.range = world.range;
  auto scan = world.store->Scan(req);
  if (!scan.ok() || scan->empty()) return 1;
  const auto& v = (*scan)[0].values;
  const SegmentStats def = ScrubStats(v, 0, 336);
  const SegmentStats off = ScrubStats(v, 336, 672);
  const SegmentStats capped = ScrubStats(v, 672, 1008);
  std::printf("%s\n", world.description.c_str());
  std::printf("\n%-28s %12s %12s\n", "segment", "scrub mean", "scrub peak");
  std::printf("%-28s %12.2f %12.2f\n", "default (20% IO share)", def.mean,
              def.peak);
  std::printf("%-28s %12.2f %12.2f\n", "check disabled", off.mean, off.peak);
  std::printf("%-28s %12.2f %12.2f\n", "capped at 5% IO share",
              capped.mean, capped.peak);
  const bool confirms =
      def.mean > off.mean + 1.0 && def.mean > capped.mean + 0.5 &&
      capped.mean >= off.mean - 0.5;
  std::printf(
      "\nintervention confirms the hypothesis (default >> disabled,"
      " capped in between): %s\n",
      confirms ? "yes" : "NO");
  return confirms ? 0 : 1;
}
