// The seed's row-at-a-time SQL interpreter, preserved verbatim (modulo
// renames) for benchmarking. The production path is the planner +
// vectorised operator pipeline in src/sql/; THIS code is the "before" of
// bench/sql_pipeline.cc's old-vs-new comparison: it re-materialises a
// full table::Table after every stage, scans the store eagerly (no
// pushdown hints), and evaluates everything row by row.
//
// Do not extend this interpreter; it exists so the perf trajectory keeps
// an honest baseline.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/evaluator.h"
#include "sql/functions.h"
#include "sql/parser.h"
#include "table/table.h"

namespace explainit::bench {

using sql::CaseBranch;
using sql::Evaluator;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::JoinClause;
using sql::JoinType;
using sql::OrderByItem;
using sql::SelectItem;
using sql::SelectStatement;
using sql::TableRef;
using table::DataType;
using table::Field;
using table::Schema;
using table::Table;
using table::Value;

inline Table SeedQualifySchema(Table t, const std::string& qualifier) {
  if (qualifier.empty()) return t;
  Schema schema;
  for (const Field& f : t.schema().fields()) {
    if (f.name.find('.') != std::string::npos) {
      schema.AddField(f);
    } else {
      schema.AddField(Field{qualifier + "." + f.name, f.type});
    }
  }
  // Rebuild with the renamed schema but the same columns.
  Table out(schema);
  for (size_t r = 0; r < t.num_rows(); ++r) out.AppendRow(t.Row(r));
  return out;
}

namespace seed_detail {

inline std::string EncodeKey(const std::vector<Value>& values,
                             bool* has_null) {
  std::string key;
  for (const Value& v : values) {
    if (v.is_null() && has_null != nullptr) *has_null = true;
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

inline void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary &&
      e->binary_op == sql::BinaryOp::kAnd) {
    CollectConjuncts(e->left.get(), out);
    CollectConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

inline bool ResolvesAgainst(const Expr& e, const Evaluator& ev) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return ev.ResolveColumn(e).ok();
    case ExprKind::kLiteral:
    case ExprKind::kStar:
      return true;
    default: {
      auto check = [&](const ExprPtr& c) {
        return c == nullptr || ResolvesAgainst(*c, ev);
      };
      if (!check(e.left) || !check(e.right) || !check(e.between_lo) ||
          !check(e.between_hi) || !check(e.case_else)) {
        return false;
      }
      for (const ExprPtr& a : e.args) {
        if (!check(a)) return false;
      }
      for (const ExprPtr& a : e.list) {
        if (!check(a)) return false;
      }
      for (const CaseBranch& b : e.case_branches) {
        if (!check(b.condition) || !check(b.result)) return false;
      }
      return true;
    }
  }
}

struct EquiKeys {
  std::vector<const Expr*> left_exprs;
  std::vector<const Expr*> right_exprs;
  std::vector<const Expr*> residual;
};

inline EquiKeys SplitJoinCondition(const Expr* condition,
                                   const Evaluator& left_ev,
                                   const Evaluator& right_ev) {
  EquiKeys keys;
  if (condition == nullptr) return keys;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(condition, &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kBinary &&
        c->binary_op == sql::BinaryOp::kEq) {
      const Expr* l = c->left.get();
      const Expr* r = c->right.get();
      if (ResolvesAgainst(*l, left_ev) && ResolvesAgainst(*r, right_ev)) {
        keys.left_exprs.push_back(l);
        keys.right_exprs.push_back(r);
        continue;
      }
      if (ResolvesAgainst(*r, left_ev) && ResolvesAgainst(*l, right_ev)) {
        keys.left_exprs.push_back(r);
        keys.right_exprs.push_back(l);
        continue;
      }
    }
    keys.residual.push_back(c);
  }
  return keys;
}

inline std::vector<Value> NullRow(size_t n) {
  return std::vector<Value>(n, Value::Null());
}

inline Result<Value> ComputeAggregate(const Expr& agg, const Evaluator& ev,
                                      const std::vector<size_t>& rows) {
  const std::string& name = agg.function_name;
  if (name == "COUNT") {
    if (agg.args.size() != 1) {
      return Status::InvalidArgument("COUNT expects 1 argument");
    }
    if (agg.args[0]->kind == ExprKind::kStar) {
      return Value::Int(static_cast<int64_t>(rows.size()));
    }
    int64_t n = 0;
    for (size_t r : rows) {
      EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*agg.args[0], r));
      if (!v.is_null()) ++n;
    }
    return Value::Int(n);
  }
  if (agg.args.empty()) {
    return Status::InvalidArgument(name + " expects an argument");
  }
  std::vector<double> values;
  values.reserve(rows.size());
  for (size_t r : rows) {
    EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*agg.args[0], r));
    if (!v.is_null()) values.push_back(v.AsDouble());
  }
  if (values.empty()) return Value::Null();
  if (name == "SUM" || name == "AVG") {
    double acc = 0.0;
    for (double v : values) acc += v;
    if (name == "SUM") return Value::Double(acc);
    return Value::Double(acc / static_cast<double>(values.size()));
  }
  if (name == "MIN") {
    return Value::Double(*std::min_element(values.begin(), values.end()));
  }
  if (name == "MAX") {
    return Value::Double(*std::max_element(values.begin(), values.end()));
  }
  if (name == "STDDEV") {
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size());
    return Value::Double(std::sqrt(var));
  }
  if (name == "PERCENTILE") {
    if (agg.args.size() != 2) {
      return Status::InvalidArgument("PERCENTILE expects (expr, p)");
    }
    EXPLAINIT_ASSIGN_OR_RETURN(Value pv, ev.Eval(*agg.args[1], rows[0]));
    double p = pv.AsDouble();
    if (p > 1.0) p /= 100.0;
    p = std::clamp(p, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    const double idx = p * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(values.size() - 1, lo + 1);
    const double frac = idx - static_cast<double>(lo);
    return Value::Double(values[lo] * (1.0 - frac) + values[hi] * frac);
  }
  return Status::Unimplemented("aggregate not implemented: " + name);
}

inline Result<Value> EvalInGroup(const Expr& e, const Evaluator& ev,
                                 const std::vector<size_t>& rows) {
  if (e.kind == ExprKind::kFunction &&
      sql::IsAggregateFunction(e.function_name)) {
    return ComputeAggregate(e, ev, rows);
  }
  if (!e.ContainsAggregate()) {
    return ev.Eval(e, rows[0]);
  }
  Expr copy;
  copy.kind = e.kind;
  copy.binary_op = e.binary_op;
  copy.unary_op = e.unary_op;
  copy.negated = e.negated;
  copy.function_name = e.function_name;
  copy.qualifier = e.qualifier;
  copy.column = e.column;
  copy.literal = e.literal;
  auto lift = [&](const ExprPtr& child) -> Result<ExprPtr> {
    if (child == nullptr) return ExprPtr{};
    EXPLAINIT_ASSIGN_OR_RETURN(Value v, EvalInGroup(*child, ev, rows));
    return sql::MakeLiteral(std::move(v));
  };
  EXPLAINIT_ASSIGN_OR_RETURN(copy.left, lift(e.left));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.right, lift(e.right));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.between_lo, lift(e.between_lo));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.between_hi, lift(e.between_hi));
  EXPLAINIT_ASSIGN_OR_RETURN(copy.case_else, lift(e.case_else));
  for (const ExprPtr& a : e.args) {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr la, lift(a));
    copy.args.push_back(std::move(la));
  }
  for (const ExprPtr& a : e.list) {
    EXPLAINIT_ASSIGN_OR_RETURN(ExprPtr la, lift(a));
    copy.list.push_back(std::move(la));
  }
  for (const CaseBranch& b : e.case_branches) {
    CaseBranch nb;
    EXPLAINIT_ASSIGN_OR_RETURN(nb.condition, lift(b.condition));
    EXPLAINIT_ASSIGN_OR_RETURN(nb.result, lift(b.result));
    copy.case_branches.push_back(std::move(nb));
  }
  return ev.Eval(copy, rows[0]);
}

inline std::string ItemName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  return item.expr->ToString();
}

}  // namespace seed_detail

/// The seed interpreter (old sql::Executor), for baseline timings only.
class SeedExecutor {
 public:
  SeedExecutor(const sql::Catalog* catalog,
               const sql::FunctionRegistry* functions)
      : catalog_(catalog), functions_(functions) {}

  Result<Table> Query(std::string_view q) {
    EXPLAINIT_ASSIGN_OR_RETURN(auto stmt, sql::Parse(q));
    return Execute(*stmt);
  }

  Result<Table> Execute(const SelectStatement& stmt) {
    EXPLAINIT_ASSIGN_OR_RETURN(Table out, ExecuteSingle(stmt));
    for (const auto& next : stmt.union_all) {
      EXPLAINIT_ASSIGN_OR_RETURN(Table more, ExecuteSingle(*next));
      EXPLAINIT_RETURN_IF_ERROR(out.UnionAll(more));
    }
    return out;
  }

 private:
  Result<Table> ResolveFrom(const SelectStatement& stmt) {
    if (!stmt.from.has_value()) {
      Table t{Schema{}};
      t.AppendRow({});
      return t;
    }
    const TableRef& ref = *stmt.from;
    Table base;
    if (ref.subquery != nullptr) {
      EXPLAINIT_ASSIGN_OR_RETURN(base, Execute(*ref.subquery));
    } else {
      EXPLAINIT_ASSIGN_OR_RETURN(base, catalog_->GetTable(ref.table_name));
    }
    if (stmt.joins.empty()) return base;
    std::string base_name = ref.EffectiveName();
    if (base_name.empty()) base_name = "_t0";
    Table acc = SeedQualifySchema(std::move(base), base_name);
    for (const JoinClause& join : stmt.joins) {
      std::string right_name = join.right.EffectiveName();
      if (right_name.empty()) {
        right_name =
            "_t" + std::to_string(&join - stmt.joins.data() + 1);
      }
      EXPLAINIT_ASSIGN_OR_RETURN(
          acc, ExecuteJoin(std::move(acc), join, right_name));
    }
    return acc;
  }

  Result<Table> ExecuteJoin(Table left, const JoinClause& join,
                            const std::string& right_name) {
    using seed_detail::EncodeKey;
    using seed_detail::NullRow;
    Table right;
    if (join.right.subquery != nullptr) {
      EXPLAINIT_ASSIGN_OR_RETURN(right, Execute(*join.right.subquery));
    } else {
      EXPLAINIT_ASSIGN_OR_RETURN(right,
                                 catalog_->GetTable(join.right.table_name));
    }
    right = SeedQualifySchema(std::move(right), right_name);

    Schema schema;
    for (const Field& f : left.schema().fields()) schema.AddField(f);
    for (const Field& f : right.schema().fields()) schema.AddField(f);
    Table out(schema);

    Evaluator left_ev(&left, functions_);
    Evaluator right_ev(&right, functions_);
    const size_t ln = left.num_rows(), rn = right.num_rows();

    if (join.type == JoinType::kCross) {
      for (size_t i = 0; i < ln; ++i) {
        std::vector<Value> lrow = left.Row(i);
        for (size_t j = 0; j < rn; ++j) {
          std::vector<Value> row = lrow;
          std::vector<Value> rrow = right.Row(j);
          row.insert(row.end(), rrow.begin(), rrow.end());
          out.AppendRow(std::move(row));
        }
      }
      return out;
    }

    seed_detail::EquiKeys keys =
        seed_detail::SplitJoinCondition(join.condition.get(), left_ev,
                                        right_ev);
    Evaluator out_ev(&out, functions_);

    auto residual_ok = [&](size_t out_row) -> Result<bool> {
      for (const Expr* r : keys.residual) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, out_ev.Eval(*r, out_row));
        if (v.is_null() || !v.AsBool()) return false;
      }
      return true;
    };

    if (!keys.left_exprs.empty()) {
      std::unordered_multimap<std::string, size_t> build;
      build.reserve(rn * 2);
      std::vector<bool> right_matched(rn, false);
      for (size_t j = 0; j < rn; ++j) {
        std::vector<Value> kv;
        kv.reserve(keys.right_exprs.size());
        bool has_null = false;
        for (const Expr* e : keys.right_exprs) {
          EXPLAINIT_ASSIGN_OR_RETURN(Value v, right_ev.Eval(*e, j));
          kv.push_back(std::move(v));
        }
        const std::string key = EncodeKey(kv, &has_null);
        if (!has_null) build.emplace(key, j);
      }
      for (size_t i = 0; i < ln; ++i) {
        std::vector<Value> kv;
        kv.reserve(keys.left_exprs.size());
        bool has_null = false;
        for (const Expr* e : keys.left_exprs) {
          EXPLAINIT_ASSIGN_OR_RETURN(Value v, left_ev.Eval(*e, i));
          kv.push_back(std::move(v));
        }
        const std::string key = EncodeKey(kv, &has_null);
        bool matched = false;
        if (!has_null) {
          auto [lo, hi] = build.equal_range(key);
          for (auto it = lo; it != hi; ++it) {
            const size_t j = it->second;
            std::vector<Value> row = left.Row(i);
            std::vector<Value> rrow = right.Row(j);
            row.insert(row.end(), rrow.begin(), rrow.end());
            out.AppendRow(std::move(row));
            EXPLAINIT_ASSIGN_OR_RETURN(bool ok,
                                       residual_ok(out.num_rows() - 1));
            if (!ok) {
              out.Truncate(out.num_rows() - 1);
              continue;
            }
            matched = true;
            right_matched[j] = true;
          }
        }
        if (!matched && (join.type == JoinType::kLeft ||
                         join.type == JoinType::kFullOuter)) {
          std::vector<Value> row = left.Row(i);
          std::vector<Value> pad = NullRow(right.num_columns());
          row.insert(row.end(), pad.begin(), pad.end());
          out.AppendRow(std::move(row));
        }
      }
      if (join.type == JoinType::kFullOuter) {
        for (size_t j = 0; j < rn; ++j) {
          if (right_matched[j]) continue;
          std::vector<Value> row = NullRow(left.num_columns());
          std::vector<Value> rrow = right.Row(j);
          row.insert(row.end(), rrow.begin(), rrow.end());
          out.AppendRow(std::move(row));
        }
      }
      return out;
    }

    std::vector<bool> right_matched(rn, false);
    for (size_t i = 0; i < ln; ++i) {
      bool matched = false;
      for (size_t j = 0; j < rn; ++j) {
        std::vector<Value> row = left.Row(i);
        std::vector<Value> rrow = right.Row(j);
        row.insert(row.end(), rrow.begin(), rrow.end());
        out.AppendRow(std::move(row));
        bool keep = true;
        if (join.condition != nullptr) {
          EXPLAINIT_ASSIGN_OR_RETURN(
              Value v, out_ev.Eval(*join.condition, out.num_rows() - 1));
          keep = !v.is_null() && v.AsBool();
        }
        if (!keep) {
          out.Truncate(out.num_rows() - 1);
        } else {
          matched = true;
          right_matched[j] = true;
        }
      }
      if (!matched && (join.type == JoinType::kLeft ||
                       join.type == JoinType::kFullOuter)) {
        std::vector<Value> row = left.Row(i);
        std::vector<Value> pad = NullRow(right.num_columns());
        row.insert(row.end(), pad.begin(), pad.end());
        out.AppendRow(std::move(row));
      }
    }
    if (join.type == JoinType::kFullOuter) {
      for (size_t j = 0; j < rn; ++j) {
        if (right_matched[j]) continue;
        std::vector<Value> row = NullRow(left.num_columns());
        std::vector<Value> rrow = right.Row(j);
        row.insert(row.end(), rrow.begin(), rrow.end());
        out.AppendRow(std::move(row));
      }
    }
    return out;
  }

  Result<Table> Aggregate(const Table& input, const SelectStatement& stmt) {
    using seed_detail::EncodeKey;
    using seed_detail::EvalInGroup;
    using seed_detail::ItemName;
    Evaluator ev(&input, functions_);
    std::unordered_map<std::string, std::vector<size_t>> groups;
    std::vector<std::string> group_order;
    if (stmt.group_by.empty()) {
      std::vector<size_t> all(input.num_rows());
      std::iota(all.begin(), all.end(), size_t{0});
      groups[""] = std::move(all);
      group_order.push_back("");
    } else {
      for (size_t r = 0; r < input.num_rows(); ++r) {
        std::vector<Value> key;
        key.reserve(stmt.group_by.size());
        for (const ExprPtr& g : stmt.group_by) {
          EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*g, r));
          key.push_back(std::move(v));
        }
        const std::string encoded = EncodeKey(key, nullptr);
        auto [it, inserted] = groups.try_emplace(encoded);
        if (inserted) group_order.push_back(encoded);
        it->second.push_back(r);
      }
    }
    Schema schema;
    for (const SelectItem& item : stmt.items) {
      if (item.is_star) {
        return Status::InvalidArgument(
            "SELECT * with GROUP BY is not allowed");
      }
      schema.AddField(Field{ItemName(item), DataType::kNull});
    }
    Table out(schema);
    for (const std::string& key : group_order) {
      const std::vector<size_t>& rows = groups[key];
      if (rows.empty() && !stmt.group_by.empty()) continue;
      if (stmt.having != nullptr && !rows.empty()) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value keep,
                                   EvalInGroup(*stmt.having, ev, rows));
        if (keep.is_null() || !keep.AsBool()) continue;
      }
      std::vector<Value> row;
      row.reserve(stmt.items.size());
      if (rows.empty()) {
        for (const SelectItem& item : stmt.items) {
          if (item.expr->kind == ExprKind::kFunction &&
              item.expr->function_name == "COUNT") {
            row.push_back(Value::Int(0));
          } else {
            row.push_back(Value::Null());
          }
        }
      } else {
        for (const SelectItem& item : stmt.items) {
          EXPLAINIT_ASSIGN_OR_RETURN(Value v,
                                     EvalInGroup(*item.expr, ev, rows));
          row.push_back(std::move(v));
        }
      }
      out.AppendRow(std::move(row));
    }
    return out;
  }

  Result<Table> Project(const Table& input, const SelectStatement& stmt) {
    Evaluator ev(&input, functions_);
    Schema schema;
    std::vector<const Expr*> exprs;
    for (const SelectItem& item : stmt.items) {
      if (item.is_star) {
        for (const Field& f : input.schema().fields()) {
          schema.AddField(f);
          exprs.push_back(nullptr);
        }
        continue;
      }
      schema.AddField(Field{seed_detail::ItemName(item), DataType::kNull});
      exprs.push_back(item.expr.get());
    }
    Table out(schema);
    for (size_t r = 0; r < input.num_rows(); ++r) {
      std::vector<Value> row;
      row.reserve(exprs.size());
      size_t star_col = 0;
      for (const Expr* e : exprs) {
        if (e == nullptr) {
          row.push_back(input.At(r, star_col++));
          continue;
        }
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*e, r));
        row.push_back(std::move(v));
      }
      out.AppendRow(std::move(row));
    }
    return out;
  }

  Result<Table> OrderAndLimit(Table output, const Table& preprojection,
                              const SelectStatement& stmt, bool aggregated) {
    if (!stmt.order_by.empty()) {
      const size_t n = output.num_rows();
      std::vector<std::vector<Value>> sort_keys(n);
      Evaluator out_ev(&output, functions_);
      Evaluator pre_ev(&preprojection, functions_);
      for (const OrderByItem& item : stmt.order_by) {
        bool resolved_on_output = false;
        if (item.expr->kind == ExprKind::kColumnRef) {
          if (out_ev.ResolveColumn(*item.expr).ok()) {
            resolved_on_output = true;
          }
        }
        for (size_t r = 0; r < n; ++r) {
          Result<Value> v = resolved_on_output ? out_ev.Eval(*item.expr, r)
                            : aggregated       ? out_ev.Eval(*item.expr, r)
                                               : pre_ev.Eval(*item.expr, r);
          if (!v.ok()) {
            v = resolved_on_output || aggregated
                    ? pre_ev.Eval(*item.expr, r)
                    : out_ev.Eval(*item.expr, r);
          }
          if (!v.ok()) return v.status();
          sort_keys[r].push_back(std::move(v).value());
        }
      }
      std::vector<size_t> order(n);
      std::iota(order.begin(), order.end(), size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < stmt.order_by.size(); ++k) {
          const int cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
          if (cmp != 0) {
            return stmt.order_by[k].ascending ? cmp < 0 : cmp > 0;
          }
        }
        return false;
      });
      Table sorted(output.schema());
      for (size_t r : order) sorted.AppendRow(output.Row(r));
      output = std::move(sorted);
    }
    if (stmt.limit.has_value() && *stmt.limit >= 0) {
      output.Truncate(static_cast<size_t>(*stmt.limit));
    }
    return output;
  }

  Result<Table> ExecuteSingle(const SelectStatement& stmt) {
    EXPLAINIT_ASSIGN_OR_RETURN(Table source, ResolveFrom(stmt));
    Table filtered = std::move(source);
    if (stmt.where != nullptr) {
      Evaluator ev(&filtered, functions_);
      Table kept(filtered.schema());
      for (size_t r = 0; r < filtered.num_rows(); ++r) {
        EXPLAINIT_ASSIGN_OR_RETURN(Value v, ev.Eval(*stmt.where, r));
        if (!v.is_null() && v.AsBool()) kept.AppendRow(filtered.Row(r));
      }
      filtered = std::move(kept);
    }
    const bool aggregated =
        !stmt.group_by.empty() ||
        std::any_of(stmt.items.begin(), stmt.items.end(),
                    [](const SelectItem& i) {
                      return i.expr != nullptr &&
                             i.expr->ContainsAggregate();
                    });
    Table projected;
    if (aggregated) {
      EXPLAINIT_ASSIGN_OR_RETURN(projected, Aggregate(filtered, stmt));
    } else {
      EXPLAINIT_ASSIGN_OR_RETURN(projected, Project(filtered, stmt));
    }
    return OrderAndLimit(std::move(projected), filtered, stmt, aggregated);
  }

  const sql::Catalog* catalog_;
  const sql::FunctionRegistry* functions_;
};

}  // namespace explainit::bench
