// Table 4: the periodic pipeline slowdown of §5.3 — global search points
// at the namenode family; GC is ruled out by its *negative* correlation.
#include "bench/bench_util.h"
#include "bench/case_study_util.h"
#include "stats/pearson.h"

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Table 4: periodic namenode slowdown (§5.3) — global search");
  const size_t steps = bench::PaperScale() ? 1440 : 480;
  sim::CaseStudyWorld world = sim::MakeNamenodeScanCase(steps);
  std::printf("%s\n\n", world.description.c_str());
  const size_t cause_rank = bench::RankAndPrintCaseStudy(world, "L2");

  // §5.3's sign analysis: latency positively correlated with the runtime,
  // GC negatively — which eliminated GC as a candidate cause.
  tsdb::ScanRequest req;
  req.range = world.range;
  req.metric_glob = "overall_runtime";
  auto runtime = world.store->Scan(req);
  req.metric_glob = "namenode_rpc_latency_ms";
  auto lat = world.store->Scan(req);
  req.metric_glob = "namenode_gc_ms";
  auto gc = world.store->Scan(req);
  if (runtime.ok() && lat.ok() && gc.ok() && !runtime->empty() &&
      !lat->empty() && !gc->empty()) {
    const double lat_corr = stats::PearsonCorrelation(
        (*lat)[0].values, (*runtime)[0].values);
    const double gc_corr = stats::PearsonCorrelation(
        (*gc)[0].values, (*runtime)[0].values);
    std::printf(
        "\nSign analysis: corr(rpc latency, runtime) = %+.2f (suspect), "
        "corr(gc, runtime) = %+.2f (ruled out)\n",
        lat_corr, gc_corr);
  }
  std::printf("\nFirst namenode-cause family at rank %zu (paper: rank 5).\n",
              cause_rank);
  return cause_rank >= 1 && cause_rank <= 12 ? 0 : 1;
}
