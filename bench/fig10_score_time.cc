// Figure 10: distribution of scoring runtimes, normalised to mean and max
// score time per feature family, for the five scoring techniques across
// the 11 scenarios. Also reports the serialisation share measured via the
// IPC round-trip (§6.2: ~25% for univariate scorers, ~5% for joint).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Figure 10: score time per feature family, by scoring technique");
  const size_t t = bench::ScenarioSteps();
  const double scale = bench::FeatureScale();
  std::vector<sim::Scenario> scenarios = sim::MakeTable6Suite(t, scale);

  std::printf("%-10s %14s %14s %14s %12s\n", "scorer", "mean sec/fam",
              "max sec/fam", "p95 sec/fam", "serial.%");
  for (const std::string& name : bench::PaperScorers()) {
    auto scorer = core::MakeScorer(name);
    if (!scorer.ok()) return 1;
    std::vector<double> per_family;
    double score_total = 0.0, ser_total = 0.0;
    for (const sim::Scenario& s : scenarios) {
      core::RankingOptions opts;
      opts.top_k = 0;  // keep all rows: we want every family's timing
      opts.simulate_ipc = true;
      auto table =
          core::RankFamilies(**scorer, s.target, nullptr, s.families, opts);
      if (!table.ok()) return 1;
      for (const auto& row : table->rows) {
        per_family.push_back(row.score_seconds);
        score_total += row.score_seconds;
        ser_total += row.serialization_seconds;
      }
    }
    std::sort(per_family.begin(), per_family.end());
    double mean = 0.0;
    for (double v : per_family) mean += v;
    mean /= static_cast<double>(per_family.size());
    const double max = per_family.back();
    const double p95 = per_family[per_family.size() * 95 / 100];
    std::printf("%-10s %14.5f %14.5f %14.5f %12.1f\n", name.c_str(), mean,
                max, p95, 100.0 * ser_total / score_total);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape: univariate cheapest; joint within 2-3x on average"
      " (max within ~1.5x of the worst univariate family);\n"
      "serialisation a much larger share for the univariate scorers than"
      " the joint ones.\n");
  return 0;
}
