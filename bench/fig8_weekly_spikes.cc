// Figure 8: viewing a month-plus of (hourly) data reveals that the
// sporadic slowdowns have a weekly period — the 168-hour RAID consistency
// check cadence (§5.4).
#include <cstdio>

#include "bench/bench_util.h"
#include "simulator/case_studies.h"
#include "stats/decompose.h"

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Figure 8: weekly runtime spikes over a month of hourly data (§5.4)");
  const size_t steps = bench::PaperScale() ? 1680 : 840;  // 5 / 10 weeks
  sim::CaseStudyWorld world = sim::MakeRaidScrubCase(steps);
  tsdb::ScanRequest req;
  req.metric_glob = "overall_runtime";
  req.range = world.range;
  auto scan = world.store->Scan(req);
  if (!scan.ok() || scan->empty()) return 1;
  const auto& s = (*scan)[0];
  std::printf("overall_runtime (one char ~ %zu hours):\n  %s\n",
              s.values.size() / 84,
              core::RenderSparkline(s.values, 84).c_str());
  const size_t period = stats::DetectPeriod(s.values, 100, 300);
  std::printf("\ndetected period: %zu hours (true: 168 = 1 week)\n", period);
  auto spikes = stats::DetectSpikes(s.values, 3.0);
  std::printf("spike points: %zu across %zu weeks\n", spikes.size(),
              steps / 168);
  const bool ok = period >= 160 && period <= 176;
  std::printf("weekly regularity identified: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
