// Concurrent ingest throughput over the tiered storage engine: the
// datacentre simulator streams its trace time-major into a live store
// (background sealing on) while query threads run aggregations against
// the moving data — the write path never blocks on scans and vice versa.
//
// Differential parity gate: after the stream quiesces (Flush), a fixed
// query set runs against (a) the live tiered store through the
// vectorised pipeline, (b) a bulk-loaded reference store built from the
// identically-seeded trace, and (c) the seed row-at-a-time interpreter
// over the reference store. All three must agree on row counts and
// checksums — locking in that streamed sealing/compaction/rollup tiers
// never change query answers. The rollup-shaped queries additionally
// prove (via ScanStats) that they were served from rollup tiers, not raw
// decodes. Emits BENCH_ingest.json.
//
// Usage: ingest [--smoke] [output.json]
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/seed_executor.h"
#include "common/time_util.h"
#include "simulator/datacentre.h"
#include "sql/executor.h"
#include "tsdb/store.h"

namespace explainit {
namespace {

constexpr unsigned kTraceSeed = 7;
constexpr size_t kQueryThreads = 2;

struct NamedQuery {
  const char* name;
  const char* sql;
};

// The parity set: raw aggregations, rollup-shaped grids (minute + hour,
// served from tiers on the live store) and a top-K sort.
const NamedQuery kQueries[] = {
    {"count_avg", "SELECT COUNT(*) AS n, AVG(value) AS a FROM tsdb"},
    {"per_metric",
     "SELECT metric_name AS m, AVG(value) AS a, MAX(value) AS mx "
     "FROM tsdb GROUP BY metric_name"},
    {"minute_sum",
     "SELECT DATE_TRUNC('minute', timestamp) AS m, SUM(value) AS s "
     "FROM tsdb GROUP BY DATE_TRUNC('minute', timestamp)"},
    {"hour_max",
     "SELECT DATE_TRUNC('hour', timestamp) AS h, MAX(value) AS mx "
     "FROM tsdb GROUP BY DATE_TRUNC('hour', timestamp)"},
    {"topk",
     "SELECT timestamp, value FROM tsdb "
     "ORDER BY value DESC, timestamp LIMIT 50"},
};

// Queries the concurrent readers hammer while the stream is live.
const char* const kLiveQueries[] = {
    "SELECT COUNT(*) AS n, AVG(value) AS a FROM tsdb",
    "SELECT DATE_TRUNC('minute', timestamp) AS m, SUM(value) AS s "
    "FROM tsdb GROUP BY DATE_TRUNC('minute', timestamp)",
};

/// Catalog exposing `store` as the hinted `tsdb` provider over `range`.
void RegisterStore(sql::Catalog* catalog,
                   const std::shared_ptr<tsdb::SeriesStore>& store,
                   TimeRange range) {
  catalog->RegisterHintedProvider(
      "tsdb",
      [store, range](const tsdb::ScanHints& hints) -> Result<table::Table> {
        tsdb::ScanRequest req;
        req.range = range;
        req.hints = hints;
        return store->ScanToTable(req);
      });
}

struct QueryResult {
  double seconds = 0;
  size_t rows = 0;
  double checksum = 0;  // sum of the last column
};

template <typename Exec>
QueryResult Run(Exec& exec, const char* query) {
  const double t0 = MonotonicSeconds();
  auto res = exec.Query(query);
  if (!res.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n",
                 res.status().ToString().c_str(), query);
    std::abort();
  }
  QueryResult out;
  out.seconds = MonotonicSeconds() - t0;
  out.rows = res->num_rows();
  const size_t c = res->num_columns() - 1;
  for (size_t r = 0; r < res->num_rows(); ++r) {
    out.checksum += res->At(r, c).AsDouble();
  }
  return out;
}

bool Close(double a, double b) {
  return std::abs(a - b) <= 1e-6 * (1.0 + std::abs(a) + std::abs(b));
}

bool Matches(const QueryResult& a, const QueryResult& b) {
  return a.rows == b.rows && Close(a.checksum, b.checksum);
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const size_t steps = smoke ? 180 : 2880;  // minutes of trace
  const TimeRange range{0, static_cast<int64_t>(steps) * 60};

  sim::DatacentreConfig config;
  sim::DatacentreModel model(config);
  std::printf("ingest bench: %zu-minute trace, %zu query threads%s\n",
              steps, kQueryThreads, smoke ? " [smoke]" : "");

  // The live store: tight seal threshold + background sealer, so the
  // stream crosses head -> segment -> rollup tiers while readers watch.
  tsdb::StoreOptions live_opts;
  live_opts.seal_max_points = 256;
  live_opts.background_seal = true;
  live_opts.compact_min_segments = 8;
  auto live = std::make_shared<tsdb::SeriesStore>(live_opts);

  std::atomic<bool> ingesting{true};
  std::atomic<size_t> live_queries{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kQueryThreads; ++r) {
    readers.emplace_back([&live, &ingesting, &live_queries, range] {
      sql::Catalog catalog;
      sql::FunctionRegistry functions = sql::FunctionRegistry::Builtins();
      RegisterStore(&catalog, live, range);
      sql::Executor exec(&catalog, &functions, /*parallelism=*/1);
      do {
        for (const char* q : kLiveQueries) {
          Run(exec, q);
          live_queries.fetch_add(1, std::memory_order_relaxed);
        }
      } while (ingesting.load(std::memory_order_acquire));
    });
  }

  Rng stream_rng(kTraceSeed);
  const double t0 = MonotonicSeconds();
  if (auto s = model.StreamTo(live.get(), steps, 0, stream_rng); !s.ok()) {
    std::fprintf(stderr, "stream failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double ingest_seconds = MonotonicSeconds() - t0;
  ingesting.store(false, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  if (auto s = live->Flush(); !s.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const size_t points = live->num_points();
  const tsdb::StorageStats storage = live->storage_stats();
  std::printf(
      "  streamed %zu points / %zu series in %.3fs (%.0f points/s), "
      "%zu concurrent queries, %zu seals, %zu compactions\n",
      points, live->num_series(), ingest_seconds, points / ingest_seconds,
      live_queries.load(), storage.seals, storage.compactions);

  // Reference store: the identical trace (same seed) bulk-loaded into an
  // untiered store (huge thresholds — everything stays in the head).
  tsdb::StoreOptions ref_opts;
  ref_opts.seal_max_points = 1u << 30;
  ref_opts.seal_max_bytes = 1u << 30;
  ref_opts.background_seal = false;
  auto ref = std::make_shared<tsdb::SeriesStore>(ref_opts);
  Rng bulk_rng(kTraceSeed);
  if (auto s = model.WriteTo(ref.get(), steps, 0, bulk_rng); !s.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  sql::FunctionRegistry functions = sql::FunctionRegistry::Builtins();
  sql::Catalog live_catalog, ref_catalog;
  RegisterStore(&live_catalog, live, range);
  RegisterStore(&ref_catalog, ref, range);
  sql::Executor live_exec(&live_catalog, &functions);
  sql::Executor ref_exec(&ref_catalog, &functions);
  bench::SeedExecutor seed_exec(&ref_catalog, &functions);

  // Parity + timing: live tiered pipeline vs reference pipeline vs seed
  // interpreter, best-of-3 per configuration.
  bool parity = true;
  struct Row {
    const char* name;
    QueryResult live, ref, seed;
  };
  std::vector<Row> rows;
  live->ResetScanStats();
  for (const NamedQuery& q : kQueries) {
    Row row{q.name, {}, {}, {}};
    row.live.seconds = row.ref.seconds = row.seed.seconds = 1e300;
    for (int round = 0; round < 3; ++round) {
      const QueryResult l = Run(live_exec, q.sql);
      const QueryResult r = Run(ref_exec, q.sql);
      const QueryResult s = Run(seed_exec, q.sql);
      row.live.seconds = std::min(row.live.seconds, l.seconds);
      row.ref.seconds = std::min(row.ref.seconds, r.seconds);
      row.seed.seconds = std::min(row.seed.seconds, s.seconds);
      row.live.rows = l.rows;
      row.live.checksum = l.checksum;
      row.ref.rows = r.rows;
      row.ref.checksum = r.checksum;
      row.seed.rows = s.rows;
      row.seed.checksum = s.checksum;
      if (!Matches(s, l) || !Matches(s, r)) {
        std::fprintf(stderr, "parity FAILED on %s\n", q.name);
        parity = false;
      }
    }
    std::printf(
        "  %-10s | live %8.4fs | bulk-ref %8.4fs | seed %8.4fs | "
        "%6zu rows\n",
        row.name, row.live.seconds, row.ref.seconds, row.seed.seconds,
        row.live.rows);
    rows.push_back(row);
  }

  // The grid queries must actually have routed to rollup tiers on the
  // live (sealed) store.
  const tsdb::ScanStats scans = live->scan_stats();
  const bool rollup_served = scans.rollup_points_returned > 0 &&
                             scans.segments_rollup_served > 0;
  std::printf(
      "  rollup routing: %zu tier points served (%zu raw skipped), "
      "%zu segments from tiers, %zu raw fallbacks\n",
      scans.rollup_points_returned, scans.rollup_points_skipped,
      scans.segments_rollup_served, scans.segments_raw_fallback);
  if (!rollup_served) {
    std::fprintf(stderr,
                 "rollup routing FAILED: grid queries decoded raw\n");
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"ingest\",\n  \"smoke\": %s,\n"
      "  \"steps\": %zu,\n  \"series\": %zu,\n  \"points\": %zu,\n"
      "  \"ingest_seconds\": %.6f,\n  \"write_points_per_sec\": %.1f,\n"
      "  \"concurrent_queries\": %zu,\n  \"seals\": %zu,\n"
      "  \"compactions\": %zu,\n  \"sealed_segments\": %zu,\n"
      "  \"rollup_points_served\": %zu,\n  \"raw_points_skipped\": %zu,\n"
      "  \"parity\": %s,\n  \"rollup_served\": %s,\n  \"queries\": [\n",
      smoke ? "true" : "false", steps, live->num_series(), points,
      ingest_seconds, points / ingest_seconds, live_queries.load(),
      storage.seals, storage.compactions, storage.sealed_segments,
      scans.rollup_points_returned, scans.rollup_points_skipped,
      parity ? "true" : "false", rollup_served ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"rows\": %zu, "
                 "\"live_sec\": %.6f, \"ref_sec\": %.6f, "
                 "\"seed_sec\": %.6f}%s\n",
                 r.name, r.live.rows, r.live.seconds, r.ref.seconds,
                 r.seed.seconds, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());

  return (parity && rollup_served) ? 0 : 1;
}

}  // namespace
}  // namespace explainit

int main(int argc, char** argv) { return explainit::Main(argc, argv); }
