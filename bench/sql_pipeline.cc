// End-to-end SQL query throughput: seed row-at-a-time interpreter
// (bench/seed_executor.h) vs the planner + vectorised operator pipeline
// with scan pushdown (src/sql/). Scales the store to 1k/10k/100k series
// and runs
//   Q1  scan -> filter -> aggregate   (the pushdown showcase)
//   Q2  scan -> filter -> join -> aggregate (two per-minute subqueries)
// emitting BENCH_sql_pipeline.json so the perf trajectory is recorded.
//
// Usage: sql_pipeline [--smoke] [output.json]
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/seed_executor.h"
#include "common/time_util.h"
#include "sql/executor.h"
#include "tsdb/store.h"

namespace explainit {
namespace {

constexpr int64_t kPointsPerSeries = 12;  // one per minute
const TimeRange kRange{0, kPointsPerSeries * 60};

// Q1: the 3-of-12-minute window over the latency metric only; pushdown
// narrows both the window and the series set at the store.
const char* kQ1 =
    "SELECT tag['host'] AS host, AVG(value) AS v FROM tsdb "
    "WHERE metric_name = 'latency' AND timestamp BETWEEN 240 AND 360 "
    "GROUP BY tag['host']";

// Q2: per-minute latency joined with per-minute load, then aggregated.
const char* kQ2 =
    "SELECT COUNT(*) AS n, AVG(l.v + r.v) AS s FROM "
    "(SELECT timestamp AS ts, AVG(value) AS v FROM tsdb "
    " WHERE metric_name = 'latency' GROUP BY timestamp) l "
    "JOIN "
    "(SELECT timestamp AS ts, AVG(value) AS v FROM tsdb "
    " WHERE metric_name = 'load' GROUP BY timestamp) r "
    "ON l.ts = r.ts";

std::shared_ptr<tsdb::SeriesStore> BuildStore(size_t num_series) {
  auto store = std::make_shared<tsdb::SeriesStore>();
  // One latency series per host; one load series per ten hosts.
  for (size_t h = 0; h < num_series; ++h) {
    const tsdb::TagSet tags{{"host", "h" + std::to_string(h)}};
    std::vector<EpochSeconds> ts(kPointsPerSeries);
    std::vector<double> vals(kPointsPerSeries);
    for (int64_t i = 0; i < kPointsPerSeries; ++i) {
      ts[i] = i * 60;
      vals[i] = static_cast<double>((h * 13 + i * 7) % 97);
    }
    if (!store->WriteSeries("latency", tags, ts, vals).ok()) std::abort();
    if (h % 10 == 0) {
      if (!store->WriteSeries("load", tags, ts, vals).ok()) std::abort();
    }
  }
  return store;
}

struct QueryResult {
  double seconds = 0;
  size_t rows = 0;
  double checksum = 0;  // sum of the last column, for cross-validation
};

double Checksum(const table::Table& t) {
  double acc = 0;
  const size_t c = t.num_columns() - 1;
  for (size_t r = 0; r < t.num_rows(); ++r) acc += t.At(r, c).AsDouble();
  return acc;
}

template <typename Exec>
QueryResult Run(Exec& exec, const char* query) {
  const double t0 = MonotonicSeconds();
  auto res = exec.Query(query);
  QueryResult out;
  out.seconds = MonotonicSeconds() - t0;
  if (!res.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 res.status().ToString().c_str());
    std::abort();
  }
  out.rows = res->num_rows();
  out.checksum = Checksum(*res);
  return out;
}

struct ScaleReport {
  size_t series;
  QueryResult q1_seed, q1_pipe, q2_seed, q2_pipe;
  bool match;
};

ScaleReport RunScale(size_t num_series) {
  auto store = BuildStore(num_series);
  sql::Catalog catalog;
  catalog.RegisterHintedProvider(
      "tsdb",
      [store](const tsdb::ScanHints& hints) -> Result<table::Table> {
        tsdb::ScanRequest req;
        req.range = kRange;
        req.hints = hints;
        return store->ScanToTable(req);
      });
  sql::FunctionRegistry functions = sql::FunctionRegistry::Builtins();
  bench::SeedExecutor seed(&catalog, &functions);
  sql::Executor pipeline(&catalog, &functions);

  ScaleReport rep;
  rep.series = num_series;
  rep.q1_seed = Run(seed, kQ1);
  rep.q1_pipe = Run(pipeline, kQ1);
  rep.q2_seed = Run(seed, kQ2);
  rep.q2_pipe = Run(pipeline, kQ2);
  auto close = [](double a, double b) {
    return std::abs(a - b) <= 1e-6 * (1.0 + std::abs(a) + std::abs(b));
  };
  rep.match = rep.q1_seed.rows == rep.q1_pipe.rows &&
              rep.q2_seed.rows == rep.q2_pipe.rows &&
              close(rep.q1_seed.checksum, rep.q1_pipe.checksum) &&
              close(rep.q2_seed.checksum, rep.q2_pipe.checksum);
  return rep;
}

void PrintScale(const ScaleReport& r) {
  std::printf(
      "%8zu series | Q1 scan->agg  seed %8.4fs  pipeline %8.4fs  (%5.1fx) "
      "| Q2 join  seed %8.4fs  pipeline %8.4fs  (%5.1fx) | results %s\n",
      r.series, r.q1_seed.seconds, r.q1_pipe.seconds,
      r.q1_seed.seconds / r.q1_pipe.seconds, r.q2_seed.seconds,
      r.q2_pipe.seconds, r.q2_seed.seconds / r.q2_pipe.seconds,
      r.match ? "match" : "MISMATCH");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sql_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  std::vector<size_t> scales =
      smoke ? std::vector<size_t>{200}
            : std::vector<size_t>{1000, 10000, 100000};

  std::printf("SQL pipeline bench: seed interpreter vs planner+vectorised "
              "pipeline%s\n", smoke ? " [smoke]" : "");
  std::vector<ScaleReport> reports;
  bool all_match = true;
  bool pipeline_wins_at_top = true;
  for (size_t s : scales) {
    ScaleReport r = RunScale(s);
    PrintScale(r);
    all_match = all_match && r.match;
    if (s == scales.back()) {
      pipeline_wins_at_top = r.q1_pipe.seconds < r.q1_seed.seconds;
    }
    reports.push_back(r);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sql_pipeline\",\n  \"scales\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const ScaleReport& r = reports[i];
    std::fprintf(
        f,
        "    {\"series\": %zu, \"points\": %zu,\n"
        "     \"q1_scan_agg\": {\"rows\": %zu, \"seed_sec\": %.6f, "
        "\"pipeline_sec\": %.6f, \"speedup\": %.2f},\n"
        "     \"q2_join_agg\": {\"rows\": %zu, \"seed_sec\": %.6f, "
        "\"pipeline_sec\": %.6f, \"speedup\": %.2f},\n"
        "     \"results_match\": %s}%s\n",
        r.series, r.series * kPointsPerSeries, r.q1_pipe.rows,
        r.q1_seed.seconds, r.q1_pipe.seconds,
        r.q1_seed.seconds / r.q1_pipe.seconds, r.q2_pipe.rows,
        r.q2_seed.seconds, r.q2_pipe.seconds,
        r.q2_seed.seconds / r.q2_pipe.seconds, r.match ? "true" : "false",
        i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_match) {
    std::printf("FAIL: seed and pipeline disagree\n");
    return 1;
  }
  if (!smoke && !pipeline_wins_at_top) {
    std::printf("FAIL: pipeline slower than seed at the top scale\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace explainit

int main(int argc, char** argv) { return explainit::Main(argc, argv); }
