// End-to-end SQL query throughput: seed row-at-a-time interpreter
// (bench/seed_executor.h) vs the planner + vectorised operator pipeline
// with scan pushdown (src/sql/), swept across the pipeline's parallelism
// knob {1, 2, hw}. Scales the store to 1k/10k/100k series and runs
//   Q1  scan -> filter -> aggregate   (the pushdown + parallel-agg showcase)
//   Q2  scan -> filter -> join -> aggregate (two per-minute subqueries)
//   Q3  scan -> filter -> join -> sort/limit (the partitioned hash join,
//       sharded top-K sort and parallel materialisation showcase)
//   Q4  star join in worst-case statement order (dimensions cross-joined
//       first, the fact scan last) -> aggregate — the cost-based
//       planner's join-reordering showcase, timed with the optimizer off
//       vs on
// Seed-vs-pipeline result parity is verified for every configuration
// *before* any timing is recorded; mismatches fail the bench. Emits
// BENCH_sql_pipeline.json so the perf trajectory is recorded. On hosts
// with >= 4 cores (and not in --smoke mode) the Q3 parallel path must
// additionally beat the serial pipeline; Q4 with the optimizer on must
// beat the statement-order plan at the top scale.
//
// Usage: sql_pipeline [--smoke] [output.json]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/seed_executor.h"
#include "common/time_util.h"
#include "sql/executor.h"
#include "tsdb/store.h"

namespace explainit {
namespace {

constexpr int64_t kPointsPerSeries = 12;  // one per minute
const TimeRange kRange{0, kPointsPerSeries * 60};

// Q1: the 3-of-12-minute window over the latency metric only; pushdown
// narrows both the window and the series set at the store.
const char* kQ1 =
    "SELECT tag['host'] AS host, AVG(value) AS v FROM tsdb "
    "WHERE metric_name = 'latency' AND timestamp BETWEEN 240 AND 360 "
    "GROUP BY tag['host']";

// Q2: per-minute latency joined with per-minute load, then aggregated.
const char* kQ2 =
    "SELECT COUNT(*) AS n, AVG(l.v + r.v) AS s FROM "
    "(SELECT timestamp AS ts, AVG(value) AS v FROM tsdb "
    " WHERE metric_name = 'latency' GROUP BY timestamp) l "
    "JOIN "
    "(SELECT timestamp AS ts, AVG(value) AS v FROM tsdb "
    " WHERE metric_name = 'load' GROUP BY timestamp) r "
    "ON l.ts = r.ts";

// Q3: row-level join of the latency sweep against the (10x smaller) load
// side on (timestamp, host), topped by ORDER BY ... LIMIT — the
// partitioned hash join + sharded top-K sort + parallel materialisation
// path. The ORDER BY keys (v, ts) cover every selected column, so rows
// tied on the full key are identical and any LIMIT cut among them leaves
// the row count and the checksum (sum of v) unchanged.
const char* kQ3 =
    "SELECT l.timestamp AS ts, l.value + r.value AS v FROM tsdb l "
    "JOIN tsdb r ON l.timestamp = r.timestamp "
    "AND l.tag['host'] = r.tag['host'] "
    "WHERE l.metric_name = 'latency' AND r.metric_name = 'load' "
    "ORDER BY v DESC, ts LIMIT 100";

// Q4: a star join written in the worst statement order — both dimension
// tables first (their cross product has 12x the host count in rows), the
// fact scan last. Statement order materialises the hosts x slots cross
// product through a nested-loop join before the fact table prunes it;
// the cost-based planner starts from the fact-connected dimension
// instead. The time window is slot-aligned, so the ON condition, not the
// window, does the pruning.
const char* kQ4 =
    "SELECT h.grp AS g, SUM(f.value) AS s, COUNT(*) AS n "
    "FROM hosts h CROSS JOIN slots sl "
    "JOIN tsdb f ON f.tag['host'] = h.host AND f.timestamp = sl.b "
    "WHERE f.metric_name = 'latency' AND f.timestamp BETWEEN 240 AND 360 "
    "GROUP BY h.grp ORDER BY g";

std::shared_ptr<tsdb::SeriesStore> BuildStore(size_t num_series) {
  auto store = std::make_shared<tsdb::SeriesStore>();
  // One latency series per host; one load series per ten hosts.
  for (size_t h = 0; h < num_series; ++h) {
    const tsdb::TagSet tags{{"host", "h" + std::to_string(h)}};
    std::vector<EpochSeconds> ts(kPointsPerSeries);
    std::vector<double> vals(kPointsPerSeries);
    for (int64_t i = 0; i < kPointsPerSeries; ++i) {
      ts[i] = i * 60;
      vals[i] = static_cast<double>((h * 13 + i * 7) % 97);
    }
    if (!store->WriteSeries("latency", tags, ts, vals).ok()) std::abort();
    if (h % 10 == 0) {
      if (!store->WriteSeries("load", tags, ts, vals).ok()) std::abort();
    }
  }
  return store;
}

struct QueryResult {
  double seconds = 0;
  size_t rows = 0;
  double checksum = 0;  // sum of the last column, for cross-validation
};

double Checksum(const table::Table& t) {
  double acc = 0;
  const size_t c = t.num_columns() - 1;
  for (size_t r = 0; r < t.num_rows(); ++r) acc += t.At(r, c).AsDouble();
  return acc;
}

template <typename Exec>
QueryResult Run(Exec& exec, const char* query) {
  const double t0 = MonotonicSeconds();
  auto res = exec.Query(query);
  QueryResult out;
  out.seconds = MonotonicSeconds() - t0;
  if (!res.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 res.status().ToString().c_str());
    std::abort();
  }
  out.rows = res->num_rows();
  out.checksum = Checksum(*res);
  return out;
}

void KeepMin(QueryResult* best, const QueryResult& sample) {
  if (sample.seconds < best->seconds) {
    *best = sample;
  } else {
    best->rows = sample.rows;
    best->checksum = sample.checksum;
  }
}

/// HashAggregate self time (exclusive of its input) of the last query —
/// the operator the parallelism sweep is really about.
double AggSelfSeconds(const sql::Executor& exec) {
  double agg = 0, input = 0;
  for (const sql::OperatorStats& op : exec.last_stats().operators) {
    if (op.name == "HashAggregate" && agg == 0) {
      agg = static_cast<double>(op.elapsed_ns) / 1e9;
    } else if ((op.name == "Filter" || op.name == "Scan") && agg != 0 &&
               input == 0) {
      input = static_cast<double>(op.elapsed_ns) / 1e9;
    }
  }
  return agg > input ? agg - input : 0;
}

bool Close(double a, double b) {
  return std::abs(a - b) <= 1e-6 * (1.0 + std::abs(a) + std::abs(b));
}

bool Matches(const QueryResult& seed, const QueryResult& pipe) {
  return seed.rows == pipe.rows && Close(seed.checksum, pipe.checksum);
}

struct ParallelReport {
  size_t parallelism;
  QueryResult q1, q2, q3;
  double q1_agg_self_sec = 1e300;  // HashAggregate self time in Q1
};

struct ScaleReport {
  size_t series;
  QueryResult q1_seed, q2_seed, q3_seed;
  std::vector<ParallelReport> pipeline;  // one entry per parallelism level
  bool match = true;
  /// Whole-query q1 at parallelism 1 over the best parallel level.
  double q1_parallel_speedup = 0;
  /// The parallel HashAggregate's speedup over the serial pipeline's
  /// HashAggregate (operator self time, q1) — the tentpole metric,
  /// insensitive to the shared scan cost.
  double q1_agg_speedup = 0;
  /// Whole-query q3 (join + ORDER BY LIMIT) at parallelism 1 over the
  /// best parallel level — the partitioned join / sharded sort metric.
  double q3_parallel_speedup = 0;
  /// Q4 star join: statement-order plan (optimizer off) vs the
  /// cost-based plan (optimizer on), both at parallelism 1.
  QueryResult q4_seed, q4_off, q4_on;
  double q4_reorder_speedup = 0;
  size_t q4_joins_reordered = 0;
};

std::vector<size_t> ParallelismSweep() {
  const size_t hw =
      std::max<size_t>(2, std::thread::hardware_concurrency());
  std::vector<size_t> sweep{1, 2, hw};
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
  return sweep;
}

ScaleReport RunScale(size_t num_series) {
  auto store = BuildStore(num_series);
  sql::Catalog catalog;
  // Engine-style registration: the live estimator feeds the cost-based
  // planner the fact table's true size, which is what makes Q4's reorder
  // decision real rather than a default-guess coin flip.
  sql::HintedProviderOptions provider_options;
  provider_options.estimated_rows = [store] { return store->num_points(); };
  provider_options.exact_rollups = true;
  catalog.RegisterHintedProvider(
      "tsdb",
      [store](const tsdb::ScanHints& hints) -> Result<table::Table> {
        tsdb::ScanRequest req;
        req.range = kRange;
        req.hints = hints;
        return store->ScanToTable(req);
      },
      provider_options);
  // Q4's dimension tables: one row per host, and the 12 minute slots.
  table::Table hosts(table::Schema{{{"host", table::DataType::kString},
                                    {"grp", table::DataType::kString}}});
  for (size_t h = 0; h < num_series; ++h) {
    hosts.AppendRow({table::Value::String("h" + std::to_string(h)),
                     table::Value::String("g" + std::to_string(h % 8))});
  }
  catalog.RegisterTable("hosts", std::move(hosts));
  table::Table slots(
      table::Schema{{{"b", table::DataType::kTimestamp}}});
  for (int64_t i = 0; i < kPointsPerSeries; ++i) {
    slots.AppendRow({table::Value::Timestamp(i * 60)});
  }
  catalog.RegisterTable("slots", std::move(slots));
  sql::FunctionRegistry functions = sql::FunctionRegistry::Builtins();
  bench::SeedExecutor seed(&catalog, &functions);
  sql::Executor pipeline(&catalog, &functions);

  ScaleReport rep;
  rep.series = num_series;

  // Parity gate: every configuration must reproduce the seed's result
  // before a single timing is recorded.
  const QueryResult q1_ref = Run(seed, kQ1);
  const QueryResult q2_ref = Run(seed, kQ2);
  const QueryResult q3_ref = Run(seed, kQ3);
  for (size_t p : ParallelismSweep()) {
    pipeline.set_parallelism(p);
    const QueryResult q1 = Run(pipeline, kQ1);
    const QueryResult q2 = Run(pipeline, kQ2);
    const QueryResult q3 = Run(pipeline, kQ3);
    if (!Matches(q1_ref, q1) || !Matches(q2_ref, q2) ||
        !Matches(q3_ref, q3)) {
      std::fprintf(stderr,
                   "parity FAILED at %zu series, parallelism %zu\n",
                   num_series, p);
      rep.match = false;
    }
  }
  // Q4 parity: seed vs statement-order plan vs cost-based plan, and the
  // reorder must actually fire (otherwise the speedup below measures
  // nothing).
  sql::PlannerOptions optimizer_off;
  optimizer_off.enabled = false;
  const QueryResult q4_ref = Run(seed, kQ4);
  pipeline.set_parallelism(1);
  pipeline.set_optimizer(optimizer_off);
  const QueryResult q4_off = Run(pipeline, kQ4);
  pipeline.set_optimizer(sql::PlannerOptions{});
  const QueryResult q4_on = Run(pipeline, kQ4);
  rep.q4_joins_reordered = pipeline.last_stats().joins_reordered;
  if (!Matches(q4_ref, q4_off) || !Matches(q4_ref, q4_on)) {
    std::fprintf(stderr, "Q4 parity FAILED at %zu series\n", num_series);
    rep.match = false;
  }
  if (rep.q4_joins_reordered == 0) {
    std::fprintf(stderr, "Q4 join reorder did not fire at %zu series\n",
                 num_series);
    rep.match = false;
  }

  // Timed runs: three rounds with the configurations *interleaved*
  // (seed, then each parallelism, back to back within one round), so a
  // drifting heap or background load hits every configuration equally;
  // best-of-rounds damps scheduler noise on busy hosts.
  constexpr int kRounds = 3;
  const std::vector<size_t> sweep = ParallelismSweep();
  rep.q1_seed.seconds = rep.q2_seed.seconds = rep.q3_seed.seconds = 1e300;
  rep.q4_seed.seconds = rep.q4_off.seconds = rep.q4_on.seconds = 1e300;
  rep.pipeline.resize(sweep.size());
  for (size_t j = 0; j < sweep.size(); ++j) {
    rep.pipeline[j].parallelism = sweep[j];
    rep.pipeline[j].q1.seconds = rep.pipeline[j].q2.seconds =
        rep.pipeline[j].q3.seconds = 1e300;
  }
  for (int round = 0; round < kRounds; ++round) {
    KeepMin(&rep.q1_seed, Run(seed, kQ1));
    for (size_t j = 0; j < sweep.size(); ++j) {
      pipeline.set_parallelism(sweep[j]);
      KeepMin(&rep.pipeline[j].q1, Run(pipeline, kQ1));
      rep.pipeline[j].q1_agg_self_sec =
          std::min(rep.pipeline[j].q1_agg_self_sec,
                   AggSelfSeconds(pipeline));
    }
    KeepMin(&rep.q2_seed, Run(seed, kQ2));
    for (size_t j = 0; j < sweep.size(); ++j) {
      pipeline.set_parallelism(sweep[j]);
      KeepMin(&rep.pipeline[j].q2, Run(pipeline, kQ2));
    }
    KeepMin(&rep.q3_seed, Run(seed, kQ3));
    for (size_t j = 0; j < sweep.size(); ++j) {
      pipeline.set_parallelism(sweep[j]);
      KeepMin(&rep.pipeline[j].q3, Run(pipeline, kQ3));
    }
    // Q4 off/on back to back within the round, parallelism 1 (the
    // reorder win is plan-level, not thread-level).
    pipeline.set_parallelism(1);
    KeepMin(&rep.q4_seed, Run(seed, kQ4));
    pipeline.set_optimizer(optimizer_off);
    KeepMin(&rep.q4_off, Run(pipeline, kQ4));
    pipeline.set_optimizer(sql::PlannerOptions{});
    KeepMin(&rep.q4_on, Run(pipeline, kQ4));
  }
  double best_parallel_q1 = 1e300;
  double best_parallel_agg = 1e300;
  double best_parallel_q3 = 1e300;
  for (const ParallelReport& pr : rep.pipeline) {
    if (pr.parallelism > 1) {
      best_parallel_q1 = std::min(best_parallel_q1, pr.q1.seconds);
      best_parallel_agg = std::min(best_parallel_agg, pr.q1_agg_self_sec);
      best_parallel_q3 = std::min(best_parallel_q3, pr.q3.seconds);
    }
  }
  rep.q1_parallel_speedup = rep.pipeline[0].q1.seconds / best_parallel_q1;
  rep.q1_agg_speedup = rep.pipeline[0].q1_agg_self_sec / best_parallel_agg;
  rep.q3_parallel_speedup = rep.pipeline[0].q3.seconds / best_parallel_q3;
  rep.q4_reorder_speedup = rep.q4_off.seconds / rep.q4_on.seconds;
  return rep;
}

void PrintScale(const ScaleReport& r) {
  std::printf(
      "%8zu series | Q1 seed %8.4fs | Q2 seed %8.4fs | Q3 seed %8.4fs "
      "| results %s\n",
      r.series, r.q1_seed.seconds, r.q2_seed.seconds, r.q3_seed.seconds,
      r.match ? "match" : "MISMATCH");
  for (const ParallelReport& pr : r.pipeline) {
    std::printf(
        "          p=%zu | Q1 %8.4fs (%5.1fx seed) | Q2 %8.4fs "
        "(%5.1fx seed) | Q3 %8.4fs (%5.1fx seed)\n",
        pr.parallelism, pr.q1.seconds, r.q1_seed.seconds / pr.q1.seconds,
        pr.q2.seconds, r.q2_seed.seconds / pr.q2.seconds, pr.q3.seconds,
        r.q3_seed.seconds / pr.q3.seconds);
  }
  std::printf(
      "          parallel-vs-serial-pipeline speedups: Q1 %.2fx "
      "(HashAggregate operator: %.2fx), Q3 join+sort %.2fx\n",
      r.q1_parallel_speedup, r.q1_agg_speedup, r.q3_parallel_speedup);
  std::printf(
      "          Q4 star join: seed %8.4fs | optimizer off %8.4fs | "
      "on %8.4fs | reorder %.2fx (%zu joins reordered)\n",
      r.q4_seed.seconds, r.q4_off.seconds, r.q4_on.seconds,
      r.q4_reorder_speedup, r.q4_joins_reordered);
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sql_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  std::vector<size_t> scales =
      smoke ? std::vector<size_t>{200}
            : std::vector<size_t>{1000, 10000, 100000};

  std::printf(
      "SQL pipeline bench: seed interpreter vs planner+vectorised "
      "pipeline, parallelism sweep {1, 2, hw}%s\n",
      smoke ? " [smoke]" : "");
  std::vector<ScaleReport> reports;
  bool all_match = true;
  bool pipeline_wins_at_top = true;
  for (size_t s : scales) {
    ScaleReport r = RunScale(s);
    PrintScale(r);
    all_match = all_match && r.match;
    if (s == scales.back()) {
      pipeline_wins_at_top =
          r.pipeline[0].q1.seconds < r.q1_seed.seconds;
    }
    reports.push_back(r);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sql_pipeline\",\n  \"scales\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const ScaleReport& r = reports[i];
    std::fprintf(
        f,
        "    {\"series\": %zu, \"points\": %zu,\n"
        "     \"q1_seed_sec\": %.6f, \"q2_seed_sec\": %.6f, "
        "\"q3_seed_sec\": %.6f,\n"
        "     \"pipeline\": [\n",
        r.series, r.series * kPointsPerSeries, r.q1_seed.seconds,
        r.q2_seed.seconds, r.q3_seed.seconds);
    for (size_t j = 0; j < r.pipeline.size(); ++j) {
      const ParallelReport& pr = r.pipeline[j];
      std::fprintf(
          f,
          "       {\"parallelism\": %zu, \"q1_sec\": %.6f, "
          "\"q1_rows\": %zu, \"q1_speedup_vs_seed\": %.2f, "
          "\"q1_hashagg_self_sec\": %.6f, "
          "\"q2_sec\": %.6f, \"q2_rows\": %zu, "
          "\"q2_speedup_vs_seed\": %.2f, "
          "\"q3_sec\": %.6f, \"q3_rows\": %zu, "
          "\"q3_speedup_vs_seed\": %.2f}%s\n",
          pr.parallelism, pr.q1.seconds, pr.q1.rows,
          r.q1_seed.seconds / pr.q1.seconds, pr.q1_agg_self_sec,
          pr.q2.seconds, pr.q2.rows, r.q2_seed.seconds / pr.q2.seconds,
          pr.q3.seconds, pr.q3.rows, r.q3_seed.seconds / pr.q3.seconds,
          j + 1 < r.pipeline.size() ? "," : "");
    }
    std::fprintf(
        f,
        "     ],\n"
        "     \"q1_parallel_speedup_vs_serial_pipeline\": %.2f,\n"
        "     \"q1_hashaggregate_parallel_speedup\": %.2f,\n"
        "     \"q3_parallel_speedup_vs_serial_pipeline\": %.2f,\n"
        "     \"q4_seed_sec\": %.6f, \"q4_off_sec\": %.6f, "
        "\"q4_on_sec\": %.6f, \"q4_rows\": %zu,\n"
        "     \"q4_reorder_speedup\": %.2f, "
        "\"q4_joins_reordered\": %zu,\n"
        "     \"results_match\": %s}%s\n",
        r.q1_parallel_speedup, r.q1_agg_speedup, r.q3_parallel_speedup,
        r.q4_seed.seconds, r.q4_off.seconds, r.q4_on.seconds, r.q4_on.rows,
        r.q4_reorder_speedup, r.q4_joins_reordered,
        r.match ? "true" : "false", i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_match) {
    std::printf("FAIL: seed and pipeline disagree\n");
    return 1;
  }
  if (!smoke && !pipeline_wins_at_top) {
    std::printf("FAIL: pipeline slower than seed at the top scale\n");
    return 1;
  }
  // Q3 speedup gate: on hosts with >= 4 cores the partitioned join +
  // sharded sort must beat the serial pipeline at the top scale. (On
  // fewer cores parallel ~= serial is expected; parity still gates.)
  if (!smoke && std::thread::hardware_concurrency() >= 4 &&
      reports.back().q3_parallel_speedup < 1.1) {
    std::printf("FAIL: Q3 join+sort parallel speedup %.2fx < 1.1x on a "
                ">=4-core host\n",
                reports.back().q3_parallel_speedup);
    return 1;
  }
  // Q4 reorder gate: the cost-based join order must beat the
  // worst-case statement order at the top scale. The win is plan
  // shape, not threads, so it holds regardless of core count.
  if (!smoke && reports.back().q4_reorder_speedup < 1.1) {
    std::printf("FAIL: Q4 join reorder speedup %.2fx < 1.1x\n",
                reports.back().q4_reorder_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace explainit

int main(int argc, char** argv) { return explainit::Main(argc, argv); }
