// Figure 7: 15-minute periodic spikes in the pipeline runtime vanish after
// the offending service is fixed (§5.3). Detected via autocorrelation
// period search on the before/after halves.
#include <cstdio>

#include "bench/bench_util.h"
#include "simulator/case_studies.h"
#include "stats/decompose.h"

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Figure 7: periodic runtime spikes disappear after the fix (§5.3)");
  const size_t steps = bench::PaperScale() ? 1440 : 480;
  const size_t fix_at = steps * 3 / 5;
  sim::CaseStudyWorld world = sim::MakeNamenodeScanCase(steps, 303, fix_at);
  tsdb::ScanRequest req;
  req.metric_glob = "overall_runtime";
  req.range = world.range;
  auto scan = world.store->Scan(req);
  if (!scan.ok() || scan->empty()) return 1;
  const auto& s = (*scan)[0];
  std::vector<double> before(s.values.begin(),
                             s.values.begin() + static_cast<long>(fix_at));
  std::vector<double> after(s.values.begin() + static_cast<long>(fix_at),
                            s.values.end());
  std::printf("before fix: %s\n",
              core::RenderSparkline(before, 60).c_str());
  std::printf("after fix:  %s\n", core::RenderSparkline(after, 60).c_str());
  const size_t period_before = stats::DetectPeriod(before, 5, 60);
  const size_t period_after = stats::DetectPeriod(after, 5, 60);
  const size_t spikes_before = stats::DetectSpikes(before, 3.0).size();
  const size_t spikes_after = stats::DetectSpikes(after, 3.0).size();
  std::printf(
      "\ndetected period before fix: %zu min (true: 15)\n"
      "detected period after fix:  %zu (0 = none)\n"
      "spikes before: %zu, after: %zu\n",
      period_before, period_after, spikes_before, spikes_after);
  const bool ok = period_before == 15 &&
                  (period_after == 0 || spikes_after * 4 < spikes_before);
  std::printf("periodic spikes eliminated by the fix: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
