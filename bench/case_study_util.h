// Shared driver for the case-study ranking benches (Tables 3-5): run the
// full engine pipeline (store -> name-grouped families -> ranking) on a
// simulated incident and print the ranked Score Table with cause/effect
// interpretation.
#pragma once

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "simulator/case_studies.h"

namespace explainit::bench {

/// Prints a ranked table with the cause/effect interpretation column;
/// returns the rank of the first cause (0 = none in the printed rows).
inline size_t PrintScoreTable(const core::ScoreTable& table,
                              const sim::CaseStudyWorld& world,
                              size_t top_k = 20) {
  std::printf("%-4s %-28s %8s  %s\n", "rank", "family", "score",
              "interpretation");
  size_t first_cause = 0;
  for (size_t i = 0; i < table.rows.size() && i < top_k; ++i) {
    const auto& row = table.rows[i];
    const char* kind = "";
    if (world.labels.causes.count(row.family_name) > 0) {
      kind = "<== CAUSE";
      if (first_cause == 0) first_cause = i + 1;
    } else if (world.labels.effects.count(row.family_name) > 0) {
      kind = "effect of runtime";
    }
    std::printf("%-4zu %-28s %8.3f  %s\n", i + 1, row.family_name.c_str(),
                row.score, kind);
  }
  return first_cause;
}

/// Runs a global name-grouped ranking of `world.target_metric` and prints
/// the top-k. `condition_metric` (optional glob, e.g. "input_rate_*")
/// conditions the scoring as in §5.2. Returns the rank of the first
/// labelled cause (0 = not found / error).
inline size_t RankAndPrintCaseStudy(const sim::CaseStudyWorld& world,
                                    const std::string& scorer = "L2",
                                    const std::string& condition_metric = "",
                                    size_t top_k = 20) {
  core::Engine engine(world.store);
  core::Session session(&engine, world.range);
  if (!session.SetTargetByMetric(world.target_metric).ok()) return 0;
  core::GroupingOptions grouping;
  grouping.key = core::GroupingKey::kMetricName;
  if (!session.SetSearchSpaceByGrouping(grouping).ok()) return 0;
  if (!session.SetScorer(scorer).ok()) return 0;
  if (!condition_metric.empty()) {
    if (!session.SetConditionByMetric(condition_metric).ok()) return 0;
  }
  auto table = session.Run();
  if (!table.ok()) {
    std::fprintf(stderr, "ranking failed: %s\n",
                 table.status().ToString().c_str());
    return 0;
  }
  return PrintScoreTable(*table, world, top_k);
}

}  // namespace explainit::bench
