// Table 5: the weekly slowdown of §5.4 — global search surfaces load
// average / disk utilisation / RAID temperature alongside the expected
// save-time effects.
#include "bench/bench_util.h"
#include "bench/case_study_util.h"

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Table 5: weekly RAID consistency-check slowdown (§5.4)");
  const size_t steps = bench::PaperScale() ? 1680 : 840;  // hourly steps
  sim::CaseStudyWorld world = sim::MakeRaidScrubCase(steps);
  std::printf("%s\n\n", world.description.c_str());
  const size_t cause_rank = bench::RankAndPrintCaseStudy(world, "L2");
  std::printf(
      "\nFirst disk/RAID-cause family at rank %zu (paper: load average at"
      " rank 3, disk utilisation at 4, RAID temperature at 7).\n",
      cause_rank);
  return cause_rank >= 1 && cause_rank <= 10 ? 0 : 1;
}
