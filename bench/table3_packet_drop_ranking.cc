// Table 3: global search across all metric families pinpoints a network
// packet retransmission issue (§5.1's injected iptables fault). Expected
// shape: pipeline runtimes/latencies at the very top (known effects), the
// TCP retransmit family within the top handful, corroborated by RPC-level
// latencies.
#include "bench/bench_util.h"
#include "bench/case_study_util.h"

int main() {
  using namespace explainit;
  bench::PrintHeader(
      "Table 3: packet-drop injection (§5.1) — global name-grouped search");
  const size_t steps = bench::PaperScale() ? 1440 : 480;
  sim::CaseStudyWorld world = sim::MakePacketDropCase(steps);
  std::printf("%s\nfault window: [%s, %s)\n\n", world.description.c_str(),
              FormatTimestamp(world.fault_window.start).c_str(),
              FormatTimestamp(world.fault_window.end).c_str());
  // Global first-pass search with the univariate scorer, as the §6.1
  // takeaway recommends when a single metric family may be the cause.
  const size_t cause_rank = bench::RankAndPrintCaseStudy(world, "CorrMax");
  std::printf(
      "\nFirst network-cause family at rank %zu (paper: rank 4 of ~800"
      " families; here the family population is smaller).\n",
      cause_rank);
  return cause_rank >= 1 && cause_rank <= 10 ? 0 : 1;
}
