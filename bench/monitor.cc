// Continuous-monitoring bench: standing EXPLAIN queries vs back-to-back
// one-shot EXPLAINs, plus triggered-mode RCA latency on an injected
// simulator fault.
//
// Three phases over the §5.1 packet-drop world:
//   1. Parity gate: a registered `EXPLAIN ... EVERY 10m INTO hist`
//      monitor slides its window while a collector thread streams the
//      world time-major into the store. Every run's appended score rows
//      must equal — exactly, same doubles — the equivalent one-shot
//      EXPLAIN whose sub-selects carry explicit timestamp bounds (the
//      monitor's shared scan restricts *data* to the window; BETWEEN
//      alone only sets the Rank operator's scoring range).
//   2. Overhead: the same standing query slid N times (incremental
//      shared scan, one pass per window delta) timed against N
//      back-to-back one-shot EXPLAINs over the same windows.
//   3. Trigger latency: a TRIGGERED monitor armed on the KPI, fault
//      injected mid-stream; wall time from fault onset to a ranked score
//      table, and the true cause must land in the top 10.
//
// Emits BENCH_monitor.json. Usage: monitor [--smoke] [output.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/time_util.h"
#include "core/engine.h"
#include "monitor/monitor.h"
#include "simulator/case_studies.h"
#include "simulator/datacentre.h"
#include "sql/executor.h"
#include "tsdb/store.h"

namespace explainit {
namespace {

constexpr int64_t kWindowSeconds = 3600;  // BETWEEN 0 AND 3599
constexpr int64_t kStrideSeconds = 600;   // EVERY 10m

std::string StandingSql(const std::string& tail,
                        const std::string& scorer = "L2") {
  return "EXPLAIN (SELECT timestamp, AVG(value) AS y FROM tsdb "
         " WHERE metric_name = 'overall_runtime' GROUP BY timestamp) "
         "USING (SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb "
         " WHERE metric_name != 'overall_runtime' "
         " GROUP BY timestamp, metric_name) "
         "SCORE BY '" +
         scorer + "' TOP 10 BETWEEN 0 AND 3599 " + tail;
}

/// The one-shot equivalent of run k: explicit data bounds in every WHERE
/// plus the slid BETWEEN.
std::string OneShotSql(EpochSeconds w0, EpochSeconds w1,
                       const std::string& scorer = "L2") {
  const std::string lo = std::to_string(w0);
  const std::string hi = std::to_string(w1);
  return "EXPLAIN (SELECT timestamp, AVG(value) AS y FROM tsdb "
         " WHERE metric_name = 'overall_runtime' AND timestamp >= " +
         lo + " AND timestamp <= " + hi +
         " GROUP BY timestamp) "
         "USING (SELECT timestamp, metric_name, AVG(value) AS v FROM tsdb "
         " WHERE metric_name != 'overall_runtime' AND timestamp >= " +
         lo + " AND timestamp <= " + hi +
         " GROUP BY timestamp, metric_name) "
         "SCORE BY '" +
         scorer + "' TOP 10 BETWEEN " + lo + " AND " + hi;
}

/// The §5.1 fault: a retransmit burst on every datanode from step w0,
/// decaying after rule_end. Amplified relative to the case study so the
/// KPI excursion is unambiguous for the online detector.
std::vector<sim::Intervention> PacketDropFaults(
    const sim::DatacentreModel& model, size_t w0, size_t rule_end,
    size_t w1) {
  std::vector<sim::Intervention> faults;
  for (size_t node : model.NodesByMetric("tcp_retransmits")) {
    sim::Intervention iv;
    iv.node = node;
    iv.begin = w0;
    iv.end = w1;
    iv.shape = [rule_end](size_t t) {
      if (t < rule_end) return 60.0;
      return 60.0 * std::exp(-static_cast<double>(t - rule_end) / 12.0);
    };
    faults.push_back(iv);
  }
  return faults;
}

/// Compares run k of the history against the one-shot score table:
/// rank, family, score, num_features and best_lambda must all be equal
/// (score_seconds is wall time, run/run_ts are monitor bookkeeping).
size_t CompareRun(const table::Table& history, int64_t run,
                  const table::Table& oneshot) {
  size_t failures = 0;
  size_t row = 0;
  for (size_t r = 0; r < history.num_rows(); ++r) {
    if (history.At(r, 0).AsInt() != run) continue;
    if (row >= oneshot.num_rows()) {
      ++failures;
      ++row;
      continue;
    }
    const bool equal =
        history.At(r, 2).AsInt() == oneshot.At(row, 0).AsInt() &&
        history.At(r, 3).AsString() == oneshot.At(row, 1).AsString() &&
        history.At(r, 4).AsDouble() == oneshot.At(row, 2).AsDouble() &&
        history.At(r, 5).AsInt() == oneshot.At(row, 3).AsInt() &&
        history.At(r, 6).AsDouble() == oneshot.At(row, 4).AsDouble();
    if (!equal) ++failures;
    ++row;
  }
  if (row != oneshot.num_rows()) ++failures;
  return failures;
}

struct PhaseTimings {
  double standing_seconds = 0;
  double oneshot_seconds = 0;
  size_t runs = 0;
  size_t parity_failures = 0;
};

}  // namespace
}  // namespace explainit

int main(int argc, char** argv) {
  using namespace explainit;
  bool smoke = false;
  std::string out_path = "BENCH_monitor.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const size_t minutes = smoke ? 240 : 480;
  const size_t runs = smoke ? 3 : 6;
  sim::DatacentreConfig config;
  config.num_pipelines = 2;
  const TimeRange range{0, static_cast<int64_t>(minutes) * 60};

  std::printf("monitor bench: %zu-minute world, %zu window slides%s\n",
              minutes, runs, smoke ? " [smoke]" : "");

  // -------------------------------------------------------------------
  // Phase 1: parity under concurrent ingestion. A collector thread
  // streams the world time-major; the standing query slides as soon as
  // the ingest frontier clears each window.
  // -------------------------------------------------------------------
  size_t parity_failures = 0;
  {
    sim::DatacentreModel model(config);
    auto store = std::make_shared<tsdb::SeriesStore>();
    core::EngineOptions engine_options;
    engine_options.sql_parallelism = 1;
    core::Engine engine(store, engine_options);
    engine.RegisterStoreTable("tsdb", range);

    monitor::MonitorService service(&engine);
    sql::Executor executor(&engine.catalog(), &engine.functions(), 1,
                           &exec::WorkerPool::Global());
    auto reg = service.Query(executor, StandingSql("EVERY 10m INTO hist"));
    if (!reg.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   reg.status().ToString().c_str());
      return 1;
    }

    std::atomic<int64_t> frontier_step{-1};
    std::thread collector([&] {
      Rng rng(101);
      const Status st = model.StreamTo(
          store.get(), minutes, 0, rng, {},
          [&frontier_step](size_t step) {
            frontier_step.store(static_cast<int64_t>(step),
                                std::memory_order_release);
          });
      if (!st.ok()) {
        std::fprintf(stderr, "stream failed: %s\n", st.ToString().c_str());
      }
    });
    for (size_t k = 0; k < runs; ++k) {
      const EpochSeconds w1 =
          kWindowSeconds - 1 + static_cast<int64_t>(k) * kStrideSeconds;
      // A step's writes are complete once the NEXT step has begun.
      while (frontier_step.load(std::memory_order_acquire) * 60 <= w1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const Status st = service.RunOnce("hist");
      if (!st.ok()) {
        std::fprintf(stderr, "run %zu failed: %s\n", k,
                     st.ToString().c_str());
        return 1;
      }
    }
    collector.join();

    auto history = service.History("hist");
    if (!history.ok()) return 1;
    const table::Table snapshot = (*history)->Snapshot();
    for (size_t k = 0; k < runs; ++k) {
      const EpochSeconds w0 = static_cast<int64_t>(k) * kStrideSeconds;
      const EpochSeconds w1 = w0 + kWindowSeconds - 1;
      auto oneshot = engine.Query(OneShotSql(w0, w1));
      if (!oneshot.ok()) {
        std::fprintf(stderr, "one-shot %zu failed: %s\n", k,
                     oneshot.status().ToString().c_str());
        return 1;
      }
      parity_failures +=
          CompareRun(snapshot, static_cast<int64_t>(k), oneshot->table);
    }
    std::printf(
        "  phase 1: %zu runs under live ingestion, parity_failures=%zu\n",
        runs, parity_failures);
  }

  // -------------------------------------------------------------------
  // Phase 2: standing-query overhead vs back-to-back one-shots on a
  // quiesced store (no collector contention in the timings).
  // -------------------------------------------------------------------
  PhaseTimings timings;
  monitor::SharedScanStats scan_stats;
  {
    sim::DatacentreModel model(config);
    auto store = std::make_shared<tsdb::SeriesStore>();
    {
      Rng rng(101);
      const Status st = model.WriteTo(store.get(), minutes, 0, rng, {});
      if (!st.ok()) return 1;
    }
    core::EngineOptions engine_options;
    engine_options.sql_parallelism = 1;
    core::Engine engine(store, engine_options);
    engine.RegisterStoreTable("tsdb", range);

    monitor::MonitorService service(&engine);
    sql::Executor executor(&engine.catalog(), &engine.functions(), 1,
                           &exec::WorkerPool::Global());
    auto reg = service.Query(executor, StandingSql("EVERY 10m INTO perf"));
    if (!reg.ok()) return 1;

    timings.runs = runs;
    const double standing_t0 = MonotonicSeconds();
    for (size_t k = 0; k < runs; ++k) {
      if (!service.RunOnce("perf").ok()) return 1;
    }
    timings.standing_seconds = MonotonicSeconds() - standing_t0;

    const double oneshot_t0 = MonotonicSeconds();
    for (size_t k = 0; k < runs; ++k) {
      const EpochSeconds w0 = static_cast<int64_t>(k) * kStrideSeconds;
      auto r = engine.Query(OneShotSql(w0, w0 + kWindowSeconds - 1));
      if (!r.ok()) return 1;
    }
    timings.oneshot_seconds = MonotonicSeconds() - oneshot_t0;

    auto stats = service.ScanStats("perf");
    if (stats.ok()) scan_stats = *stats;
    std::printf(
        "  phase 2: standing=%.3fs one-shot=%.3fs (%.2fx); "
        "scan reuse: %zu rows reused, %zu delta rows, %zu full scans\n",
        timings.standing_seconds, timings.oneshot_seconds,
        timings.standing_seconds > 0
            ? timings.oneshot_seconds / timings.standing_seconds
            : 0.0,
        scan_stats.rows_reused, scan_stats.rows_delta,
        scan_stats.full_scans);
  }

  // -------------------------------------------------------------------
  // Phase 3: triggered RCA on an injected fault. The §5.1 retransmit
  // burst begins mid-stream; the write tap's detector must fire on the
  // KPI excursion and the run must rank the true cause in the top 10.
  // -------------------------------------------------------------------
  bool trigger_fired = false;
  bool cause_top10 = false;
  double trigger_latency_seconds = -1.0;
  std::string top_family;
  {
    sim::DatacentreModel model(config);
    const size_t fault_begin = minutes / 2;
    const size_t rule_end = fault_begin + minutes / 10;
    const std::vector<sim::Intervention> faults =
        PacketDropFaults(model, fault_begin, rule_end, minutes);

    auto store = std::make_shared<tsdb::SeriesStore>();
    core::EngineOptions engine_options;
    engine_options.sql_parallelism = 1;
    core::Engine engine(store, engine_options);
    engine.RegisterStoreTable("tsdb", range);

    monitor::MonitorOptions options;
    options.tick_seconds = 0.002;
    options.anomaly.warmup_points = 64;
    options.anomaly.z_threshold = 4.5;
    // A short cooldown lets re-fires land while the anomaly is sustained
    // (each one appends another score table to the same history).
    options.trigger_cooldown_seconds = 0.05;
    monitor::MonitorService service(&engine, options);
    sql::Executor executor(&engine.catalog(), &engine.functions(), 1,
                           &exec::WorkerPool::Global());
    // Global first-pass search with the univariate scorer, as the §6.1
    // takeaway recommends when a single metric family may be the cause
    // (the repo's table3 bench makes the same choice for this fault).
    auto reg = service.Query(
        executor, StandingSql("TRIGGERED INTO trig_hist", "CorrMax"));
    if (!reg.ok()) return 1;
    service.Start();

    std::atomic<double> fault_wall{0.0};
    {
      Rng rng(101);
      // ~1ms of wall time per simulated minute: the fault unfolds over
      // real time instead of landing in one burst, so the cooldown can
      // pace repeated triggered runs as the evidence accumulates.
      const Status st = model.StreamTo(
          store.get(), minutes, 0, rng, faults,
          [&fault_wall, fault_begin](size_t step) {
            if (step == fault_begin) {
              fault_wall.store(MonotonicSeconds(),
                               std::memory_order_release);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          });
      if (!st.ok()) return 1;
    }

    // Latency: fault onset to the FIRST ranked score table.
    const double deadline = MonotonicSeconds() + 30.0;
    monitor::MonitorStatus status;
    while (MonotonicSeconds() < deadline) {
      status = service.Statuses().at(0);
      if (status.runs_ok >= 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const double done_wall = MonotonicSeconds();
    // Let re-fires on the sustained anomaly land, then drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    service.Stop();
    status = service.Statuses().at(0);

    trigger_fired = status.triggers >= 1 && status.runs_ok >= 1;
    if (trigger_fired) {
      trigger_latency_seconds =
          done_wall - fault_wall.load(std::memory_order_acquire);
      // §5.1 ground truth under metric-name grouping: the monitor is
      // judged on its best triggered run — a sustained anomaly keeps
      // re-firing, and the cause must surface in some run's top 10.
      const std::vector<std::string> causes = {"tcp_retransmits",
                                               "network_latency_ms",
                                               "hdfs_packet_ack_rtt_ms"};
      auto history = service.History("trig_hist");
      if (history.ok()) {
        const table::Table runs_table = (*history)->Snapshot();
        int64_t last_run = -1;
        for (size_t r = 0; r < runs_table.num_rows(); ++r) {
          const int64_t run = runs_table.At(r, 0).AsInt();
          const int64_t rank = runs_table.At(r, 2).AsInt();
          const std::string family = runs_table.At(r, 3).AsString();
          if (rank <= 10 && std::find(causes.begin(), causes.end(),
                                      family) != causes.end()) {
            cause_top10 = true;
          }
          if (run > last_run) last_run = run;
          if (run == last_run && rank == 1) top_family = family;
        }
      }
    }
    std::printf(
        "  phase 3: trigger %s (%llu runs), latency=%.3fs, last top "
        "family '%s', true cause in a top-10: %s\n",
        trigger_fired ? "fired" : "DID NOT FIRE",
        static_cast<unsigned long long>(status.runs_ok),
        trigger_latency_seconds, top_family.c_str(),
        cause_top10 ? "yes" : "NO");
  }

  const bool ok = parity_failures == 0 && trigger_fired && cause_top10;
  if (!ok) {
    std::fprintf(stderr,
                 "MONITOR BENCH FAILED: parity_failures=%zu "
                 "trigger_fired=%d cause_top10=%d\n",
                 parity_failures, trigger_fired ? 1 : 0,
                 cause_top10 ? 1 : 0);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"monitor\",\n  \"smoke\": %s,\n"
      "  \"world_minutes\": %zu,\n  \"window_seconds\": %lld,\n"
      "  \"stride_seconds\": %lld,\n  \"runs\": %zu,\n"
      "  \"parity_failures\": %zu,\n"
      "  \"standing_seconds\": %.4f,\n  \"oneshot_seconds\": %.4f,\n"
      "  \"oneshot_over_standing\": %.3f,\n"
      "  \"shared_scan\": {\"full_scans\": %zu, \"delta_scans\": %zu, "
      "\"rows_reused\": %zu, \"rows_delta\": %zu, "
      "\"consumer_reads\": %zu},\n"
      "  \"trigger\": {\"fired\": %s, \"latency_seconds\": %.4f, "
      "\"true_cause_top10\": %s, \"top_family\": \"%s\"}\n}\n",
      smoke ? "true" : "false", minutes,
      static_cast<long long>(kWindowSeconds),
      static_cast<long long>(kStrideSeconds), runs, parity_failures,
      timings.standing_seconds, timings.oneshot_seconds,
      timings.standing_seconds > 0
          ? timings.oneshot_seconds / timings.standing_seconds
          : 0.0,
      scan_stats.full_scans, scan_stats.delta_scans,
      scan_stats.rows_reused, scan_stats.rows_delta,
      scan_stats.consumer_reads, trigger_fired ? "true" : "false",
      trigger_latency_seconds, cause_top10 ? "true" : "false",
      top_family.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
